//! Incremental slicing across trace frames: a content-addressed
//! segment-summary cache with certified re-stitch.
//!
//! A browser session evolves frame by frame: almost all of frame `k+1`'s
//! trace is frame `k`'s trace with a short suffix appended (or a small
//! window rewritten). From-scratch slicing pays O(trace) per frame even
//! though the symbolic work for the shared rows is identical. This module
//! makes the phase-1 summaries of the segment-parallel pass
//! ([`crate::parallel`]) *reusable across runs*:
//!
//! * **Content-addressed summaries.** The trace is cut at fixed
//!   [`SEGMENT_LEN`] boundaries (64-aligned, stable under append). A
//!   segment's phase-1 summary is a pure function of (a) its instruction
//!   rows, (b) the open-call stacks at its upper boundary, (c) the
//!   criteria that fall inside it, (d) the control-dependence answers for
//!   the static sites it contains, and (e) the slice configuration. The
//!   cache key hashes (a)–(c) + (e) — rows via the 128-bit
//!   [`segment_content_hash`] that WPTRACE2 already stores per chunk,
//!   criteria *relative to the segment base* so a summary survives a
//!   positional shift — and (d) is validated per lookup by re-hashing the
//!   current [`ControlDeps`] answers over the entry's recorded sites
//!   (appended rows can add CFG edges that change the controllers of old
//!   segments, so deps can never be part of a once-computed key).
//! * **Checkpointed forward passes.** The CFG builder and the structural
//!   (open-stack) scan are resumed from checkpoints keyed by a prefix
//!   chain of segment hashes, so an appended frame re-feeds only the new
//!   tail instead of the whole trace.
//! * **Memoized stitch suffixes.** Phase 2 walks segments from the trace
//!   end; the boundary state entering segment `i` is a pure function of
//!   the *suffix* from `i`. A suffix-keyed memo reuses the stored
//!   `(BoundaryState, activation)` pair when a middle window was
//!   rewritten but the suffix is untouched.
//!
//! Phase 3 (replay) is memoized per segment but *not* persisted, and its
//! key includes the considered length `n`: timeline checkpoints sit at
//! global positions `(n - idx) % interval == 0` and `interval` defaults
//! to `n / 1000`, so nearly every checkpoint moves when `n` grows —
//! appends legitimately recompute the replay (a plain counting walk, ~an
//! order of magnitude cheaper per row than summarization), while
//! re-querying the *same* session state (the analyst's steady-state
//! loop) reuses every [`SegFinal`] and pays only the assembly merge
//! (see DESIGN.md §11).
//!
//! The result is **byte-identical** to [`crate::slice`] at any frame: the
//! segment-parallel pass already produces identical results for any
//! segmentation, so correctness reduces to every reused summary being
//! *valid* for its segment — which the content key + deps validation
//! guarantee. On any condition the symbolic pass cannot express
//! (degenerate segmentation, branch write effects, node-budget overflow)
//! the driver falls back to [`crate::slice`] wholesale.

use std::collections::HashMap;
use std::io::{Read, Seek};
use std::path::Path;
use std::sync::Arc;

use rayon::prelude::*;
use wasteprof_trace::compress::{put_varint, ByteReader};
use wasteprof_trace::{
    segment_content_hash, Addr, AddrRange, ColumnCursor, Columns, FuncId, Pc, RegSet, ThreadId,
    Trace, TraceIoError, TraceReader, SEGMENT_LEN,
};

use crate::cdg::{ControlDeps, PendingTransfer};
use crate::cfg::CfgBuilder;
use crate::criteria::{Criteria, SlicingCriterion};
use crate::live::{for_run_chunks, AddrSet};
use crate::parallel::{
    assemble, stitch, BoundaryState, Cond, Finalizer, Node, RegCell, Replay, SegFinal, SegFrames,
    SegSummary, StructuralScan, Summarizer, NTHREADS,
};
use crate::slice::{considered_prefix, ForwardPass, SliceOptions, SliceResult};

/// Default byte budget for cached summaries (~256 MiB).
const DEFAULT_BUDGET: u64 = 256 << 20;
/// Stitch-memo entry cap; pruned to recently-used entries beyond this.
const STITCH_CAP: usize = 16 * 1024;
/// Maximum retained forward-pass (CFG builder) checkpoints.
const FWD_CAP: usize = 12;
/// On-disk summary-cache magic + version.
const CACHE_MAGIC: &[u8; 8] = b"WPCACHE1";
const CACHE_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Wide (128-bit) key hashing, mirroring the trace crate's ContentHasher
// construction so key collisions are as unlikely as content collisions.
// ---------------------------------------------------------------------

const LANE_MUL: [u64; 2] = [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F];
const LANE_SEED: [u64; 2] = [0x5851_F42D_4C95_7F2D, 0x1405_7B7E_F767_814F];

/// Domain-separation tags: each key family folds a distinct tag first so
/// a stitch-memo key can never alias a summary key built from the same
/// words.
const TAG_SUMMARY: u64 = 0x1C5E_6001;
const TAG_STACKS: u64 = 0x1C5E_6002;
const TAG_CRITERIA: u64 = 0x1C5E_6003;
const TAG_DEPS: u64 = 0x1C5E_6004;
const TAG_CHAIN: u64 = 0x1C5E_6005;
const TAG_STITCH: u64 = 0x1C5E_6006;
const TAG_FINAL: u64 = 0x1C5E_6007;

struct WideHasher {
    lanes: [u64; 2],
}

impl WideHasher {
    fn new(tag: u64) -> WideHasher {
        let mut h = WideHasher { lanes: LANE_SEED };
        h.word(tag);
        h
    }

    #[inline]
    fn word(&mut self, w: u64) {
        for (lane, mul) in self.lanes.iter_mut().zip(LANE_MUL) {
            let v = (*lane ^ w).wrapping_mul(mul);
            *lane = v.rotate_left(29) ^ (v >> 32);
        }
    }

    #[inline]
    fn wide(&mut self, w: [u64; 2]) {
        self.word(w[0]);
        self.word(w[1]);
    }

    fn finish(mut self) -> [u64; 2] {
        let cross = self.lanes[0] ^ self.lanes[1].rotate_left(23);
        self.word(cross);
        self.lanes
    }
}

/// Chains two 128-bit values (`next = H(tag, prev, link)`), used for both
/// the prefix chain (checkpoint validity) and the suffix chains (stitch
/// memo keys).
fn chain_link(tag: u64, prev: [u64; 2], link: [u64; 2]) -> [u64; 2] {
    let mut h = WideHasher::new(tag);
    h.wide(prev);
    h.wide(link);
    h.finish()
}

fn stacks_hash(stacks: &[Vec<FuncId>]) -> [u64; 2] {
    let mut h = WideHasher::new(TAG_STACKS);
    for s in stacks {
        h.word(s.len() as u64);
        for f in s {
            h.word(f.index() as u64);
        }
    }
    h.finish()
}

/// Criteria inside one segment, hashed relative to the segment base so a
/// summary can be reused after the segment's absolute position shifts.
fn criteria_hash(items: &[SlicingCriterion], lo: usize) -> [u64; 2] {
    let mut h = WideHasher::new(TAG_CRITERIA);
    h.word(items.len() as u64);
    for c in items {
        h.word((c.pos.index() - lo) as u64);
        h.word(c.include_instr as u64);
        h.word(c.regs.bits() as u64);
        h.word(c.mem.len() as u64);
        for r in &c.mem {
            h.word(r.start().raw());
            h.word(r.len() as u64);
        }
    }
    h.finish()
}

/// Hashes the *current* control-dependence answers over a segment's
/// static sites. Stored at insert time and recomputed at lookup time: a
/// match proves the cached summary would consult identical controllers
/// today, even though the CFGs were rebuilt from a longer trace.
fn deps_hash(deps: &ControlDeps, sites: &[(u32, u32)]) -> [u64; 2] {
    let mut h = WideHasher::new(TAG_DEPS);
    for &(f, pc) in sites {
        h.word(f as u64);
        h.word(pc as u64);
        let cs = deps.controllers(FuncId(f), Pc(pc));
        h.word(cs.len() as u64);
        for c in cs {
            h.word(c.0 as u64);
        }
    }
    h.finish()
}

fn summary_key(
    content: [u64; 2],
    seg_rows: usize,
    stacks_hi: [u64; 2],
    crit: [u64; 2],
    fp: u64,
) -> [u64; 2] {
    let mut h = WideHasher::new(TAG_SUMMARY);
    h.wide(content);
    h.word(seg_rows as u64);
    h.wide(stacks_hi);
    h.wide(crit);
    h.word(fp);
    h.finish()
}

/// Key for the finals memo. The stitch key already pins the segment's
/// replay (summary bitmap + activations) and its suffix context; a
/// [`SegFinal`] additionally depends on the segment's absolute position
/// and the globals the finalize loop reads — total considered rows (the
/// timeline's checkpoint grid is anchored at `n`), the effective
/// interval, the function-table size, and the tracked thread.
fn final_key(
    skey: [u64; 2],
    lo: usize,
    n: usize,
    interval: u64,
    nfuncs: usize,
    tracked: ThreadId,
) -> [u64; 2] {
    let mut h = WideHasher::new(TAG_FINAL);
    h.wide(skey);
    h.word(lo as u64);
    h.word(n as u64);
    h.word(interval);
    h.word(nfuncs as u64);
    h.word(tracked.0 as u64);
    h.finish()
}

// ---------------------------------------------------------------------
// Segment hashes
// ---------------------------------------------------------------------

/// Per-segment content hashes of a trace at the fixed [`SEGMENT_LEN`]
/// granularity the incremental slicer caches at.
///
/// Computing them from scratch costs one linear scan (cheap, ~1 ns/row),
/// but a frame workflow can avoid even that: [`extend_appended`] reuses
/// every complete segment of a previous frame when the caller guarantees
/// the new trace extends the old one, and the WPTRACE2 footer already
/// stores exactly these hashes per chunk, so the streamed path reads
/// them for free.
///
/// [`extend_appended`]: SegmentHashes::extend_appended
#[derive(Debug, Clone)]
pub struct SegmentHashes {
    len: usize,
    full: Vec<[u64; 2]>,
}

impl SegmentHashes {
    /// Hashes every complete [`SEGMENT_LEN`] segment of `trace`.
    pub fn compute(trace: &Trace) -> SegmentHashes {
        let len = trace.len();
        let cols = trace.columns();
        let idxs: Vec<usize> = (0..len / SEGMENT_LEN).collect();
        let full = idxs
            .par_iter()
            .map(|&i| segment_content_hash(cols, i * SEGMENT_LEN, (i + 1) * SEGMENT_LEN))
            .collect();
        SegmentHashes { len, full }
    }

    /// Extends a previous frame's hashes to `trace`, re-hashing only the
    /// rows past the last complete segment of the old frame.
    ///
    /// The caller guarantees `trace` is the old trace with rows appended
    /// (the frame workflow's invariant); complete-segment hashes are
    /// reused without inspection, so passing an unrelated trace would
    /// poison every downstream key.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is shorter than the trace these hashes cover.
    pub fn extend_appended(&self, trace: &Trace) -> SegmentHashes {
        assert!(
            trace.len() >= self.len,
            "extend_appended: trace shrank ({} < {})",
            trace.len(),
            self.len
        );
        let len = trace.len();
        let cols = trace.columns();
        let mut full = self.full.clone();
        for i in full.len()..len / SEGMENT_LEN {
            full.push(segment_content_hash(
                cols,
                i * SEGMENT_LEN,
                (i + 1) * SEGMENT_LEN,
            ));
        }
        SegmentHashes { len, full }
    }

    /// Number of trace rows these hashes cover.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the covered trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-bound segment hashes for a considered prefix of `n` rows: complete
/// segments come from `hashes` when available, anything else (the final
/// partial segment, or a truncated view) is hashed ad hoc.
fn bound_hashes(cols: &Columns, hashes: Option<&SegmentHashes>, bounds: &[usize]) -> Vec<[u64; 2]> {
    let nsegs = bounds.len() - 1;
    (0..nsegs)
        .map(|i| {
            let (lo, hi) = (bounds[i], bounds[i + 1]);
            match hashes {
                Some(h) if hi - lo == SEGMENT_LEN && hi <= h.full.len() * SEGMENT_LEN => h.full[i],
                _ => segment_content_hash(cols, lo, hi),
            }
        })
        .collect()
}

/// Reads per-bound segment hashes straight from a WPTRACE2 footer.
/// Returns `None` when the chunk layout does not align with the fixed
/// [`SEGMENT_LEN`] grid (an early flush, e.g. an arena overflow, can
/// shorten a chunk) — the streamed driver then falls back.
fn reader_seg_hashes<R: Read + Seek>(
    reader: &TraceReader<R>,
    bounds: &[usize],
) -> Option<Vec<[u64; 2]>> {
    let nsegs = bounds.len() - 1;
    if reader.n_chunks() < nsegs {
        return None;
    }
    let mut out = Vec::with_capacity(nsegs);
    for i in 0..nsegs {
        let meta = reader.chunk_meta(i);
        if meta.first_instr != bounds[i] as u64
            || meta.n_instr != (bounds[i + 1] - bounds[i]) as u64
        {
            return None;
        }
        out.push(meta.content_hash);
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Cache state
// ---------------------------------------------------------------------

/// Counters reported by [`SummaryCache::stats`]. All values are
/// cumulative since construction (or the last [`SummaryCache::reset_stats`])
/// except `bytes_held`, which is the current resident summary footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Segment summaries served from the cache.
    pub hits: u64,
    /// Segment summaries recomputed (and inserted).
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Stitch steps skipped via the suffix memo.
    pub stitch_reused: u64,
    /// Bytes currently held by cached summaries.
    pub bytes_held: u64,
}

impl CacheStats {
    /// Hit rate over all summary lookups, `0.0` when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    /// Cached phase-1 summary; `lo`/`hi` are rebased on reuse (every
    /// other field is position-independent, see [`SegSummary`]).
    summary: SegSummary,
    /// Sorted unique static sites `(func, pc)` of the segment, the
    /// domain over which `deps_hash` was computed.
    sites: Vec<(u32, u32)>,
    deps_hash: [u64; 2],
    bytes: u64,
    last_used: u64,
}

struct StitchMemo {
    state: BoundaryState,
    active: Vec<bool>,
    last_used: u64,
}

struct FinalMemo {
    seg: SegFinal,
    last_used: u64,
}

struct FwdCkpt {
    boundary: usize,
    chain: [u64; 2],
    builder: CfgBuilder,
}

struct StructCkpt {
    chain: [u64; 2],
    stacks: Vec<Vec<FuncId>>,
}

/// A persistent, content-addressed cache of segment summaries plus the
/// session-local resume state (forward-pass checkpoints, stitch memo)
/// that makes slicing frame `k+1` cost O(dirty segments + stitch) after
/// frame `k`.
///
/// [`slice`](SummaryCache::slice) is byte-identical to
/// [`crate::slice`] for every input; the cache only changes wall time.
///
/// # Examples
///
/// ```
/// use wasteprof_slicer::{pixel_criteria, slice, ForwardPass, SliceOptions, SummaryCache};
/// use wasteprof_trace::{site, Recorder, Region, ThreadKind};
///
/// let mut rec = Recorder::new();
/// rec.spawn_thread(ThreadKind::Main, "root");
/// let tile = rec.alloc(Region::PixelTile, 64);
/// rec.compute(site!(), &[], &[tile]);
/// rec.marker(site!(), tile);
/// let trace = rec.finish();
///
/// let mut cache = SummaryCache::new();
/// let opts = SliceOptions::default();
/// let incr = cache.slice(&trace, &pixel_criteria(&trace), &opts);
/// let fwd = ForwardPass::build(&trace);
/// assert_eq!(incr, slice(&trace, &fwd, &pixel_criteria(&trace), &opts));
/// ```
pub struct SummaryCache {
    entries: HashMap<[u64; 2], CacheEntry>,
    budget: u64,
    bytes_held: u64,
    tick: u64,
    stitch_memo: HashMap<[u64; 2], StitchMemo>,
    /// Phase-3 replay outputs from prior runs, keyed by the stitch key
    /// extended with everything else a [`SegFinal`] depends on (`n`,
    /// timeline interval, function count, tracked thread). Re-slicing a
    /// mostly-unchanged session skips the per-row finalize loop for
    /// every segment whose suffix context is unchanged.
    final_memo: HashMap<[u64; 2], FinalMemo>,
    fwd_ckpts: Vec<FwdCkpt>,
    /// The last run's finished forward pass, keyed by (considered rows,
    /// full content chain): a re-slice of byte-identical content reuses
    /// the whole pass — CFGs, postdominators, and control deps are pure
    /// functions of the rows — skipping even the checkpointed rebuild.
    fwd_memo: Option<(usize, [u64; 2], Arc<ForwardPass>)>,
    /// Dense per-boundary checkpoints from the last clean run: entry
    /// `j - 1` holds the prefix chain and open-call stacks at boundary
    /// `j * SEGMENT_LEN`.
    struct_ckpts: Vec<StructCkpt>,
    stats: CacheStats,
}

impl Default for SummaryCache {
    fn default() -> Self {
        SummaryCache::new()
    }
}

impl SummaryCache {
    /// An empty cache with the default (~256 MiB) summary byte budget.
    pub fn new() -> SummaryCache {
        SummaryCache::with_budget(DEFAULT_BUDGET)
    }

    /// An empty cache holding at most `budget` bytes of summaries.
    pub fn with_budget(budget: u64) -> SummaryCache {
        SummaryCache {
            entries: HashMap::new(),
            budget,
            bytes_held: 0,
            tick: 0,
            stitch_memo: HashMap::new(),
            final_memo: HashMap::new(),
            fwd_ckpts: Vec::new(),
            fwd_memo: None,
            struct_ckpts: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the cumulative counters (`bytes_held` is recomputed).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats {
            bytes_held: self.bytes_held,
            ..CacheStats::default()
        };
    }

    /// Slices `trace`, reusing every cached segment summary that is
    /// still valid. Byte-identical to [`crate::slice`] with a fresh
    /// [`ForwardPass`] over the same trace.
    pub fn slice(
        &mut self,
        trace: &Trace,
        criteria: &Criteria,
        options: &SliceOptions,
    ) -> SliceResult {
        self.run_resident(trace, None, criteria, options)
    }

    /// [`slice`](SummaryCache::slice) with precomputed segment hashes,
    /// skipping the per-call content scan (the frame workflow maintains
    /// them via [`SegmentHashes::extend_appended`]).
    pub fn slice_with_hashes(
        &mut self,
        trace: &Trace,
        hashes: &SegmentHashes,
        criteria: &Criteria,
        options: &SliceOptions,
    ) -> SliceResult {
        assert!(
            hashes.len() >= trace.len(),
            "segment hashes cover {} rows, trace has {}",
            hashes.len(),
            trace.len()
        );
        self.run_resident(trace, Some(hashes), criteria, options)
    }

    /// Incremental slicing over a `WPTRACE2` stream: segment hashes come
    /// from the footer (no content scan at all), summaries are computed
    /// one segment at a time through the reader's bounded window.
    /// Byte-identical to [`crate::slice_streamed`].
    ///
    /// # Errors
    ///
    /// Any chunk decode or read error from the underlying
    /// [`TraceReader`].
    pub fn slice_streamed<R: Read + Seek>(
        &mut self,
        reader: &mut TraceReader<R>,
        criteria: &Criteria,
        options: &SliceOptions,
    ) -> Result<SliceResult, TraceIoError> {
        self.run_streamed(reader, criteria, options)
    }

    // -- internals ----------------------------------------------------

    fn insert_entry(&mut self, key: [u64; 2], entry: CacheEntry) {
        if let Some(old) = self.entries.remove(&key) {
            self.bytes_held -= old.bytes;
        }
        self.bytes_held += entry.bytes;
        self.entries.insert(key, entry);
        while self.bytes_held > self.budget && self.entries.len() > 1 {
            // Linear LRU scan: the map holds at most a few thousand
            // segments, far below where an ordered index would pay off.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            let e = self.entries.remove(&victim).expect("victim present");
            self.bytes_held -= e.bytes;
            self.stats.evictions += 1;
        }
    }

    fn prune_stitch_memo(&mut self) {
        if self.stitch_memo.len() > STITCH_CAP {
            let keep_from = self.tick.saturating_sub(1);
            self.stitch_memo.retain(|_, m| m.last_used >= keep_from);
        }
        if self.final_memo.len() > STITCH_CAP {
            let keep_from = self.tick.saturating_sub(1);
            self.final_memo.retain(|_, m| m.last_used >= keep_from);
        }
    }

    /// Memoized [`SegFinal`] for `key`, or `None` on a miss.
    fn final_lookup(&mut self, key: [u64; 2]) -> Option<SegFinal> {
        let m = self.final_memo.get_mut(&key)?;
        m.last_used = self.tick;
        Some(m.seg.clone())
    }

    fn final_store(&mut self, key: [u64; 2], seg: SegFinal) {
        self.final_memo.insert(
            key,
            FinalMemo {
                seg,
                last_used: self.tick,
            },
        );
    }

    /// Largest boundary index `j` whose stored chain matches the current
    /// one — content of segments `0..j` is unchanged, so every stored
    /// prefix artifact up to `j` is still exact.
    fn struct_resume_point(&self, chains: &[[u64; 2]], nsegs: usize) -> usize {
        let top = self.struct_ckpts.len().min(nsegs.saturating_sub(1));
        (1..=top)
            .rev()
            .find(|&j| self.struct_ckpts[j - 1].chain == chains[j])
            .unwrap_or(0)
    }

    /// Runs the structural scan over `[0, n)`, resuming from the deepest
    /// valid checkpoint, and refreshes the dense checkpoint vector.
    /// Returns `stacks_at` (`stacks_at[i]` = open stacks at
    /// `bounds[i + 1]`, as phase 1 consumes them) or `None` if the trace
    /// carries branch write effects.
    fn structural(
        &mut self,
        bounds: &[usize],
        chains: &[[u64; 2]],
        feed: impl FnOnce(usize, &mut StructuralScan) -> Result<(), TraceIoError>,
    ) -> Result<Option<Vec<Vec<Vec<FuncId>>>>, TraceIoError> {
        let nsegs = bounds.len() - 1;
        let rj = self.struct_resume_point(chains, nsegs);
        let stacks = if rj == 0 {
            vec![Vec::new(); NTHREADS]
        } else {
            self.struct_ckpts[rj - 1].stacks.clone()
        };
        // Checkpoints are only stored from runs that finished with the
        // flag down, so a resumed prefix is always branch-write free.
        let mut scan = StructuralScan::resume(&bounds[rj..], stacks, false);
        feed(bounds[rj], &mut scan)?;
        let (tail, branch_writes) = scan.finish();
        if branch_writes {
            self.struct_ckpts.clear();
            return Ok(None);
        }
        let mut stacks_at: Vec<Vec<Vec<FuncId>>> = Vec::with_capacity(nsegs);
        for j in 1..=rj {
            stacks_at.push(self.struct_ckpts[j - 1].stacks.clone());
        }
        stacks_at.extend(tail);
        debug_assert_eq!(stacks_at.len(), nsegs);
        // Refresh: boundary j = j * SEGMENT_LEN for every complete
        // segment (the final, possibly partial boundary `n` is never a
        // resume point).
        self.struct_ckpts = (1..nsegs)
            .map(|j| StructCkpt {
                chain: chains[j],
                stacks: stacks_at[j - 1].clone(),
            })
            .collect();
        Ok(Some(stacks_at))
    }

    /// Builds the forward pass over `[0, n)` from the deepest valid CFG
    /// checkpoint, storing fresh checkpoints along the re-fed tail.
    fn forward(
        &mut self,
        bounds: &[usize],
        chains: &[[u64; 2]],
        mut feed: impl FnMut(usize, usize, &mut CfgBuilder) -> Result<(), TraceIoError>,
    ) -> Result<Arc<ForwardPass>, TraceIoError> {
        let nsegs = bounds.len() - 1;
        let n = bounds[nsegs];
        if let Some((mn, mc, fwd)) = &self.fwd_memo {
            if *mn == n && *mc == chains[nsegs] {
                return Ok(fwd.clone());
            }
        }
        self.fwd_ckpts
            .retain(|c| c.boundary % SEGMENT_LEN == 0 && c.boundary / SEGMENT_LEN < nsegs);
        let picked = self
            .fwd_ckpts
            .iter()
            .filter(|c| chains[c.boundary / SEGMENT_LEN] == c.chain)
            .max_by_key(|c| c.boundary);
        let (rj, mut builder) = match picked {
            Some(c) => (c.boundary / SEGMENT_LEN, c.builder.clone()),
            None => (0, CfgBuilder::new()),
        };
        self.fwd_ckpts
            .retain(|c| chains[c.boundary / SEGMENT_LEN] == c.chain);
        let stride = (nsegs / (FWD_CAP / 2)).max(1);
        for j in rj..nsegs {
            feed(bounds[j], bounds[j + 1], &mut builder)?;
            let b = j + 1;
            if b < nsegs && b % stride == 0 {
                self.fwd_ckpts.push(FwdCkpt {
                    boundary: bounds[b],
                    chain: chains[b],
                    builder: builder.clone(),
                });
            }
        }
        if self.fwd_ckpts.len() > FWD_CAP {
            // Keep the latest boundaries: appends resume near the end.
            self.fwd_ckpts.sort_by_key(|c| c.boundary);
            let drop = self.fwd_ckpts.len() - FWD_CAP;
            self.fwd_ckpts.drain(..drop);
        }
        let fwd = Arc::new(ForwardPass::from_cfgs(builder.finish()));
        self.fwd_memo = Some((n, chains[nsegs], fwd.clone()));
        Ok(fwd)
    }

    fn run_resident(
        &mut self,
        trace: &Trace,
        hashes: Option<&SegmentHashes>,
        criteria: &Criteria,
        options: &SliceOptions,
    ) -> SliceResult {
        self.tick += 1;
        let n = considered_prefix(trace.len(), options);
        let cols = trace.columns();
        let nsegs = n.div_ceil(SEGMENT_LEN);
        if n == 0 || nsegs <= 1 {
            let fwd = ForwardPass::build(trace);
            return crate::slice::slice(trace, &fwd, criteria, options);
        }
        let bounds: Vec<usize> = (0..nsegs).map(|i| i * SEGMENT_LEN).chain([n]).collect();
        let seg_hashes = bound_hashes(cols, hashes, &bounds);
        let chains = prefix_chains(&seg_hashes);

        let stacks_at = self
            .structural(&bounds, &chains, |from, scan| {
                scan.feed(&cols.cursor(from, n));
                Ok(())
            })
            .expect("resident feed is infallible");
        let stacks_at = match stacks_at {
            Some(s) => s,
            None => {
                let fwd = ForwardPass::build(trace);
                return crate::slice::slice(trace, &fwd, criteria, options);
            }
        };

        // A truncating `end` would make the checkpointed CFGs diverge
        // from the full-trace ones the reference path uses; take the
        // plain build there (frames never truncate).
        let forward = if n == trace.len() {
            self.forward(&bounds, &chains, |lo, hi, b| {
                b.feed(&cols.cursor(lo, hi));
                Ok(())
            })
            .expect("resident feed is infallible")
        } else {
            Arc::new(ForwardPass::build(trace))
        };

        let plan = self.phase1_plan(&seg_hashes, &stacks_at, criteria, options, &bounds);
        let deps = forward.control_deps();

        // Phase 1: cache lookups, then parallel summarization of misses.
        let mut summaries: Vec<Option<SegSummary>> = Vec::with_capacity(nsegs);
        let mut dhashes: Vec<[u64; 2]> = vec![[0; 2]; nsegs];
        let mut miss_idx: Vec<usize> = Vec::new();
        for (ki, p) in plan.iter().enumerate() {
            if let Some(hit) = self.lookup(p, deps) {
                dhashes[ki] = hit.1;
                summaries.push(Some(hit.0));
            } else {
                summaries.push(None);
                miss_idx.push(ki);
            }
        }
        let items = criteria.items();
        type MissResult = (usize, Option<(SegSummary, Vec<(u32, u32)>)>);
        let computed: Vec<MissResult> = miss_idx
            .par_iter()
            .map(|&ki| {
                let p = &plan[ki];
                let cur = cols.cursor(p.lo, p.hi);
                let mut s =
                    Summarizer::new(p.lo, p.hi, deps, &items[p.c0..p.c1], stacks_at[ki].clone());
                s.feed(&cur);
                (ki, s.finish().map(|sum| (sum, segment_sites(&cur))))
            })
            .collect();
        let mut overflow = false;
        for (ki, r) in computed {
            match r {
                None => overflow = true,
                Some((sum, sites)) => {
                    let dh = deps_hash(deps, &sites);
                    dhashes[ki] = dh;
                    self.store_miss(plan[ki].key, &sum, sites, dh);
                    summaries[ki] = Some(sum);
                }
            }
        }
        if overflow {
            // A segment outgrew the node budget; the reference path
            // handles this case itself (and stays byte-identical).
            self.stats.bytes_held = self.bytes_held;
            return crate::slice::slice(trace, &forward, criteria, options);
        }
        let mut summaries: Vec<SegSummary> = summaries
            .into_iter()
            .map(|s| s.expect("summarized"))
            .collect();

        // Phase 2: stitch from the end with the suffix memo.
        let skeys = self.stitch_keys(&plan, &seg_hashes, &dhashes, options);
        let mut state = BoundaryState::initial(&stacks_at[nsegs - 1]);
        let mut replays: Vec<Replay> = Vec::with_capacity(nsegs);
        for i in (0..nsegs).rev() {
            let sum = summaries.pop().expect("one summary per segment");
            let (next, replay) = self.stitch_step(skeys[i], sum, state);
            state = next;
            replays.push(replay);
        }
        replays.reverse();
        self.prune_stitch_memo();

        // Phase 3: replay + merge, memoized per segment. The timeline's
        // checkpoint grid is anchored at `n`, so a [`SegFinal`] is only
        // reusable when the globals in its key (notably `n` itself)
        // match — appends recompute every segment here, but re-slicing
        // the same session state (the analyst's query loop) is free.
        let interval = if options.timeline_interval == 0 {
            ((n as u64) / 1000).max(1)
        } else {
            options.timeline_interval
        };
        let nfuncs = trace.functions().len();
        let fkeys: Vec<[u64; 2]> = (0..nsegs)
            .map(|i| {
                final_key(
                    skeys[i],
                    replays[i].lo,
                    n,
                    interval,
                    nfuncs,
                    options.tracked_thread,
                )
            })
            .collect();
        let mut finals: Vec<Option<SegFinal>> =
            fkeys.iter().map(|&k| self.final_lookup(k)).collect();
        let fresh: Vec<(usize, SegFinal)> = finals
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                let r = &replays[i];
                let mut f = Finalizer::new(r, n, nfuncs, interval, options.tracked_thread);
                f.feed(&cols.cursor(r.lo, r.hi));
                (i, f.finish())
            })
            .collect();
        for (i, f) in fresh {
            self.final_store(fkeys[i], f.clone());
            finals[i] = Some(f);
        }
        let finals: Vec<SegFinal> = finals.into_iter().map(|f| f.expect("finalized")).collect();
        let mut result = assemble(n, nfuncs, &replays, finals);
        if options.witness {
            result.witness = Some(crate::witness::emit(trace, deps, criteria, &result));
        }
        self.stats.bytes_held = self.bytes_held;
        result
    }

    fn run_streamed<R: Read + Seek>(
        &mut self,
        reader: &mut TraceReader<R>,
        criteria: &Criteria,
        options: &SliceOptions,
    ) -> Result<SliceResult, TraceIoError> {
        self.tick += 1;
        let n = considered_prefix(reader.len(), options);
        let nsegs = n.div_ceil(SEGMENT_LEN);
        let bounds: Vec<usize> = (0..nsegs).map(|i| i * SEGMENT_LEN).chain([n]).collect();
        // Footer hashes only line up when nothing forced an early chunk
        // flush and no `end` truncation is in play; otherwise stream the
        // reference path (which is what the cache accelerates anyway).
        let aligned = if n == reader.len() && n > 0 && nsegs > 1 {
            reader_seg_hashes(reader, &bounds)
        } else {
            None
        };
        let seg_hashes = match aligned {
            Some(h) => h,
            None => {
                let fwd = ForwardPass::build_streamed(reader)?;
                return crate::slice::slice_streamed(reader, &fwd, criteria, options);
            }
        };
        let chains = prefix_chains(&seg_hashes);

        let stacks_at = self.structural(&bounds, &chains, |from, scan| {
            reader.stream_range(from, n, |cur| scan.feed(cur))
        })?;
        let stacks_at = match stacks_at {
            Some(s) => s,
            None => {
                let fwd = ForwardPass::build_streamed(reader)?;
                return crate::slice::slice_streamed(reader, &fwd, criteria, options);
            }
        };
        let forward = self.forward(&bounds, &chains, |lo, hi, b| {
            reader.stream_range(lo, hi, |cur| b.feed(cur))
        })?;
        let deps = forward.control_deps();

        let plan = self.phase1_plan(&seg_hashes, &stacks_at, criteria, options, &bounds);
        let items = criteria.items();
        let mut summaries: Vec<SegSummary> = Vec::with_capacity(nsegs);
        let mut dhashes: Vec<[u64; 2]> = vec![[0; 2]; nsegs];
        let mut overflow = false;
        for (ki, p) in plan.iter().enumerate() {
            if let Some((sum, dh)) = self.lookup(p, deps) {
                dhashes[ki] = dh;
                summaries.push(sum);
                continue;
            }
            let mut s =
                Summarizer::new(p.lo, p.hi, deps, &items[p.c0..p.c1], stacks_at[ki].clone());
            let mut sites: Vec<(u32, u32)> = Vec::new();
            reader.stream_range_rev(p.lo, p.hi, |cur| {
                collect_sites(cur, &mut sites);
                s.feed(cur)
            })?;
            match s.finish() {
                None => {
                    overflow = true;
                    break;
                }
                Some(sum) => {
                    sites.sort_unstable();
                    sites.dedup();
                    let dh = deps_hash(deps, &sites);
                    dhashes[ki] = dh;
                    self.store_miss(p.key, &sum, sites, dh);
                    summaries.push(sum);
                }
            }
        }
        if overflow {
            self.stats.bytes_held = self.bytes_held;
            return crate::slice::slice_streamed(reader, &forward, criteria, options);
        }

        let skeys = self.stitch_keys(&plan, &seg_hashes, &dhashes, options);
        let mut state = BoundaryState::initial(&stacks_at[nsegs - 1]);
        let mut replays: Vec<Replay> = Vec::with_capacity(nsegs);
        for i in (0..nsegs).rev() {
            let sum = summaries.pop().expect("one summary per segment");
            let (next, replay) = self.stitch_step(skeys[i], sum, state);
            state = next;
            replays.push(replay);
        }
        replays.reverse();
        self.prune_stitch_memo();

        let interval = if options.timeline_interval == 0 {
            ((n as u64) / 1000).max(1)
        } else {
            options.timeline_interval
        };
        let nfuncs = reader.functions().len();
        let mut finals: Vec<SegFinal> = Vec::with_capacity(nsegs);
        for (i, r) in replays.iter().enumerate() {
            let fk = final_key(skeys[i], r.lo, n, interval, nfuncs, options.tracked_thread);
            if let Some(f) = self.final_lookup(fk) {
                finals.push(f);
                continue;
            }
            let mut f = Finalizer::new(r, n, nfuncs, interval, options.tracked_thread);
            reader.stream_range_rev(r.lo, r.hi, |cur| f.feed(cur))?;
            let f = f.finish();
            self.final_store(fk, f.clone());
            finals.push(f);
        }
        let mut result = assemble(n, nfuncs, &replays, finals);
        if options.witness {
            result.witness = Some(crate::witness::emit_streamed(
                reader, deps, criteria, &result,
            )?);
        }
        self.stats.bytes_held = self.bytes_held;
        Ok(result)
    }

    fn phase1_plan(
        &self,
        seg_hashes: &[[u64; 2]],
        stacks_at: &[Vec<Vec<FuncId>>],
        criteria: &Criteria,
        options: &SliceOptions,
        bounds: &[usize],
    ) -> Vec<SegPlan> {
        let fp = options.config_fingerprint();
        let items = criteria.items();
        (0..bounds.len() - 1)
            .map(|ki| {
                let (lo, hi) = (bounds[ki], bounds[ki + 1]);
                let c0 = items.partition_point(|c| c.pos.index() < lo);
                let c1 = items.partition_point(|c| c.pos.index() < hi);
                let crit = criteria_hash(&items[c0..c1], lo);
                let sh = stacks_hash(&stacks_at[ki]);
                SegPlan {
                    lo,
                    hi,
                    c0,
                    c1,
                    key: summary_key(seg_hashes[ki], hi - lo, sh, crit, fp),
                    stacks_hash: sh,
                    crit_hash: crit,
                }
            })
            .collect()
    }

    /// Looks a segment up; a hit returns the rebased summary and the
    /// (already validated) deps hash.
    fn lookup(&mut self, p: &SegPlan, deps: &ControlDeps) -> Option<(SegSummary, [u64; 2])> {
        let e = self.entries.get_mut(&p.key)?;
        let dh = deps_hash(deps, &e.sites);
        if dh != e.deps_hash {
            // Same rows, same criteria — but a newer CFG changed a
            // controller answer inside this segment. Stale; the caller
            // recomputes (and `store_miss` counts the miss).
            return None;
        }
        e.last_used = self.tick;
        let mut s = e.summary.clone();
        s.lo = p.lo;
        s.hi = p.hi;
        self.stats.hits += 1;
        Some((s, dh))
    }

    fn store_miss(
        &mut self,
        key: [u64; 2],
        sum: &SegSummary,
        sites: Vec<(u32, u32)>,
        dh: [u64; 2],
    ) {
        self.stats.misses += 1;
        let bytes = summary_bytes(sum) + sites.len() as u64 * 8 + 96;
        let entry = CacheEntry {
            summary: sum.clone(),
            sites,
            deps_hash: dh,
            bytes,
            last_used: self.tick,
        };
        self.insert_entry(key, entry);
    }

    /// Suffix keys for the stitch memo: `skeys[i]` identifies everything
    /// the boundary state at `bounds[i]` (and segment `i`'s activations)
    /// depends on — suffix content, suffix boundary stacks, suffix
    /// criteria (segment-relative), suffix deps answers, and the config.
    fn stitch_keys(
        &self,
        plan: &[SegPlan],
        seg_hashes: &[[u64; 2]],
        dhashes: &[[u64; 2]],
        options: &SliceOptions,
    ) -> Vec<[u64; 2]> {
        let nsegs = plan.len();
        let fp = options.config_fingerprint();
        let mut keys = vec![[0u64; 2]; nsegs];
        let mut cc = LANE_SEED;
        let mut sks = LANE_SEED;
        let mut ck = LANE_SEED;
        let mut dd = LANE_SEED;
        for i in (0..nsegs).rev() {
            cc = chain_link(TAG_CHAIN, cc, seg_hashes[i]);
            sks = chain_link(TAG_STACKS, sks, plan[i].stacks_hash);
            ck = chain_link(TAG_CRITERIA, ck, plan[i].crit_hash);
            dd = chain_link(TAG_DEPS, dd, dhashes[i]);
            let mut h = WideHasher::new(TAG_STITCH);
            h.word(fp);
            h.word((nsegs - i) as u64);
            h.word((plan[i].hi - plan[i].lo) as u64);
            h.wide(cc);
            h.wide(sks);
            h.wide(ck);
            h.wide(dd);
            keys[i] = h.finish();
        }
        keys
    }

    /// One stitch step through the memo: a hit reconstructs the replay
    /// from the summary plus the stored activations and jumps straight
    /// to the stored boundary state.
    fn stitch_step(
        &mut self,
        key: [u64; 2],
        sum: SegSummary,
        state: BoundaryState,
    ) -> (BoundaryState, Replay) {
        if let Some(m) = self.stitch_memo.get_mut(&key) {
            m.last_used = self.tick;
            self.stats.stitch_reused += 1;
            let replay = Replay {
                lo: sum.lo,
                hi: sum.hi,
                bitmap: sum.bitmap,
                members: sum.members,
                active: m.active.clone(),
            };
            return (m.state.clone(), replay);
        }
        let (next, replay) = stitch(sum, &state);
        self.stitch_memo.insert(
            key,
            StitchMemo {
                state: next.clone(),
                active: replay.active.clone(),
                last_used: self.tick,
            },
        );
        (next, replay)
    }

    // -- persistence --------------------------------------------------

    /// Writes the summary entries to `dir/summaries.wpcache`. Resume
    /// state (forward checkpoints, stitch memo) is session-local and not
    /// persisted: it reconstructs in one warm run, and summaries are
    /// what dominate recomputation cost.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(CACHE_MAGIC);
        put_varint(&mut out, CACHE_VERSION);
        put_varint(&mut out, self.entries.len() as u64);
        for (key, e) in &self.entries {
            out.extend_from_slice(&key[0].to_le_bytes());
            out.extend_from_slice(&key[1].to_le_bytes());
            out.extend_from_slice(&e.deps_hash[0].to_le_bytes());
            out.extend_from_slice(&e.deps_hash[1].to_le_bytes());
            put_varint(&mut out, e.sites.len() as u64);
            for &(f, pc) in &e.sites {
                put_varint(&mut out, f as u64);
                put_varint(&mut out, pc as u64);
            }
            encode_summary(&mut out, &e.summary);
        }
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("summaries.wpcache"), out)
    }

    /// Loads persisted summaries from `dir` into a fresh cache with the
    /// given budget. Any missing, truncated, or corrupt file yields an
    /// empty cache (a cold start, never an error): the cache is a pure
    /// accelerator, so the worst a bad file can do is cost time.
    pub fn load(dir: &Path, budget: u64) -> SummaryCache {
        let mut cache = SummaryCache::with_budget(budget);
        let Ok(buf) = std::fs::read(dir.join("summaries.wpcache")) else {
            return cache;
        };
        if cache.load_bytes(&buf).is_err() {
            return SummaryCache::with_budget(budget);
        }
        cache
    }

    fn load_bytes(&mut self, buf: &[u8]) -> Result<(), TraceIoError> {
        let mut r = ByteReader::new(buf);
        if r.bytes(8)? != CACHE_MAGIC.as_slice() {
            return Err(TraceIoError::Format("bad cache magic".into()));
        }
        if r.varint()? != CACHE_VERSION {
            return Err(TraceIoError::Format("unsupported cache version".into()));
        }
        let n = r.varint()? as usize;
        for _ in 0..n {
            let key = [r.u64()?, r.u64()?];
            let dh = [r.u64()?, r.u64()?];
            let nsites = r.varint()? as usize;
            let mut sites = Vec::with_capacity(nsites.min(1 << 20));
            for _ in 0..nsites {
                sites.push((r.varint()? as u32, r.varint()? as u32));
            }
            let summary = decode_summary(&mut r)?;
            let bytes = summary_bytes(&summary) + sites.len() as u64 * 8 + 96;
            self.insert_entry(
                key,
                CacheEntry {
                    summary,
                    sites,
                    deps_hash: dh,
                    bytes,
                    last_used: 0,
                },
            );
        }
        Ok(())
    }
}

struct SegPlan {
    lo: usize,
    hi: usize,
    c0: usize,
    c1: usize,
    key: [u64; 2],
    stacks_hash: [u64; 2],
    crit_hash: [u64; 2],
}

fn prefix_chains(seg_hashes: &[[u64; 2]]) -> Vec<[u64; 2]> {
    let mut chains = Vec::with_capacity(seg_hashes.len() + 1);
    chains.push(LANE_SEED);
    for h in seg_hashes {
        let prev = *chains.last().expect("seeded");
        chains.push(chain_link(TAG_CHAIN, prev, *h));
    }
    chains
}

fn segment_sites(cur: &ColumnCursor<'_>) -> Vec<(u32, u32)> {
    let mut sites = Vec::new();
    collect_sites(cur, &mut sites);
    sites.sort_unstable();
    sites.dedup();
    sites
}

fn collect_sites(cur: &ColumnCursor<'_>, sites: &mut Vec<(u32, u32)>) {
    for idx in cur.lo()..cur.hi() {
        sites.push((cur.func(idx).index() as u32, cur.pc(idx).0));
    }
}

/// Resident-size estimate used by the eviction budget; deliberately
/// coarse (allocator overhead ignored) but monotone in the real cost.
fn summary_bytes(s: &SegSummary) -> u64 {
    let mut b = 0u64;
    b += s.nodes.len() as u64 * 16;
    b += s.bitmap.len() as u64 * 8;
    b += s.members.len() as u64 * 8;
    b += (s.conc_mem.interval_count() + s.touched.interval_count()) as u64 * 16;
    b += s.cond_mem.len() as u64 * 32;
    b += s.conc_regs.len() as u64 * 2;
    b += s.reg_cells.len() as u64 * 8;
    b += s.pend.entries().count() as u64 * 24;
    b += s.pend.cleared_entries().count() as u64 * 8;
    for fr in &s.frames {
        b += fr.local.len() as u64 * 12 + fr.bnd_funcs.len() as u64 * 4;
        b += fr.bnd_marks.len() as u64 * 8 + 8;
    }
    b
}

// ---------------------------------------------------------------------
// Summary (de)serialization for the on-disk cache
// ---------------------------------------------------------------------

fn put_cond(out: &mut Vec<u8>, c: Cond) {
    match c {
        Cond::False => out.push(0),
        Cond::True => out.push(1),
        Cond::Node(n) => {
            out.push(2);
            put_varint(out, n as u64);
        }
    }
}

fn get_cond(r: &mut ByteReader<'_>) -> Result<Cond, TraceIoError> {
    Ok(match r.u8()? {
        0 => Cond::False,
        1 => Cond::True,
        2 => Cond::Node(r.varint()? as u32),
        _ => return Err(TraceIoError::Format("bad cond tag".into())),
    })
}

fn put_addr_set(out: &mut Vec<u8>, s: &AddrSet) {
    put_varint(out, s.interval_count() as u64);
    for (lo, hi) in s.iter() {
        put_varint(out, lo);
        put_varint(out, hi);
    }
}

fn get_addr_set(r: &mut ByteReader<'_>) -> Result<AddrSet, TraceIoError> {
    let n = r.varint()? as usize;
    let mut set = AddrSet::new();
    for _ in 0..n {
        let lo = r.varint()?;
        let hi = r.varint()?;
        if hi < lo {
            return Err(TraceIoError::Format("inverted interval".into()));
        }
        for_run_chunks(lo, hi, |range| set.insert(range));
    }
    Ok(set)
}

fn encode_summary(out: &mut Vec<u8>, s: &SegSummary) {
    put_varint(out, s.lo as u64);
    put_varint(out, s.hi as u64);
    put_varint(out, s.nodes.len() as u64);
    for &node in &s.nodes {
        match node {
            Node::Mem(range) => {
                out.push(0);
                put_varint(out, range.start().raw());
                put_varint(out, range.len() as u64);
            }
            Node::Reg(t, set) => {
                out.push(1);
                out.push(t.0);
                out.extend_from_slice(&set.bits().to_le_bytes());
            }
            Node::Pend((t, f, pc)) => {
                out.push(2);
                out.push(t.0);
                put_varint(out, f.index() as u64);
                put_varint(out, pc.0 as u64);
            }
            Node::Frame(t, slot) => {
                out.push(3);
                out.push(t.0);
                put_varint(out, slot as u64);
            }
            Node::Or(a, b) => {
                out.push(4);
                put_varint(out, a as u64);
                put_varint(out, b as u64);
            }
        }
    }
    put_varint(out, s.bitmap.len() as u64);
    for &w in &s.bitmap {
        out.extend_from_slice(&w.to_le_bytes());
    }
    put_varint(out, s.members.len() as u64);
    for &(rel, node) in &s.members {
        put_varint(out, rel as u64);
        put_varint(out, node as u64);
    }
    put_addr_set(out, &s.conc_mem);
    put_addr_set(out, &s.touched);
    put_varint(out, s.cond_mem.len() as u64);
    for &(lo, hi, atom, node) in &s.cond_mem {
        put_varint(out, lo);
        put_varint(out, hi);
        out.push(atom as u8);
        put_varint(out, node as u64);
    }
    put_varint(out, s.conc_regs.len() as u64);
    for set in &s.conc_regs {
        out.extend_from_slice(&set.bits().to_le_bytes());
    }
    put_varint(out, s.reg_cells.len() as u64);
    for &cell in &s.reg_cells {
        match cell {
            RegCell::Untouched => out.push(0),
            RegCell::Dead => out.push(1),
            RegCell::Live => out.push(2),
            RegCell::Cond { atom, node } => {
                out.push(3);
                out.push(atom as u8);
                put_varint(out, node as u64);
            }
        }
    }
    let pend_entries: Vec<_> = s.pend.entries().collect();
    put_varint(out, pend_entries.len() as u64);
    for (&(t, f, pc), &c) in pend_entries {
        out.push(t.0);
        put_varint(out, f.index() as u64);
        put_varint(out, pc.0 as u64);
        put_cond(out, c);
    }
    let cleared: Vec<_> = s.pend.cleared_entries().collect();
    put_varint(out, cleared.len() as u64);
    for &(t, f) in cleared {
        out.push(t.0);
        put_varint(out, f.index() as u64);
    }
    put_varint(out, s.frames.len() as u64);
    for fr in &s.frames {
        put_varint(out, fr.local.len() as u64);
        for &(f, c) in &fr.local {
            put_varint(out, f.index() as u64);
            put_cond(out, c);
        }
        put_varint(out, fr.bnd_funcs.len() as u64);
        for f in &fr.bnd_funcs {
            put_varint(out, f.index() as u64);
        }
        put_varint(out, fr.bnd_popped as u64);
        put_varint(out, fr.bnd_marks.len() as u64);
        for &c in &fr.bnd_marks {
            put_cond(out, c);
        }
    }
}

fn decode_summary(r: &mut ByteReader<'_>) -> Result<SegSummary, TraceIoError> {
    let lo = r.varint()? as usize;
    let hi = r.varint()? as usize;
    let n_nodes = r.varint()? as usize;
    let mut nodes = Vec::with_capacity(n_nodes.min(1 << 22));
    for _ in 0..n_nodes {
        nodes.push(match r.u8()? {
            0 => {
                let start = r.varint()?;
                let len = r.varint()?;
                let len = u32::try_from(len)
                    .map_err(|_| TraceIoError::Format("range too long".into()))?;
                Node::Mem(AddrRange::new(Addr::new(start), len))
            }
            1 => {
                let t = ThreadId(r.u8()?);
                Node::Reg(t, RegSet::from_bits(r.u16()?))
            }
            2 => {
                let t = ThreadId(r.u8()?);
                let f = FuncId(r.varint()? as u32);
                let pc = Pc(r.varint()? as u32);
                Node::Pend((t, f, pc))
            }
            3 => {
                let t = ThreadId(r.u8()?);
                Node::Frame(t, r.varint()? as u32)
            }
            4 => Node::Or(r.varint()? as u32, r.varint()? as u32),
            _ => return Err(TraceIoError::Format("bad node tag".into())),
        });
    }
    let n_bitmap = r.varint()? as usize;
    let mut bitmap = Vec::with_capacity(n_bitmap.min(1 << 22));
    for _ in 0..n_bitmap {
        bitmap.push(r.u64()?);
    }
    let n_members = r.varint()? as usize;
    let mut members = Vec::with_capacity(n_members.min(1 << 22));
    for _ in 0..n_members {
        members.push((r.varint()? as u32, r.varint()? as u32));
    }
    let conc_mem = get_addr_set(r)?;
    let touched = get_addr_set(r)?;
    let n_spans = r.varint()? as usize;
    let mut cond_mem = Vec::with_capacity(n_spans.min(1 << 22));
    for _ in 0..n_spans {
        let lo = r.varint()?;
        let hi = r.varint()?;
        let atom = r.u8()? != 0;
        let node = r.varint()? as u32;
        cond_mem.push((lo, hi, atom, node));
    }
    let n_regs = r.varint()? as usize;
    if n_regs != NTHREADS {
        return Err(TraceIoError::Format("bad reg table size".into()));
    }
    let mut conc_regs = Vec::with_capacity(n_regs);
    for _ in 0..n_regs {
        conc_regs.push(RegSet::from_bits(r.u16()?));
    }
    let n_cells = r.varint()? as usize;
    let mut reg_cells = Vec::with_capacity(n_cells.min(1 << 16));
    for _ in 0..n_cells {
        reg_cells.push(match r.u8()? {
            0 => RegCell::Untouched,
            1 => RegCell::Dead,
            2 => RegCell::Live,
            3 => {
                let atom = r.u8()? != 0;
                RegCell::Cond {
                    atom,
                    node: r.varint()? as u32,
                }
            }
            _ => return Err(TraceIoError::Format("bad reg cell tag".into())),
        });
    }
    let mut pend: PendingTransfer<Cond> = PendingTransfer::default();
    let n_pend = r.varint()? as usize;
    for _ in 0..n_pend {
        let t = ThreadId(r.u8()?);
        let f = FuncId(r.varint()? as u32);
        let pc = Pc(r.varint()? as u32);
        let c = get_cond(r)?;
        pend.set((t, f, pc), c);
    }
    let n_cleared = r.varint()? as usize;
    for _ in 0..n_cleared {
        let t = ThreadId(r.u8()?);
        let f = FuncId(r.varint()? as u32);
        pend.mark_cleared(t, f);
    }
    let n_frames = r.varint()? as usize;
    if n_frames != NTHREADS {
        return Err(TraceIoError::Format("bad frame table size".into()));
    }
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let n_local = r.varint()? as usize;
        let mut local = Vec::with_capacity(n_local.min(1 << 16));
        for _ in 0..n_local {
            let f = FuncId(r.varint()? as u32);
            local.push((f, get_cond(r)?));
        }
        let n_bnd = r.varint()? as usize;
        let mut bnd_funcs = Vec::with_capacity(n_bnd.min(1 << 16));
        for _ in 0..n_bnd {
            bnd_funcs.push(FuncId(r.varint()? as u32));
        }
        let bnd_popped = r.varint()? as usize;
        let n_marks = r.varint()? as usize;
        let mut bnd_marks = Vec::with_capacity(n_marks.min(1 << 16));
        for _ in 0..n_marks {
            bnd_marks.push(get_cond(r)?);
        }
        frames.push(SegFrames {
            local,
            bnd_funcs,
            bnd_popped,
            bnd_marks,
        });
    }
    Ok(SegSummary {
        lo,
        hi,
        nodes,
        bitmap,
        members,
        conc_mem,
        touched,
        cond_mem,
        conc_regs,
        reg_cells,
        pend,
        frames,
    })
}
