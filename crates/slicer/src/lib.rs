#![forbid(unsafe_code)]

//! Dynamic backward program slicing over browser instruction traces — the
//! core contribution of *Characterization of Unnecessary Computations in
//! Web Applications* (ISPASS 2019), §III.
//!
//! The profiler treats the browser as a whole program rendering a page and
//! works on its machine-level instruction trace:
//!
//! 1. **Forward pass** ([`ForwardPass`]): per-function dynamic CFGs
//!    ([`CfgSet`]) from matched calls/returns, postdominators
//!    ([`PostDoms`]), and the control-dependence relation ([`ControlDeps`],
//!    Ferrante–Ottenstein–Warren).
//! 2. **Backward pass** ([`slice()`]): liveness-driven slicing with a shared
//!    live-memory interval set ([`AddrSet`]) and per-thread live-register
//!    sets, a pending-branch list for control dependences, and dynamic
//!    call-site inclusion.
//! 3. **Criteria** ([`pixel_criteria`], [`syscall_criteria`]): the pixels
//!    buffer at marker points, or the values read by output system calls.
//!
//! Instructions outside the computed slice had no effect on what the user
//! saw (or on anything the process communicated) — they are the paper's
//! *unnecessary computations*.
//!
//! # Examples
//!
//! ```
//! use wasteprof_slicer::{pixel_criteria, slice, ForwardPass, SliceOptions};
//! use wasteprof_trace::{site, Recorder, Region, ThreadKind};
//!
//! // A two-producer page: one value feeds the pixels, one is wasted work.
//! let mut rec = Recorder::new();
//! rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
//! let style = rec.alloc_cell(Region::Heap);
//! let wasted = rec.alloc_cell(Region::Heap);
//! let tile = rec.alloc(Region::PixelTile, 256);
//! rec.compute(site!(), &[], &[style.into()]);
//! rec.compute(site!(), &[], &[wasted.into()]); // never read again
//! rec.compute(site!(), &[style.into()], &[tile]);
//! rec.marker(site!(), tile);
//! let trace = rec.finish();
//!
//! let fwd = ForwardPass::build(&trace);
//! let result = slice(&trace, &fwd, &pixel_criteria(&trace), &SliceOptions::default());
//! assert!(result.fraction() < 1.0); // the wasted producer is excluded
//! assert!(result.fraction() > 0.0);
//! ```

#![warn(missing_docs)]

mod cdg;
mod cfg;
mod criteria;
mod incremental;
mod live;
mod parallel;
mod postdom;
mod slice;
mod strip;
mod witness;

pub use cdg::{Cdg, ControlDeps};
pub use cfg::{Cfg, CfgNode, CfgSet, NodeId};
pub use criteria::{
    pixel_criteria, pixel_criteria_streamed, syscall_criteria, syscall_criteria_streamed, Criteria,
    SlicingCriterion,
};
pub use incremental::{CacheStats, SegmentHashes, SummaryCache};
pub use live::{AddrSet, IntervalSet, LiveState};
pub use postdom::PostDoms;
pub use slice::{slice, slice_streamed, ForwardPass, SliceOptions, SliceResult, TimelinePoint};
pub use strip::{strip_allocator_deps, ALLOCATOR_FN};
pub use witness::{WitnessKind, WitnessRow, Witnesses};
