//! Dynamic control-flow graph construction (forward pass, part 1).
//!
//! The profiler "builds a Control Flow Graph for each function/procedure
//! from the trace of dynamically executed instructions. Boundaries of
//! functions/procedures are identified through matching call and return
//! instructions" (§III-A). Building from the *dynamic* trace is essential:
//! indirect-branch targets cannot be found statically, so a node's
//! successors are exactly the static PCs observed to follow it in some
//! execution of the function.

use std::collections::HashMap;
use std::io::{Read, Seek};

use wasteprof_trace::{
    ColumnCursor, FuncId, InstrKind, Pc, ThreadId, Trace, TraceIoError, TraceReader,
};

/// Index of a node within one function's CFG.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The virtual entry node every CFG has.
    pub const ENTRY: NodeId = NodeId(0);
    /// The virtual exit node every CFG has.
    pub const EXIT: NodeId = NodeId(1);

    /// Dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// One CFG node: a static instruction site, or the virtual entry/exit.
#[derive(Clone, Debug, Default)]
pub struct CfgNode {
    /// The static PC, or `None` for entry/exit.
    pub pc: Option<Pc>,
    /// Observed successors.
    pub succs: Vec<NodeId>,
    /// Observed predecessors.
    pub preds: Vec<NodeId>,
}

/// The dynamic CFG of one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    func: FuncId,
    nodes: Vec<CfgNode>,
    by_pc: HashMap<Pc, NodeId>,
}

impl Cfg {
    fn new(func: FuncId) -> Self {
        let entry = CfgNode {
            pc: None,
            succs: Vec::new(),
            preds: Vec::new(),
        };
        let exit = CfgNode {
            pc: None,
            succs: Vec::new(),
            preds: Vec::new(),
        };
        Cfg {
            func,
            nodes: vec![entry, exit],
            by_pc: HashMap::new(),
        }
    }

    /// The function this CFG describes.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// Number of nodes, including the virtual entry and exit.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a never-executed function (cannot happen in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The node for `pc`, if that site was observed in this function.
    pub fn node_of(&self, pc: Pc) -> Option<NodeId> {
        self.by_pc.get(&pc).copied()
    }

    /// Node data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &CfgNode {
        &self.nodes[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    fn intern(&mut self, pc: Pc) -> NodeId {
        if let Some(&id) = self.by_pc.get(&pc) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(CfgNode {
            pc: Some(pc),
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.by_pc.insert(pc, id);
        id
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from.index()].succs.contains(&to) {
            self.nodes[from.index()].succs.push(to);
            self.nodes[to.index()].preds.push(from);
        }
    }
}

/// Per-thread, per-frame cursor used while folding the trace into CFGs.
#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    last: Option<NodeId>,
}

/// Incremental [`CfgSet`] construction: the trace-folding state of
/// [`CfgSet::build`], lifted out so the same pass can be driven either by
/// one cursor over an in-memory trace or by a sequence of streamed chunk
/// cursors. Both drivers execute the identical per-instruction step, so
/// the resulting CFGs are equal by construction.
/// `Clone` lets the incremental engine checkpoint the fold mid-trace: a
/// cloned builder resumes from a segment boundary, so appending a frame
/// re-folds only the new tail. Edge insertion is first-observation-order
/// sensitive, but windows always arrive in trace order, so a resumed
/// clone produces the same `CfgSet` as a from-scratch fold.
#[derive(Debug, Default, Clone)]
pub(crate) struct CfgBuilder {
    cfgs: HashMap<FuncId, Cfg>,
    stacks: HashMap<ThreadId, Vec<Frame>>,
}

impl CfgBuilder {
    pub(crate) fn new() -> Self {
        CfgBuilder::default()
    }

    /// Folds one window of instructions in. Windows must arrive in trace
    /// order and tile the trace without gaps.
    pub(crate) fn feed(&mut self, cur: &ColumnCursor<'_>) {
        // Iterate the columns directly: this pass reads only the thread,
        // function, PC, and kind fields, so materializing whole `Instr`
        // views would drag every operand through the cache for nothing.
        for idx in cur.lo()..cur.hi() {
            let func = cur.func(idx);
            let stack = self.stacks.entry(cur.tid(idx)).or_default();
            if stack.is_empty() {
                // First sight of this thread: its root function never had
                // a call emitted, so open its frame here.
                stack.push(Frame { func, last: None });
            }
            CfgSet::step(&mut self.cfgs, stack, func, cur.pc(idx), cur.kind(idx));
        }
    }

    /// Closes every frame still open at the end of the trace and returns
    /// the finished set.
    pub(crate) fn finish(mut self) -> CfgSet {
        for stack in self.stacks.values_mut() {
            while let Some(frame) = stack.pop() {
                let cfg = self
                    .cfgs
                    .entry(frame.func)
                    .or_insert_with(|| Cfg::new(frame.func));
                let from = frame.last.unwrap_or(NodeId::ENTRY);
                cfg.add_edge(from, NodeId::EXIT);
            }
        }
        CfgSet { cfgs: self.cfgs }
    }
}

/// All per-function CFGs discovered in a trace.
#[derive(Debug, Clone, Default)]
pub struct CfgSet {
    cfgs: HashMap<FuncId, Cfg>,
}

impl CfgSet {
    /// Builds the CFG of every function executed in `trace`.
    ///
    /// Functions are delimited by matching calls and returns per thread;
    /// frames still open at the end of the trace are closed with an edge to
    /// the virtual exit so every observed node reaches it.
    pub fn build(trace: &Trace) -> Self {
        let mut b = CfgBuilder::new();
        b.feed(&trace.columns().cursor(0, trace.len()));
        b.finish()
    }

    /// Builds the CFG set from a `WPTRACE2` stream without materializing
    /// the trace: chunks are decoded one bounded window at a time.
    ///
    /// # Errors
    ///
    /// Any chunk decode or read error from the underlying
    /// [`TraceReader`].
    pub fn build_streamed<R: Read + Seek>(
        reader: &mut TraceReader<R>,
    ) -> Result<Self, TraceIoError> {
        let mut b = CfgBuilder::new();
        let n = reader.len();
        reader.stream_range(0, n, |cur| b.feed(cur))?;
        Ok(b.finish())
    }

    fn step(
        cfgs: &mut HashMap<FuncId, Cfg>,
        stack: &mut Vec<Frame>,
        func: FuncId,
        pc: Pc,
        kind: InstrKind,
    ) {
        let frame = stack.last_mut().expect("frame exists");
        debug_assert_eq!(
            frame.func, func,
            "instruction attributed outside current frame"
        );
        let cfg = cfgs.entry(func).or_insert_with(|| Cfg::new(func));
        let node = cfg.intern(pc);
        let from = frame.last.unwrap_or(NodeId::ENTRY);
        cfg.add_edge(from, node);
        frame.last = Some(node);

        match kind {
            InstrKind::Call { callee } => {
                stack.push(Frame {
                    func: callee,
                    last: None,
                });
            }
            InstrKind::Ret => {
                // The return leaves the current function: connect it to exit
                // and pop back to the caller, whose cursor stays at the call
                // site so the next caller instruction gets a call→next edge.
                cfg.add_edge(node, NodeId::EXIT);
                stack.pop();
            }
            _ => {}
        }
    }

    /// The CFG of `func`, if it executed.
    pub fn get(&self, func: FuncId) -> Option<&Cfg> {
        self.cfgs.get(&func)
    }

    /// Iterates over all CFGs.
    pub fn iter(&self) -> impl Iterator<Item = (&FuncId, &Cfg)> {
        self.cfgs.iter()
    }

    /// Number of functions with a CFG.
    pub fn len(&self) -> usize {
        self.cfgs.len()
    }

    /// True if the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.cfgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::{site, Recorder, Reg, RegSet, Region, ThreadKind};

    #[test]
    fn straight_line_chain() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let a = site!();
        let b = site!();
        rec.alu(a, Reg::Rax, RegSet::EMPTY);
        rec.alu(b, Reg::Rax, RegSet::EMPTY);
        let trace = rec.finish();
        let set = CfgSet::build(&trace);
        let cfg = set.get(root).unwrap();
        let na = cfg.node_of(a).unwrap();
        let nb = cfg.node_of(b).unwrap();
        assert_eq!(cfg.node(NodeId::ENTRY).succs, vec![na]);
        assert_eq!(cfg.node(na).succs, vec![nb]);
        assert_eq!(cfg.node(nb).succs, vec![NodeId::EXIT]);
    }

    #[test]
    fn branch_gets_both_observed_successors() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let cell = rec.alloc_cell(Region::Heap);
        let br = site!();
        let then_s = site!();
        let join_s = site!();
        // Taken path.
        rec.branch_mem(br, cell, true);
        rec.alu(then_s, Reg::Rax, RegSet::EMPTY);
        rec.alu(join_s, Reg::Rax, RegSet::EMPTY);
        // Not-taken path.
        rec.branch_mem(br, cell, false);
        rec.alu(join_s, Reg::Rax, RegSet::EMPTY);
        let trace = rec.finish();
        let cfg = CfgSet::build(&trace);
        let cfg = cfg.get(root).unwrap();
        let nbr = cfg.node_of(br).unwrap();
        let nthen = cfg.node_of(then_s).unwrap();
        let njoin = cfg.node_of(join_s).unwrap();
        let succs = &cfg.node(nbr).succs;
        assert!(succs.contains(&nthen));
        assert!(succs.contains(&njoin));
        assert_eq!(succs.len(), 2);
    }

    #[test]
    fn loops_create_back_edges() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let cell = rec.alloc_cell(Region::Heap);
        let head = site!();
        let body = site!();
        for _ in 0..3 {
            rec.branch_mem(head, cell, true);
            rec.alu(body, Reg::Rax, RegSet::EMPTY);
        }
        rec.branch_mem(head, cell, false);
        let trace = rec.finish();
        let cfg = CfgSet::build(&trace);
        let cfg = cfg.get(root).unwrap();
        let nhead = cfg.node_of(head).unwrap();
        let nbody = cfg.node_of(body).unwrap();
        assert!(cfg.node(nbody).succs.contains(&nhead), "back edge missing");
        assert!(cfg.node(nhead).succs.contains(&nbody));
        assert!(cfg.node(nhead).succs.contains(&NodeId::EXIT));
    }

    #[test]
    fn calls_delimit_functions() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let callee = rec.intern_func("callee");
        let callsite = site!();
        let after = site!();
        let inner = site!();
        rec.in_func(callsite, callee, |rec| {
            rec.alu(inner, Reg::Rax, RegSet::EMPTY);
        });
        rec.alu(after, Reg::Rax, RegSet::EMPTY);
        let trace = rec.finish();
        let set = CfgSet::build(&trace);

        let caller = set.get(root).unwrap();
        let ncall = caller.node_of(callsite).unwrap();
        let nafter = caller.node_of(after).unwrap();
        // The callee body does not appear in the caller's CFG; the call's
        // successor is the instruction after the call returns.
        assert_eq!(caller.node(ncall).succs, vec![nafter]);

        let callee_cfg = set.get(callee).unwrap();
        let ninner = callee_cfg.node_of(inner).unwrap();
        assert_eq!(callee_cfg.node(NodeId::ENTRY).succs, vec![ninner]);
        // inner -> ret -> exit
        let nret = callee_cfg.node(ninner).succs[0];
        assert!(callee_cfg.node(nret).succs.contains(&NodeId::EXIT));
    }

    #[test]
    fn interleaved_threads_do_not_cross_edges() {
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.spawn_thread(ThreadKind::Compositor, "root");
        let a = site!();
        let b = site!();
        rec.switch_to(t0);
        rec.alu(a, Reg::Rax, RegSet::EMPTY);
        rec.switch_to(t1);
        rec.alu(b, Reg::Rax, RegSet::EMPTY);
        rec.switch_to(t0);
        rec.alu(b, Reg::Rax, RegSet::EMPTY);
        let trace = rec.finish();
        let set = CfgSet::build(&trace);
        // Both threads run the same root function; edges must reflect each
        // thread's own path (a->b in t0; entry->b in t1), never a->b->a.
        let cfg = set.iter().next().unwrap().1;
        let na = cfg.node_of(a).unwrap();
        let nb = cfg.node_of(b).unwrap();
        assert!(cfg.node(na).succs.contains(&nb));
        assert!(cfg.node(NodeId::ENTRY).succs.contains(&nb)); // from t1
        assert!(!cfg.node(nb).succs.contains(&na));
    }

    #[test]
    fn open_frames_reach_exit() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let callee = rec.intern_func("callee");
        let inner = site!();
        rec.enter(site!(), callee);
        rec.alu(inner, Reg::Rax, RegSet::EMPTY);
        // No leave(): frame is open at end of trace.
        let trace = rec.finish();
        let set = CfgSet::build(&trace);
        let cfg = set.get(callee).unwrap();
        let ninner = cfg.node_of(inner).unwrap();
        assert!(cfg.node(ninner).succs.contains(&NodeId::EXIT));
    }
}
