//! Segment-parallel backward slicing: **summarize → stitch → replay**.
//!
//! The sequential backward pass ([`crate::slice`]) is a single dependent
//! chain: the action at trace index `i` depends on the live state produced
//! by every index above it. To parallelize without changing a single bit
//! of the result, this module exploits that slicing is *backward
//! reachability over a fixed dynamic-dependence structure*: the exact
//! state at any point is the union of the state produced by an ∅-seeded
//! run of the segment and the cascade induced by whatever is live at the
//! segment's upper boundary. Unions of runs are runs, so each segment can
//! be scanned **symbolically** once, in parallel, recording how its
//! behaviour depends on the (then unknown) boundary state:
//!
//! 1. **Summarize** (parallel): scan each segment backward with the exact
//!    sequential step logic, but split every quantity into a *concrete*
//!    part (what an ∅-seeded run produces — criteria live here) and a
//!    *conditional* part guarded by nodes of a per-segment condition
//!    graph. Atom nodes test the incoming boundary state (a live memory
//!    range, a thread's live registers, a pending-branch key, a frame's
//!    `any_slice` flag); `Or` nodes combine them. Writes kill
//!    unconditionally (a killed unit is dead below its writer whether or
//!    not the writer joins the slice), so the symbolic state never forks.
//! 2. **Stitch** (sequential, cost ∝ summary size): walk segments from
//!    the trace end, evaluating each summary's nodes against the exact
//!    boundary state (one forward pass — nodes are created in dependency
//!    order) and composing the next boundary state from the summary's
//!    transfer sets (concrete ∪ activated ∪ pass-through).
//! 3. **Replay** (parallel): resolve each segment's conditional members
//!    against its node activations, then recompute stats and timeline
//!    checkpoints per segment; a sequential suffix-sum merge rebuilds the
//!    global cumulative timeline. Segment boundaries are 64-aligned so
//!    finalizers never share a bitmap word.
//!
//! The result is **byte-identical** to the sequential pass for any
//! segment count and thread count (the differential tests assert full
//! [`SliceResult`] equality). `run` returns `None` — falling back to the
//! sequential reference — in two rare cases: a segment's condition graph
//! outgrowing [`MAX_NODES`], or a trace whose branches carry write
//! effects (the recorder never emits one, but the summaries' "probe
//! consumes, never kills" symmetry depends on it, so it is checked).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Read, Seek};

use rayon::prelude::*;
use wasteprof_trace::{
    AddrRange, ColumnCursor, Columns, FuncId, InstrKind, Pc, RegSet, ThreadId, Trace, TraceIoError,
    TraceReader,
};

use crate::cdg::{ControlDeps, PendKey, PendingTransfer};
use crate::criteria::{Criteria, SlicingCriterion};
use crate::live::{for_run_chunks, AddrSet};
use crate::slice::{
    considered_len, considered_prefix, FibBuild, ForwardPass, SliceOptions, SliceResult,
    TimelinePoint,
};

/// Thread-slot count, mirroring the sequential pass's dense tables.
pub(crate) const NTHREADS: usize = 256;
/// Register-file width per thread ([`RegSet`] is a 16-bit mask).
pub(crate) const NREGS: usize = 16;
/// Per-segment cap on condition-graph nodes. A summary bigger than this
/// would make the sequential stitch phase the bottleneck anyway, so the
/// pass bails out to the reference walk instead of degrading.
const MAX_NODES: usize = 1 << 22;

pub(crate) type NodeId = u32;

/// One condition-graph node: a predicate over the segment's incoming
/// boundary state. Atoms are created at the moment the symbolic scan
/// consults an unknown, `Or`s when two conditions merge, so ids are in
/// dependency order and one forward pass evaluates the whole graph.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Node {
    /// Boundary live memory intersects this range.
    Mem(AddrRange),
    /// Boundary live registers of the thread intersect this set.
    Reg(ThreadId, RegSet),
    /// The key is in the boundary pending-branch set.
    Pend(PendKey),
    /// Boundary frame `slot` (bottom-indexed) of the thread has its
    /// `any_slice` flag set.
    Frame(ThreadId, u32),
    /// Disjunction of two earlier nodes.
    Or(NodeId, NodeId),
}

/// A tri-state condition: statically false, statically true (concrete),
/// or dependent on the boundary via a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cond {
    False,
    True,
    Node(NodeId),
}

/// Symbolic liveness of one register of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RegCell {
    /// No in-segment event touched it: boundary liveness passes through.
    Untouched,
    /// Killed by a write; boundary liveness is masked.
    Dead,
    /// Concretely live (∅-seeded run makes it live).
    Live,
    /// Live iff `node` activates, or (`atom`) it was live at the boundary
    /// and nothing in between killed it.
    Cond { atom: bool, node: NodeId },
}

/// One conditionally-live memory span `[start, end)`. `atom` marks spans
/// whose *boundary* liveness also passes through (the span was never
/// killed below the point that made it conditional).
pub(crate) type Span = (u64, u64, bool, NodeId);

/// Per-thread frame state of one segment's symbolic scan: frames opened
/// inside the segment (`local`, from `Ret`s) stacked on top of the frames
/// that were already open at the segment's upper boundary (`bnd_funcs`,
/// captured by the structural pre-scan). `Call`s pop local frames first;
/// once those run out they pop boundary frames (`bnd_popped` counts them)
/// whose `any_slice` flag is only known at stitch time — `Frame` atoms
/// stand in for it, OR-ed with in-segment marks (`bnd_marks`).
#[derive(Debug, Clone, Default)]
pub(crate) struct SegFrames {
    pub(crate) local: Vec<(FuncId, Cond)>,
    pub(crate) bnd_funcs: Vec<FuncId>,
    pub(crate) bnd_popped: usize,
    pub(crate) bnd_marks: Vec<Cond>,
}

/// Everything phase 2 needs to know about one segment.
///
/// Apart from `lo`/`hi`, every field is *position-independent*: bitmap
/// words and `members` indices are segment-relative, and the symbolic
/// transfer sets speak in addresses, registers, and static locations.
/// The incremental cache relies on this to reuse a summary after the
/// segment's absolute position shifts (it only rewrites `lo`/`hi`).
#[derive(Debug, Clone)]
pub(crate) struct SegSummary {
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    pub(crate) nodes: Vec<Node>,
    /// Concrete slice members (∅-seeded), one bit per instruction,
    /// word 0 = instructions `[lo, lo+64)`.
    pub(crate) bitmap: Vec<u64>,
    /// Conditional members: `(idx - lo, node)`.
    pub(crate) members: Vec<(u32, NodeId)>,
    /// Concretely live memory at the segment's lower boundary.
    pub(crate) conc_mem: AddrSet,
    /// Bytes the segment wrote or made concretely/conditionally live:
    /// boundary liveness of everything *outside* passes through.
    pub(crate) touched: AddrSet,
    /// Conditionally live memory spans at the lower boundary.
    pub(crate) cond_mem: Vec<Span>,
    /// Concretely live registers per thread slot.
    pub(crate) conc_regs: Vec<RegSet>,
    /// Symbolic register cells, `NREGS` per thread slot.
    pub(crate) reg_cells: Vec<RegCell>,
    pub(crate) pend: PendingTransfer<Cond>,
    pub(crate) frames: Vec<SegFrames>,
}

/// Exact state at a segment boundary, computed by the stitch phase.
///
/// Position-independent (addresses, registers, pending keys, and frame
/// stacks carry no trace indices), which is what lets the incremental
/// stitch memo reuse one across runs whose absolute positions differ.
#[derive(Debug, Clone)]
pub(crate) struct BoundaryState {
    pub(crate) mem: AddrSet,
    pub(crate) regs: Vec<RegSet>,
    pub(crate) pend: HashSet<PendKey, FibBuild>,
    pub(crate) frames: Vec<Vec<(FuncId, bool)>>,
}

impl BoundaryState {
    /// The state at the very end of the considered prefix: nothing live,
    /// nothing pending, and the open-call frames captured there, all
    /// flags down.
    pub(crate) fn initial(stacks_at_end: &[Vec<FuncId>]) -> Self {
        BoundaryState {
            mem: AddrSet::new(),
            regs: vec![RegSet::EMPTY; NTHREADS],
            pend: HashSet::default(),
            frames: stacks_at_end
                .iter()
                .map(|fs| fs.iter().map(|&f| (f, false)).collect())
                .collect(),
        }
    }
}

/// A stitched segment, ready for parallel replay.
pub(crate) struct Replay {
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    pub(crate) bitmap: Vec<u64>,
    pub(crate) members: Vec<(u32, NodeId)>,
    pub(crate) active: Vec<bool>,
}

/// Per-segment replay output; `timeline` holds *local* cumulative counts
/// keyed by global instruction index.
#[derive(Clone)]
pub(crate) struct SegFinal {
    pub(crate) bitmap: Vec<u64>,
    pub(crate) slice_count: u64,
    pub(crate) per_thread: Vec<(u64, u64)>,
    pub(crate) per_func: Vec<(u64, u64)>,
    pub(crate) tracked_total: u64,
    pub(crate) tracked_slice: u64,
    pub(crate) timeline: Vec<(usize, TimelinePoint)>,
}

/// Runs the segment-parallel pass with `k` requested segments. Returns
/// `None` when the pass declines (degenerate segmentation, branch write
/// effects, or a summary outgrowing its node budget); the caller falls
/// back to the sequential walk.
pub(crate) fn run(
    trace: &Trace,
    forward: &ForwardPass,
    criteria: &Criteria,
    options: &SliceOptions,
    k: usize,
) -> Option<SliceResult> {
    let n = considered_len(trace, options);
    // 64-aligned boundaries: segment bitmaps never share a word.
    let seg = n.div_ceil(k).div_ceil(64) * 64;
    if seg == 0 {
        return None;
    }
    let nsegs = n.div_ceil(seg);
    if nsegs <= 1 {
        return None;
    }
    let bounds: Vec<usize> = (0..nsegs).map(|i| i * seg).chain([n]).collect();
    let cols = trace.columns();
    let (mut stacks, branch_writes) = structural_scan(cols, n, &bounds);
    if branch_writes {
        return None;
    }
    let init = BoundaryState::initial(&stacks[nsegs - 1]);

    let deps = forward.control_deps();
    let items = criteria.items();
    let interval = if options.timeline_interval == 0 {
        ((n as u64) / 1000).max(1)
    } else {
        options.timeline_interval
    };
    let tracked = options.tracked_thread;

    struct Job {
        lo: usize,
        hi: usize,
        bnd: Vec<Vec<FuncId>>,
        ci: (usize, usize),
    }
    let jobs: Vec<Job> = (0..nsegs)
        .map(|ki| {
            let (lo, hi) = (bounds[ki], bounds[ki + 1]);
            Job {
                lo,
                hi,
                bnd: std::mem::take(&mut stacks[ki]),
                ci: (
                    items.partition_point(|c| c.pos.index() < lo),
                    items.partition_point(|c| c.pos.index() < hi),
                ),
            }
        })
        .collect();

    // Phase 1: parallel symbolic summaries.
    let summaries: Vec<Option<SegSummary>> = jobs
        .par_iter()
        .map(|job| {
            let mut s = Summarizer::new(
                job.lo,
                job.hi,
                deps,
                &items[job.ci.0..job.ci.1],
                job.bnd.clone(),
            );
            s.feed(&trace.columns().cursor(job.lo, job.hi));
            s.finish()
        })
        .collect();
    let mut summaries: Vec<SegSummary> = {
        let mut v = Vec::with_capacity(nsegs);
        for s in summaries {
            v.push(s?);
        }
        v
    };

    // Phase 2: sequential stitch from the trace end.
    let mut state = init;
    let mut replays: Vec<Replay> = Vec::with_capacity(nsegs);
    while let Some(sum) = summaries.pop() {
        let (next, replay) = stitch(sum, &state);
        state = next;
        replays.push(replay);
    }
    replays.reverse();

    // Phase 3: parallel replay, then a sequential suffix-sum merge.
    let nfuncs = trace.functions().len();
    let finals: Vec<SegFinal> = replays
        .par_iter()
        .map(|r| {
            let mut f = Finalizer::new(r, n, nfuncs, interval, tracked);
            f.feed(&trace.columns().cursor(r.lo, r.hi));
            f.finish()
        })
        .collect();

    Some(assemble(n, nfuncs, &replays, finals))
}

/// Streamed counterpart of [`run`]: identical summarize → stitch → replay
/// structure, but segments are scanned one at a time through the reader's
/// bounded chunk window instead of in parallel over a resident trace. The
/// result is byte-identical to [`run`] (and hence to the sequential walk);
/// only the scheduling differs.
pub(crate) fn run_streamed<R: Read + Seek>(
    reader: &mut TraceReader<R>,
    forward: &ForwardPass,
    criteria: &Criteria,
    options: &SliceOptions,
    k: usize,
) -> Result<Option<SliceResult>, TraceIoError> {
    let n = considered_prefix(reader.len(), options);
    let seg = n.div_ceil(k).div_ceil(64) * 64;
    if seg == 0 {
        return Ok(None);
    }
    let nsegs = n.div_ceil(seg);
    if nsegs <= 1 {
        return Ok(None);
    }
    let bounds: Vec<usize> = (0..nsegs).map(|i| i * seg).chain([n]).collect();
    let mut scan = StructuralScan::new(&bounds);
    reader.stream_range(0, n, |cur| scan.feed(cur))?;
    let (mut stacks, branch_writes) = scan.finish();
    if branch_writes {
        return Ok(None);
    }
    let init = BoundaryState::initial(&stacks[nsegs - 1]);

    let deps = forward.control_deps();
    let items = criteria.items();
    let interval = if options.timeline_interval == 0 {
        ((n as u64) / 1000).max(1)
    } else {
        options.timeline_interval
    };
    let tracked = options.tracked_thread;

    // Phase 1: one segment at a time, each fed backward from disk chunks.
    let mut summaries: Vec<SegSummary> = Vec::with_capacity(nsegs);
    for ki in 0..nsegs {
        let (lo, hi) = (bounds[ki], bounds[ki + 1]);
        let c0 = items.partition_point(|c| c.pos.index() < lo);
        let c1 = items.partition_point(|c| c.pos.index() < hi);
        let mut s = Summarizer::new(
            lo,
            hi,
            deps,
            &items[c0..c1],
            std::mem::take(&mut stacks[ki]),
        );
        reader.stream_range_rev(lo, hi, |cur| s.feed(cur))?;
        match s.finish() {
            Some(sum) => summaries.push(sum),
            None => return Ok(None),
        }
    }

    // Phase 2: sequential stitch from the trace end (no trace access).
    let mut state = init;
    let mut replays: Vec<Replay> = Vec::with_capacity(nsegs);
    while let Some(sum) = summaries.pop() {
        let (next, replay) = stitch(sum, &state);
        state = next;
        replays.push(replay);
    }
    replays.reverse();

    // Phase 3: streamed replay, then the shared merge.
    let nfuncs = reader.functions().len();
    let mut finals: Vec<SegFinal> = Vec::with_capacity(nsegs);
    for r in &replays {
        let mut f = Finalizer::new(r, n, nfuncs, interval, tracked);
        reader.stream_range_rev(r.lo, r.hi, |cur| f.feed(cur))?;
        finals.push(f.finish());
    }
    Ok(Some(assemble(n, nfuncs, &replays, finals)))
}

/// The suffix-sum merge shared by [`run`] and [`run_streamed`]: copies the
/// per-segment bitmaps into place (boundaries are 64-aligned, so words
/// never straddle segments), sums the counters, and rebuilds the global
/// cumulative timeline from per-segment local counts.
pub(crate) fn assemble(
    n: usize,
    nfuncs: usize,
    replays: &[Replay],
    finals: Vec<SegFinal>,
) -> SliceResult {
    let mut bitmap = vec![0u64; n.div_ceil(64)];
    let mut per_thread = vec![(0u64, 0u64); NTHREADS];
    let mut per_func = vec![(0u64, 0u64); nfuncs];
    for (r, f) in replays.iter().zip(&finals) {
        let w0 = r.lo / 64;
        bitmap[w0..w0 + f.bitmap.len()].copy_from_slice(&f.bitmap);
        for (acc, &(s, t)) in per_thread.iter_mut().zip(&f.per_thread) {
            acc.0 += s;
            acc.1 += t;
        }
        for (acc, &(s, t)) in per_func.iter_mut().zip(&f.per_func) {
            acc.0 += s;
            acc.1 += t;
        }
    }
    let slice_count: u64 = finals.iter().map(|f| f.slice_count).sum();

    // Timeline: segments are processed (backward) last-to-first, so a
    // segment's cumulative counts sit on top of the totals of every
    // *later* segment.
    let mut timeline = Vec::new();
    let (mut off_slice, mut off_tt, mut off_ts) = (0u64, 0u64, 0u64);
    for f in finals.iter().rev() {
        for &(idx, p) in &f.timeline {
            timeline.push(TimelinePoint {
                processed: (n - idx) as u64,
                in_slice: p.in_slice + off_slice,
                tracked_processed: p.tracked_processed + off_tt,
                tracked_in_slice: p.tracked_in_slice + off_ts,
            });
        }
        off_slice += f.slice_count;
        off_tt += f.tracked_total;
        off_ts += f.tracked_slice;
    }

    SliceResult {
        considered: n as u64,
        bitmap,
        slice_count,
        per_thread: per_thread
            .iter()
            .enumerate()
            .filter(|(_, &(s, t))| s != 0 || t != 0)
            .map(|(i, &v)| (ThreadId(i as u8), v))
            .collect(),
        per_func: per_func
            .iter()
            .enumerate()
            .filter(|(_, &(s, t))| s != 0 || t != 0)
            .map(|(i, &v)| (FuncId(i as u32), v))
            .collect(),
        timeline,
        witness: None,
    }
}

/// Phase 0: one cheap forward walk capturing, at every segment boundary,
/// each thread's open-call stack (the backward pass's frame stack at that
/// point is exactly this, built from `Ret`s/`Call`s). Also verifies that
/// no branch carries write effects. Cursor-fed so the walk works equally
/// over a resident trace or a sequence of streamed disk chunks.
pub(crate) struct StructuralScan {
    bounds: Vec<usize>,
    stacks: Vec<Vec<FuncId>>,
    out: Vec<Vec<Vec<FuncId>>>,
    bi: usize,
    branch_writes: bool,
}

impl StructuralScan {
    pub(crate) fn new(bounds: &[usize]) -> Self {
        StructuralScan {
            bounds: bounds.to_vec(),
            stacks: vec![Vec::new(); NTHREADS],
            out: Vec::with_capacity(bounds.len().saturating_sub(1)),
            bi: 1,
            branch_writes: false,
        }
    }

    /// Resumes a scan from a checkpoint: the open-call stacks and
    /// branch-write flag captured at `bounds[0]` by a previous scan, so
    /// only the tail beyond the checkpoint needs feeding.
    pub(crate) fn resume(bounds: &[usize], stacks: Vec<Vec<FuncId>>, branch_writes: bool) -> Self {
        StructuralScan {
            bounds: bounds.to_vec(),
            stacks,
            out: Vec::with_capacity(bounds.len().saturating_sub(1)),
            bi: 1,
            branch_writes,
        }
    }

    pub(crate) fn feed(&mut self, cur: &ColumnCursor<'_>) {
        for idx in cur.lo()..cur.hi() {
            while self.bi < self.bounds.len() && self.bounds[self.bi] == idx {
                self.out.push(self.stacks.clone());
                self.bi += 1;
            }
            let kind = cur.kind(idx);
            match kind {
                InstrKind::Call { callee } => self.stacks[cur.tid(idx).index()].push(callee),
                InstrKind::Ret => {
                    self.stacks[cur.tid(idx).index()].pop();
                }
                _ => {}
            }
            if kind.is_branch()
                && (!cur.reg_writes(idx).is_empty() || !cur.mem_writes(idx).is_empty())
            {
                self.branch_writes = true;
            }
        }
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn finish(mut self) -> (Vec<Vec<Vec<FuncId>>>, bool) {
        while self.bi < self.bounds.len() {
            self.out.push(self.stacks.clone());
            self.bi += 1;
        }
        (self.out, self.branch_writes)
    }
}

#[allow(clippy::type_complexity)]
fn structural_scan(cols: &Columns, n: usize, bounds: &[usize]) -> (Vec<Vec<Vec<FuncId>>>, bool) {
    let mut scan = StructuralScan::new(bounds);
    scan.feed(&cols.cursor(0, n));
    scan.finish()
}

/// The symbolic backward scan of one segment (phase 1). Mirrors the
/// sequential step logic exactly; every consultation of state that the
/// boundary could influence goes through [`Cond`]s instead of booleans.
pub(crate) struct Summarizer<'a> {
    lo: usize,
    hi: usize,
    deps: &'a ControlDeps,
    criteria: &'a [SlicingCriterion],
    crit_idx: usize,
    nodes: Vec<Node>,
    or_cache: HashMap<(NodeId, NodeId), NodeId, FibBuild>,
    conc_mem: AddrSet,
    touched: AddrSet,
    /// `start -> (end, atom, node)`, disjoint spans.
    cond_mem: BTreeMap<u64, (u64, bool, NodeId)>,
    conc_regs: Vec<RegSet>,
    reg_cells: Vec<RegCell>,
    pend: PendingTransfer<Cond>,
    frames: Vec<SegFrames>,
    bitmap: Vec<u64>,
    members: Vec<(u32, NodeId)>,
    overflow: bool,
    // Scratch buffers, reused across instructions.
    span_scratch: Vec<(u64, (u64, bool, NodeId))>,
    spans_out: Vec<Span>,
    ranges_a: Vec<AddrRange>,
    ranges_b: Vec<AddrRange>,
    ranges_c: Vec<AddrRange>,
}

impl<'a> Summarizer<'a> {
    pub(crate) fn new(
        lo: usize,
        hi: usize,
        deps: &'a ControlDeps,
        criteria: &'a [SlicingCriterion],
        bnd: Vec<Vec<FuncId>>,
    ) -> Self {
        let frames = bnd
            .into_iter()
            .map(|funcs| {
                let marks = vec![Cond::False; funcs.len()];
                SegFrames {
                    local: Vec::new(),
                    bnd_funcs: funcs,
                    bnd_popped: 0,
                    bnd_marks: marks,
                }
            })
            .collect();
        let words = (hi - lo).div_ceil(64);
        Summarizer {
            lo,
            hi,
            deps,
            criteria,
            crit_idx: criteria.len(),
            nodes: Vec::new(),
            or_cache: HashMap::default(),
            conc_mem: AddrSet::new(),
            touched: AddrSet::new(),
            cond_mem: BTreeMap::new(),
            conc_regs: vec![RegSet::EMPTY; NTHREADS],
            reg_cells: vec![RegCell::Untouched; NTHREADS * NREGS],
            pend: PendingTransfer::default(),
            frames,
            bitmap: vec![0; words],
            members: Vec::new(),
            overflow: false,
            span_scratch: Vec::new(),
            spans_out: Vec::new(),
            ranges_a: Vec::new(),
            ranges_b: Vec::new(),
            ranges_c: Vec::new(),
        }
    }

    fn push_node(&mut self, n: Node) -> NodeId {
        if self.nodes.len() >= MAX_NODES {
            self.overflow = true;
            return 0;
        }
        self.nodes.push(n);
        (self.nodes.len() - 1) as NodeId
    }

    fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.or_cache.get(&key) {
            return id;
        }
        let id = self.push_node(Node::Or(key.0, key.1));
        self.or_cache.insert(key, id);
        id
    }

    fn or_cond(&mut self, a: Cond, b: Cond) -> Cond {
        match (a, b) {
            (Cond::False, x) | (x, Cond::False) => x,
            (Cond::True, _) | (_, Cond::True) => Cond::True,
            (Cond::Node(x), Cond::Node(y)) => Cond::Node(self.or2(x, y)),
        }
    }

    /// The condition "pending entry `key` exists below this scan point".
    /// Untouched keys depend on the boundary via a `Pend` atom — unless
    /// the function was structurally cleared in between.
    fn pend_cond(&mut self, key: PendKey) -> Cond {
        match self.pend.get(&key) {
            Some(&c) => c,
            None if self.pend.is_cleared(key.0, key.1) => Cond::False,
            None => Cond::Node(self.push_node(Node::Pend(key))),
        }
    }

    /// OR-marks the top frame of `tid` (sequential: `frame.any_slice = true`).
    fn mark_top(&mut self, tid: ThreadId, c: Cond) {
        let ti = tid.index();
        if let Some(i) = self.frames[ti].local.len().checked_sub(1) {
            let old = self.frames[ti].local[i].1;
            let merged = self.or_cond(old, c);
            self.frames[ti].local[i].1 = merged;
        } else {
            let fr = &self.frames[ti];
            if fr.bnd_popped < fr.bnd_funcs.len() {
                let slot = fr.bnd_funcs.len() - 1 - fr.bnd_popped;
                let old = self.frames[ti].bnd_marks[slot];
                let merged = self.or_cond(old, c);
                self.frames[ti].bnd_marks[slot] = merged;
            }
        }
    }

    /// The symbolic `join_slice(idx)`: records membership under `c`, arms
    /// the instruction's controlling branches, and marks the enclosing
    /// frame. `jc` accumulates the instruction's total join condition.
    #[allow(clippy::too_many_arguments)]
    fn contribute(
        &mut self,
        idx: usize,
        c: Cond,
        jc: &mut Cond,
        tid: ThreadId,
        func: FuncId,
        pc: Pc,
    ) {
        if c == Cond::False {
            return;
        }
        if c == Cond::True {
            let l = idx - self.lo;
            self.bitmap[l / 64] |= 1u64 << (l % 64);
        }
        for i in 0..self.deps.controllers(func, pc).len() {
            let bpc = self.deps.controllers(func, pc)[i];
            let key = (tid, func, bpc);
            let existing = self.pend_cond(key);
            let merged = self.or_cond(existing, c);
            self.pend.set(key, merged);
        }
        self.mark_top(tid, c);
        *jc = self.or_cond(*jc, c);
    }

    /// Makes `range` concretely live (criterion seed or concrete gen).
    fn insert_conc_mem(&mut self, range: AddrRange) {
        self.conc_mem.insert(range);
        self.cond_take(range, false);
        self.touched.insert(range);
    }

    /// Kills `range` (concrete join path): dead below the writer.
    fn kill_mem(&mut self, range: AddrRange) {
        self.conc_mem.remove(range);
        self.cond_take(range, false);
        self.touched.insert(range);
    }

    /// Removes the cond-span coverage of `range`; when `collect` is set
    /// the removed pieces (clipped to `range`) land in `self.spans_out`.
    fn cond_take(&mut self, range: AddrRange, collect: bool) {
        let start = range.start().raw();
        let end = range.end().raw();
        let mut stash = std::mem::take(&mut self.span_scratch);
        stash.clear();
        for (&s, &v) in self.cond_mem.range(..end).rev() {
            if v.0 <= start {
                break;
            }
            stash.push((s, v));
        }
        for &(s, (e, atom, node)) in &stash {
            self.cond_mem.remove(&s);
            if s < start {
                self.cond_mem.insert(s, (start, atom, node));
            }
            if e > end {
                self.cond_mem.insert(end, (e, atom, node));
            }
            if collect {
                self.spans_out.push((s.max(start), e.min(end), atom, node));
            }
        }
        self.span_scratch = stash;
    }

    /// Appends the sub-ranges of `range` with no cond-span coverage to
    /// `out` (mirrors [`AddrSet::gaps_within`] over the span map).
    fn cond_gaps_within(&self, range: AddrRange, out: &mut Vec<AddrRange>) {
        let start = range.start().raw();
        let end = range.end().raw();
        let mut cur = start;
        if let Some((_, &(e, _, _))) = self.cond_mem.range(..=start).next_back() {
            if e > cur {
                cur = e.min(end);
            }
        }
        for (&s, &(e, _, _)) in self.cond_mem.range(start + 1..end) {
            if cur >= end {
                break;
            }
            if s > cur {
                for_run_chunks(cur, s, |r| out.push(r));
            }
            cur = e.min(end).max(cur);
        }
        if cur < end {
            for_run_chunks(cur, end, |r| out.push(r));
        }
    }

    /// Conditional mem gen: `range` becomes live if `j` activates,
    /// layered over its current status (concrete wins; cond spans merge;
    /// dead bytes gain a plain span; untouched bytes gain a boundary-atom
    /// span).
    fn gen_mem_cond(&mut self, range: AddrRange, j: NodeId) {
        self.spans_out.clear();
        self.cond_take(range, true);
        let mut spans = std::mem::take(&mut self.spans_out);
        for &(s, e, atom, node) in &spans {
            let merged = self.or2(node, j);
            self.cond_mem.insert(s, (e, atom, merged));
        }
        spans.clear();
        self.spans_out = spans;

        // Pieces with no prior conditional status.
        let mut not_conc = std::mem::take(&mut self.ranges_a);
        not_conc.clear();
        self.conc_mem.gaps_within(range, &mut not_conc);
        let mut sub = std::mem::take(&mut self.ranges_b);
        let mut parts = std::mem::take(&mut self.ranges_c);
        for &piece in &not_conc {
            sub.clear();
            self.cond_gaps_within(piece, &mut sub);
            for &p in &sub {
                // Previously-killed bytes: plain conditional span.
                parts.clear();
                self.touched.overlaps_within(p, &mut parts);
                for &d in &parts {
                    self.cond_mem
                        .insert(d.start().raw(), (d.end().raw(), false, j));
                }
                // Untouched bytes: boundary liveness also passes through.
                parts.clear();
                self.touched.gaps_within(p, &mut parts);
                for &u in &parts {
                    self.cond_mem
                        .insert(u.start().raw(), (u.end().raw(), true, j));
                    self.touched.insert(u);
                }
            }
        }
        self.ranges_a = not_conc;
        self.ranges_b = sub;
        self.ranges_c = parts;
    }

    fn cell(&self, tid: ThreadId, bit: usize) -> RegCell {
        self.reg_cells[tid.index() * NREGS + bit]
    }

    fn set_cell(&mut self, tid: ThreadId, bit: usize, c: RegCell) {
        self.reg_cells[tid.index() * NREGS + bit] = c;
    }

    /// Concrete reg gen (criterion seed or concrete join).
    fn gen_regs_conc(&mut self, tid: ThreadId, regs: RegSet) {
        let ti = tid.index();
        self.conc_regs[ti] = self.conc_regs[ti].union(regs);
        let mut bits = regs.bits();
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.set_cell(tid, b, RegCell::Live);
        }
    }

    /// Conditional reg gen under `j`.
    fn gen_regs_cond(&mut self, tid: ThreadId, regs: RegSet, j: NodeId) {
        let mut bits = regs.bits();
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let next = match self.cell(tid, b) {
                RegCell::Live => RegCell::Live,
                RegCell::Cond { atom, node } => RegCell::Cond {
                    atom,
                    node: self.or2(node, j),
                },
                RegCell::Dead => RegCell::Cond {
                    atom: false,
                    node: j,
                },
                RegCell::Untouched => RegCell::Cond {
                    atom: true,
                    node: j,
                },
            };
            self.set_cell(tid, b, next);
        }
    }

    /// Reg kill: dead below the writer regardless of join outcome.
    fn kill_regs(&mut self, tid: ThreadId, regs: RegSet) {
        self.conc_regs[tid.index()].subtract(regs);
        let mut bits = regs.bits();
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.set_cell(tid, b, RegCell::Dead);
        }
    }

    /// The symbolic "does this write hit live state" test for an
    /// instruction with no *concrete* hit. Applies the kills (sound
    /// either way: runtime-live pieces force the join which kills them;
    /// runtime-dead pieces make the kill a no-op) and returns the join
    /// condition, `Cond::False` when no boundary could make it join.
    fn symbolic_join(
        &mut self,
        cur: &ColumnCursor<'_>,
        tid: ThreadId,
        reg_writes: RegSet,
        idx: usize,
    ) -> Cond {
        let mut acc = Cond::False;
        let mut bits = reg_writes.bits();
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            match self.cell(tid, b) {
                RegCell::Untouched => {
                    let nd = self.push_node(Node::Reg(tid, RegSet::from_bits(1 << b)));
                    acc = self.or_cond(acc, Cond::Node(nd));
                }
                RegCell::Dead => {}
                RegCell::Live => debug_assert!(false, "concrete hit handled by caller"),
                RegCell::Cond { atom, node } => {
                    acc = self.or_cond(acc, Cond::Node(node));
                    if atom {
                        let nd = self.push_node(Node::Reg(tid, RegSet::from_bits(1 << b)));
                        acc = self.or_cond(acc, Cond::Node(nd));
                    }
                }
            }
            self.set_cell(tid, b, RegCell::Dead);
        }
        for wi in 0..cur.mem_writes(idx).len() {
            let w = cur.mem_writes(idx)[wi];
            self.spans_out.clear();
            self.cond_take(w, true);
            let mut spans = std::mem::take(&mut self.spans_out);
            for &(s, e, atom, node) in &spans {
                acc = self.or_cond(acc, Cond::Node(node));
                if atom {
                    let mut a = acc;
                    for_run_chunks(s, e, |r| {
                        let nd = self.push_node(Node::Mem(r));
                        a = self.or_cond(a, Cond::Node(nd));
                    });
                    acc = a;
                }
            }
            spans.clear();
            self.spans_out = spans;
            let mut gaps = std::mem::take(&mut self.ranges_a);
            gaps.clear();
            self.touched.gaps_within(w, &mut gaps);
            for &g in &gaps {
                let nd = self.push_node(Node::Mem(g));
                acc = self.or_cond(acc, Cond::Node(nd));
            }
            self.ranges_a = gaps;
            self.touched.insert(w);
        }
        acc
    }

    /// Feeds one backward window of the segment (a whole resident segment
    /// or one streamed disk chunk). Windows must arrive in descending
    /// index order, together covering exactly `[self.lo, self.hi)`.
    pub(crate) fn feed(&mut self, cur: &ColumnCursor<'_>) {
        for idx in cur.rev_indices() {
            if self.overflow {
                return;
            }
            let tid = cur.tid(idx);
            let func = cur.func(idx);
            let kind = cur.kind(idx);
            let pc = cur.pc(idx);
            let mut jc = Cond::False;

            if matches!(kind, InstrKind::Ret) {
                self.frames[tid.index()].local.push((func, Cond::False));
            }

            while self.crit_idx > 0 && self.criteria[self.crit_idx - 1].pos.index() == idx {
                self.crit_idx -= 1;
                let ci = self.crit_idx;
                for i in 0..self.criteria[ci].mem.len() {
                    let range = self.criteria[ci].mem[i];
                    self.insert_conc_mem(range);
                }
                let regs = self.criteria[ci].regs;
                self.gen_regs_conc(tid, regs);
                if self.criteria[ci].include_instr {
                    self.contribute(idx, Cond::True, &mut jc, tid, func, pc);
                }
            }

            let mut concrete_branch = false;
            if kind.is_branch() {
                let key = (tid, func, pc);
                let pcond = self.pend_cond(key);
                if pcond != Cond::False {
                    // The probe consumes the entry whenever it fires; the
                    // stored value is the condition under which it fired
                    // at all ("not pending below" otherwise).
                    self.pend.set(key, Cond::False);
                    match pcond {
                        Cond::True => {
                            concrete_branch = true;
                            for i in 0..cur.mem_reads(idx).len() {
                                let r = cur.mem_reads(idx)[i];
                                self.insert_conc_mem(r);
                            }
                            self.gen_regs_conc(tid, cur.reg_reads(idx));
                            self.contribute(idx, Cond::True, &mut jc, tid, func, pc);
                        }
                        Cond::Node(j) => {
                            for i in 0..cur.mem_reads(idx).len() {
                                let r = cur.mem_reads(idx)[i];
                                self.gen_mem_cond(r, j);
                            }
                            self.gen_regs_cond(tid, cur.reg_reads(idx), j);
                            self.contribute(idx, Cond::Node(j), &mut jc, tid, func, pc);
                        }
                        Cond::False => unreachable!(),
                    }
                } else {
                    self.pend.set(key, Cond::False);
                }
            }
            if !concrete_branch {
                let reg_writes = cur.reg_writes(idx);
                let conc_hit = reg_writes.intersects(self.conc_regs[tid.index()])
                    || cur
                        .mem_writes(idx)
                        .iter()
                        .any(|w| self.conc_mem.intersects(*w));
                if conc_hit {
                    self.kill_regs(tid, reg_writes);
                    for i in 0..cur.mem_writes(idx).len() {
                        let w = cur.mem_writes(idx)[i];
                        self.kill_mem(w);
                    }
                    for i in 0..cur.mem_reads(idx).len() {
                        let r = cur.mem_reads(idx)[i];
                        self.insert_conc_mem(r);
                    }
                    self.gen_regs_conc(tid, cur.reg_reads(idx));
                    self.contribute(idx, Cond::True, &mut jc, tid, func, pc);
                } else {
                    match self.symbolic_join(cur, tid, reg_writes, idx) {
                        Cond::False => {}
                        Cond::True => unreachable!("symbolic join is built from atoms"),
                        Cond::Node(j) => {
                            for i in 0..cur.mem_reads(idx).len() {
                                let r = cur.mem_reads(idx)[i];
                                self.gen_mem_cond(r, j);
                            }
                            self.gen_regs_cond(tid, cur.reg_reads(idx), j);
                            self.contribute(idx, Cond::Node(j), &mut jc, tid, func, pc);
                        }
                    }
                }
            }

            if let InstrKind::Call { callee } = kind {
                let ti = tid.index();
                let anyc = if let Some((_, c)) = self.frames[ti].local.pop() {
                    c
                } else if self.frames[ti].bnd_popped < self.frames[ti].bnd_funcs.len() {
                    let slot = self.frames[ti].bnd_funcs.len() - 1 - self.frames[ti].bnd_popped;
                    self.frames[ti].bnd_popped += 1;
                    let mark = self.frames[ti].bnd_marks[slot];
                    let atom = Cond::Node(self.push_node(Node::Frame(tid, slot as u32)));
                    self.or_cond(mark, atom)
                } else {
                    Cond::False
                };
                self.contribute(idx, anyc, &mut jc, tid, func, pc);
                // Sequential re-marks the *caller* frame when the call is
                // in the slice; `jc` is the exact membership condition.
                if jc != Cond::False {
                    self.mark_top(tid, jc);
                }
                // Structural pending clear: only when no remaining frame
                // (local or boundary) still runs the callee.
                let fr = &self.frames[ti];
                let open = fr.local.iter().any(|&(f, _)| f == callee)
                    || fr.bnd_funcs[..fr.bnd_funcs.len() - fr.bnd_popped].contains(&callee);
                if !open {
                    self.pend.clear_func(tid, callee, Cond::False);
                }
            }

            if let Cond::Node(j) = jc {
                self.members.push(((idx - self.lo) as u32, j));
            }
        }
    }

    pub(crate) fn finish(self) -> Option<SegSummary> {
        if self.overflow {
            return None;
        }
        Some(SegSummary {
            lo: self.lo,
            hi: self.hi,
            nodes: self.nodes,
            bitmap: self.bitmap,
            members: self.members,
            conc_mem: self.conc_mem,
            touched: self.touched,
            cond_mem: self
                .cond_mem
                .into_iter()
                .map(|(s, (e, atom, node))| (s, e, atom, node))
                .collect(),
            conc_regs: self.conc_regs,
            reg_cells: self.reg_cells,
            pend: self.pend,
            frames: self.frames,
        })
    }
}

fn cond_active(c: Cond, active: &[bool]) -> bool {
    match c {
        Cond::False => false,
        Cond::True => true,
        Cond::Node(id) => active[id as usize],
    }
}

/// Phase 2 step: evaluates one summary against the exact state at its
/// upper boundary and produces the exact state at its lower boundary plus
/// the replay inputs.
pub(crate) fn stitch(sum: SegSummary, st: &BoundaryState) -> (BoundaryState, Replay) {
    // Nodes are in dependency order: one forward pass settles them all.
    let mut active = vec![false; sum.nodes.len()];
    for i in 0..sum.nodes.len() {
        active[i] = match sum.nodes[i] {
            Node::Mem(r) => st.mem.intersects(r),
            Node::Reg(t, s) => st.regs[t.index()].intersects(s),
            Node::Pend(k) => st.pend.contains(&k),
            Node::Frame(t, slot) => st.frames[t.index()][slot as usize].1,
            Node::Or(a, b) => active[a as usize] || active[b as usize],
        };
    }

    // Live memory out = concrete ∪ activated spans ∪ (boundary ∩ atom
    // spans) ∪ (boundary ∖ touched).
    let mut mem = sum.conc_mem;
    let mut scratch: Vec<AddrRange> = Vec::new();
    for &(s, e, atom, node) in &sum.cond_mem {
        if active[node as usize] {
            for_run_chunks(s, e, |r| mem.insert(r));
        } else if atom {
            for_run_chunks(s, e, |r| {
                scratch.clear();
                st.mem.overlaps_within(r, &mut scratch);
                for &p in &scratch {
                    mem.insert(p);
                }
            });
        }
    }
    let mut pass = st.mem.clone();
    pass.subtract_set(&sum.touched);
    mem.union_with(&pass);

    // Registers.
    let mut regs = vec![RegSet::EMPTY; NTHREADS];
    for (t, slot) in regs.iter_mut().enumerate() {
        let mut out = sum.conc_regs[t];
        let bnd = st.regs[t];
        for b in 0..NREGS {
            let mask = RegSet::from_bits(1 << b);
            let live = match sum.reg_cells[t * NREGS + b] {
                RegCell::Untouched => bnd.intersects(mask),
                RegCell::Dead | RegCell::Live => false,
                RegCell::Cond { atom, node } => {
                    active[node as usize] || (atom && bnd.intersects(mask))
                }
            };
            if live {
                out = out.union(mask);
            }
        }
        *slot = out;
    }

    // Pending set: tracked entries resolve by their condition; untouched
    // keys pass through unless their function was structurally cleared.
    let mut pend: HashSet<PendKey, FibBuild> = HashSet::default();
    for (&k, &c) in sum.pend.entries() {
        if cond_active(c, &active) {
            pend.insert(k);
        }
    }
    for &k in &st.pend {
        if sum.pend.get(&k).is_none() && !sum.pend.is_cleared(k.0, k.1) {
            pend.insert(k);
        }
    }

    // Frames: surviving boundary frames keep their funcs, with flags
    // OR-ed with in-segment marks; local frames stack on top.
    let mut frames = Vec::with_capacity(NTHREADS);
    for (t, fr) in sum.frames.iter().enumerate() {
        let keep = fr.bnd_funcs.len() - fr.bnd_popped;
        debug_assert_eq!(st.frames[t].len(), fr.bnd_funcs.len());
        let mut stack: Vec<(FuncId, bool)> = Vec::with_capacity(keep + fr.local.len());
        for i in 0..keep {
            let any = st.frames[t][i].1 || cond_active(fr.bnd_marks[i], &active);
            stack.push((fr.bnd_funcs[i], any));
        }
        for &(f, c) in &fr.local {
            stack.push((f, cond_active(c, &active)));
        }
        frames.push(stack);
    }

    (
        BoundaryState {
            mem,
            regs,
            pend,
            frames,
        },
        Replay {
            lo: sum.lo,
            hi: sum.hi,
            bitmap: sum.bitmap,
            members: sum.members,
            active,
        },
    )
}

/// Phase 3: resolves one segment's membership bitmap and recomputes its
/// stats and timeline checkpoints. Checkpoints land where the sequential
/// countdown would put them: global positions with
/// `(n - idx) % interval == 0`, plus `idx == 0`. Cursor-fed (descending
/// windows) for the same resident-or-streamed duality as [`Summarizer`].
pub(crate) struct Finalizer {
    lo: usize,
    bitmap: Vec<u64>,
    per_thread: Vec<(u64, u64)>,
    per_func: Vec<(u64, u64)>,
    slice_count: u64,
    tracked_total: u64,
    tracked_slice: u64,
    timeline: Vec<(usize, TimelinePoint)>,
    until: u64,
    interval: u64,
    tracked: ThreadId,
}

impl Finalizer {
    pub(crate) fn new(
        r: &Replay,
        n: usize,
        nfuncs: usize,
        interval: u64,
        tracked: ThreadId,
    ) -> Self {
        let mut bitmap = r.bitmap.clone();
        for &(l, node) in &r.members {
            if r.active[node as usize] {
                bitmap[(l / 64) as usize] |= 1u64 << (l % 64);
            }
        }
        Finalizer {
            lo: r.lo,
            bitmap,
            per_thread: vec![(0u64, 0u64); NTHREADS],
            per_func: vec![(0u64, 0u64); nfuncs],
            slice_count: 0,
            tracked_total: 0,
            tracked_slice: 0,
            timeline: Vec::new(),
            // First checkpoint below `hi`: `(n - hi)` instructions are
            // already processed when this segment starts, so the countdown
            // resumes from the interval's remainder.
            until: interval - (n - r.hi) as u64 % interval,
            interval,
            tracked,
        }
    }

    pub(crate) fn feed(&mut self, cur: &ColumnCursor<'_>) {
        for idx in cur.rev_indices() {
            let tid = cur.tid(idx);
            let func = cur.func(idx);
            self.per_thread[tid.index()].1 += 1;
            self.per_func[func.index()].1 += 1;
            if tid == self.tracked {
                self.tracked_total += 1;
            }
            let l = idx - self.lo;
            if self.bitmap[l / 64] & (1u64 << (l % 64)) != 0 {
                self.slice_count += 1;
                self.per_thread[tid.index()].0 += 1;
                self.per_func[func.index()].0 += 1;
                if tid == self.tracked {
                    self.tracked_slice += 1;
                }
            }
            self.until -= 1;
            if self.until == 0 || idx == 0 {
                self.timeline.push((
                    idx,
                    TimelinePoint {
                        processed: 0, // filled by the merge
                        in_slice: self.slice_count,
                        tracked_processed: self.tracked_total,
                        tracked_in_slice: self.tracked_slice,
                    },
                ));
                self.until = self.interval;
            }
        }
    }

    pub(crate) fn finish(self) -> SegFinal {
        SegFinal {
            bitmap: self.bitmap,
            slice_count: self.slice_count,
            per_thread: self.per_thread,
            per_func: self.per_func,
            tracked_total: self.tracked_total,
            tracked_slice: self.tracked_slice,
            timeline: self.timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{pixel_criteria, SlicingCriterion};
    use crate::slice::slice;
    use wasteprof_trace::{site, Recorder, Reg, Region, ThreadKind, TracePos};

    /// Asserts that the segment-parallel pass produces a byte-identical
    /// [`SliceResult`] for several segment counts, calling `run` directly
    /// so a silent fallback can't mask a divergence.
    fn check(trace: &Trace, criteria: &Criteria, opts: &SliceOptions) {
        let fwd = ForwardPass::build(trace);
        let seq_opts = SliceOptions {
            segments: 1,
            ..opts.clone()
        };
        let seq = slice(trace, &fwd, criteria, &seq_opts);
        for k in [2, 3, 8] {
            let par = run(trace, &fwd, criteria, opts, k)
                .expect("parallel pass declined on an eligible trace");
            assert_eq!(par, seq, "segment count {k} diverged from sequential");
        }
    }

    fn default_opts() -> SliceOptions {
        SliceOptions::default()
    }

    #[test]
    fn long_dataflow_chain_with_dead_stores_matches_sequential() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut prev = rec.alloc_cell(Region::Heap);
        let dead = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.compute(site!(), &[], &[prev.into()]);
        for _ in 0..120 {
            let next = rec.alloc_cell(Region::Heap);
            rec.compute(site!(), &[prev.into()], &[next.into()]);
            rec.compute(site!(), &[], &[dead.into()]); // waste, overwritten
            prev = next;
        }
        rec.compute(site!(), &[prev.into()], &[tile]);
        rec.marker(site!(), tile);
        let trace = rec.finish();
        check(&trace, &pixel_criteria(&trace), &default_opts());
    }

    #[test]
    fn loop_branches_crossing_boundaries_match_sequential() {
        // Loop heads re-arm their own pending entry on every iteration;
        // with hundreds of iterations the arm/consume chain crosses every
        // segment boundary.
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let f = rec.intern_func("looper");
        let cond = rec.alloc_cell(Region::Heap);
        let acc = rec.alloc_cell(Region::Heap);
        let junk = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        let head = site!();
        let body = site!();
        rec.compute(site!(), &[], &[cond.into()]);
        rec.compute(site!(), &[], &[acc.into()]);
        rec.in_func(site!(), f, |rec| {
            for _ in 0..90 {
                rec.branch_mem(head, cond, true);
                rec.compute(body, &[acc.into()], &[acc.into()]);
                rec.compute(site!(), &[], &[junk.into()]);
            }
            rec.branch_mem(head, cond, false);
        });
        rec.compute(site!(), &[acc.into()], &[tile]);
        rec.marker(site!(), tile);
        let trace = rec.finish();
        check(&trace, &pixel_criteria(&trace), &default_opts());
    }

    #[test]
    fn multi_thread_register_liveness_matches_sequential() {
        // Both threads use the same architectural registers; liveness must
        // stay per-thread across segment boundaries.
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.spawn_thread(ThreadKind::Compositor, "root");
        let shared = rec.alloc_cell(Region::Heap);
        let out = rec.alloc_cell(Region::Heap);
        let junk = rec.alloc_cell(Region::Heap);
        rec.switch_to(t0);
        rec.compute(site!(), &[], &[shared.into()]);
        for _ in 0..70 {
            rec.switch_to(t1);
            rec.alu(site!(), Reg::Rax, RegSet::EMPTY);
            rec.store(site!(), junk, Reg::Rax);
            rec.switch_to(t0);
            rec.load(site!(), Reg::Rax, shared);
            rec.alu(site!(), Reg::Rcx, RegSet::of(&[Reg::Rax]));
            rec.store(site!(), out, Reg::Rcx);
            rec.compute(site!(), &[out.into()], &[shared.into()]);
        }
        let crit = Criteria::new(vec![SlicingCriterion::mem_at(
            TracePos(rec.pos().0 - 1),
            vec![out.into()],
        )]);
        let trace = rec.finish();
        check(&trace, &crit, &default_opts());
    }

    #[test]
    fn call_frames_spanning_boundaries_match_sequential() {
        // Deeply nested invocations stay open across several segment
        // boundaries, so frame pops hit the boundary stack and `Frame`
        // atoms resolve against the stitched `any_slice` flags.
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let useful = rec.intern_func("useful");
        let wrapper = rec.intern_func("wrapper");
        let x = rec.alloc_cell(Region::Heap);
        let junk = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.enter(site!(), wrapper);
        rec.enter(site!(), useful);
        for _ in 0..100 {
            rec.compute(site!(), &[x.into()], &[x.into()]);
            rec.compute(site!(), &[], &[junk.into()]);
        }
        rec.leave(site!());
        rec.leave(site!());
        rec.compute(site!(), &[x.into()], &[tile]);
        rec.marker(site!(), tile);
        let trace = rec.finish();
        check(&trace, &pixel_criteria(&trace), &default_opts());
    }

    #[test]
    fn bounded_prefix_and_timeline_interval_match_sequential() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let a = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.compute(site!(), &[], &[a.into()]);
        for _ in 0..150 {
            rec.compute(site!(), &[a.into()], &[tile]);
        }
        rec.marker(site!(), tile);
        let cut = rec.pos();
        for _ in 0..40 {
            rec.compute(site!(), &[], &[a.into()]);
        }
        let trace = rec.finish();
        let opts = SliceOptions {
            end: Some(TracePos(cut.0 - 1)),
            timeline_interval: 7,
            ..Default::default()
        };
        check(&trace, &pixel_criteria(&trace), &opts);
    }

    #[test]
    fn tiny_trace_declines_segmentation() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let a = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), &[], &[a.into()]);
        let trace = rec.finish();
        let fwd = ForwardPass::build(&trace);
        assert!(
            run(
                &trace,
                &fwd,
                &Criteria::default(),
                &SliceOptions::default(),
                8
            )
            .is_none(),
            "sub-segment traces must fall back to the sequential walk"
        );
    }
}
