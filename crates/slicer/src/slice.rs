//! The backward pass: liveness-driven dynamic slicing (§III-B).
//!
//! The slicer walks the trace from its end to its beginning, maintaining a
//! live memory set shared by all threads and a live register set per
//! thread. Criteria seed the live sets at their program points. An
//! instruction that writes a live variable joins the slice: its writes
//! leave the live sets and its reads enter them. Branches that slice
//! members are control-dependent on go onto a *pending list*; when the
//! backward pass reaches a pending branch it joins the slice and its
//! condition variables become live. Calls join the slice when any
//! instruction of their dynamic callee did.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Seek};

use wasteprof_trace::{
    ColumnCursor, FuncId, InstrKind, Pc, ThreadId, Trace, TraceIoError, TracePos, TraceReader,
};

use crate::cdg::ControlDeps;
use crate::cfg::CfgSet;
use crate::criteria::Criteria;
use crate::live::LiveState;

/// The forward pass artifacts: per-function CFGs and the control-dependence
/// relation, reusable across different slicing criteria (§III-A notes the
/// CDG "can be re-used multiple times in the backward pass").
#[derive(Debug, Clone)]
pub struct ForwardPass {
    cfgs: CfgSet,
    deps: ControlDeps,
}

impl ForwardPass {
    /// Runs the forward pass over `trace`.
    pub fn build(trace: &Trace) -> Self {
        let cfgs = CfgSet::build(trace);
        let deps = ControlDeps::compute(&cfgs);
        ForwardPass { cfgs, deps }
    }

    /// Runs the forward pass over a `WPTRACE2` stream without ever holding
    /// the whole trace: the CFG fold consumes one bounded chunk at a time,
    /// and the control-dependence relation is a function of the CFGs alone.
    ///
    /// # Errors
    ///
    /// Any chunk decode or read error from the underlying [`TraceReader`].
    pub fn build_streamed<R: Read + Seek>(
        reader: &mut TraceReader<R>,
    ) -> Result<Self, TraceIoError> {
        let cfgs = CfgSet::build_streamed(reader)?;
        let deps = ControlDeps::compute(&cfgs);
        Ok(ForwardPass { cfgs, deps })
    }

    /// The reconstructed CFGs.
    pub fn cfgs(&self) -> &CfgSet {
        &self.cfgs
    }

    /// The control-dependence relation.
    pub fn control_deps(&self) -> &ControlDeps {
        &self.deps
    }

    /// Builds the pass artifacts from an already-folded CFG set — the
    /// incremental engine resumes the fold from a checkpoint and derives
    /// the (whole-trace) control-dependence relation from the result.
    pub(crate) fn from_cfgs(cfgs: CfgSet) -> Self {
        let deps = ControlDeps::compute(&cfgs);
        ForwardPass { cfgs, deps }
    }
}

/// Options for one backward slicing run.
#[derive(Debug, Clone)]
pub struct SliceOptions {
    /// Slice only the prefix `[0, end]` of the trace (criteria after `end`
    /// are ignored). `None` slices the whole trace.
    pub end: Option<TracePos>,
    /// Record a timeline checkpoint every this many processed instructions.
    /// `0` picks ~1000 evenly spaced points.
    ///
    /// Intervals count *global* processed instructions of the considered
    /// prefix, regardless of [`SliceOptions::segments`]: the segment-
    /// parallel pass places checkpoints at the same trace positions as the
    /// sequential walk, so timeline artifacts (fig4/fig5) are bit-identical
    /// at any segment count.
    pub timeline_interval: u64,
    /// Thread highlighted in the timeline (the paper plots the main
    /// thread).
    pub tracked_thread: ThreadId,
    /// Number of trace segments processed in parallel (summarize → stitch
    /// → replay). `0` picks a count from the thread budget and trace
    /// length; `1` forces the sequential reference walk. Any value
    /// produces byte-identical results — this only trades wall time.
    pub segments: usize,
    /// Emit a dependence witness ([`crate::Witnesses`]) alongside the
    /// slice: one row per member recording the def→use, CDG, or call edge
    /// that pulled it in, for independent certification by
    /// `wasteprof-checker`. The table is identical at any segment count.
    /// Off by default (the experiment engine turns it on).
    pub witness: bool,
}

impl SliceOptions {
    /// A fingerprint covering **every** public option field, used wherever
    /// a computed slice is memoized against its configuration — the
    /// incremental [`crate::SummaryCache`] key and the experiment engine's
    /// session store both derive from this one function, so a new option
    /// field added here (and to the perturbation unit test) can never be
    /// silently ignored by one cache but honored by the other.
    pub fn config_fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = FibHasher::default();
        // Field-order tags keep a value that migrates between fields from
        // fingerprinting identically.
        h.write_u64(0x5EED_C0F1_6001);
        h.write_u8(self.end.is_some() as u8);
        h.write_u64(self.end.map(|p| p.0).unwrap_or(0));
        h.write_u64(self.timeline_interval);
        h.write_u8(self.tracked_thread.0);
        h.write_u64(self.segments as u64);
        h.write_u8(self.witness as u8);
        h.finish()
    }
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions {
            end: None,
            timeline_interval: 0,
            tracked_thread: ThreadId::MAIN,
            segments: 0,
            witness: false,
        }
    }
}

/// One checkpoint of the backward pass, for Figure 4-style plots.
///
/// `x = 0` is the *start* of the backward pass (end of the trace); counts
/// are cumulative from there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Instructions processed so far (all threads).
    pub processed: u64,
    /// Of those, instructions in the slice.
    pub in_slice: u64,
    /// Instructions of the tracked thread processed so far.
    pub tracked_processed: u64,
    /// Of those, instructions in the slice.
    pub tracked_in_slice: u64,
}

impl TimelinePoint {
    /// Cumulative slice percentage over all threads.
    pub fn fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.in_slice as f64 / self.processed as f64
        }
    }

    /// Cumulative slice percentage of the tracked thread.
    pub fn tracked_fraction(&self) -> f64 {
        if self.tracked_processed == 0 {
            0.0
        } else {
            self.tracked_in_slice as f64 / self.tracked_processed as f64
        }
    }
}

/// The result of a backward slicing run.
///
/// `PartialEq` compares every observable component (bitmap, counts,
/// per-thread/per-func stats, timeline) — the differential tests use it to
/// assert segment-parallel runs are indistinguishable from the sequential
/// reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceResult {
    pub(crate) considered: u64,
    pub(crate) bitmap: Vec<u64>,
    pub(crate) slice_count: u64,
    pub(crate) per_thread: HashMap<ThreadId, (u64, u64)>,
    pub(crate) per_func: HashMap<FuncId, (u64, u64)>,
    pub(crate) timeline: Vec<TimelinePoint>,
    pub(crate) witness: Option<crate::witness::Witnesses>,
}

impl SliceResult {
    /// True if the instruction at `pos` is part of the slice.
    pub fn contains(&self, pos: TracePos) -> bool {
        let idx = pos.index();
        idx < self.considered as usize && self.bitmap[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of instructions in the slice.
    pub fn slice_count(&self) -> u64 {
        self.slice_count
    }

    /// Number of instructions the pass examined.
    pub fn considered(&self) -> u64 {
        self.considered
    }

    /// Slice size as a fraction of examined instructions.
    pub fn fraction(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.slice_count as f64 / self.considered as f64
        }
    }

    /// `(slice, total)` instruction counts of `tid`.
    pub fn thread_stats(&self, tid: ThreadId) -> (u64, u64) {
        self.per_thread.get(&tid).copied().unwrap_or((0, 0))
    }

    /// Iterates over `(tid, slice, total)` for every thread seen.
    pub fn per_thread(&self) -> impl Iterator<Item = (ThreadId, u64, u64)> + '_ {
        self.per_thread.iter().map(|(&t, &(s, n))| (t, s, n))
    }

    /// `(slice, total)` instruction counts of `func`.
    pub fn func_stats(&self, func: FuncId) -> (u64, u64) {
        self.per_func.get(&func).copied().unwrap_or((0, 0))
    }

    /// Iterates over `(func, slice, total)` for every function seen.
    pub fn per_func(&self) -> impl Iterator<Item = (FuncId, u64, u64)> + '_ {
        self.per_func.iter().map(|(&f, &(s, n))| (f, s, n))
    }

    /// Backward-pass checkpoints, in processing order.
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// The dependence-witness table, if the slice was computed with
    /// [`SliceOptions::witness`] on.
    pub fn witness(&self) -> Option<&crate::witness::Witnesses> {
        self.witness.as_ref()
    }

    /// Replaces the witness table (fault-injection support: differential
    /// tests corrupt one row and hand the result to the certifier).
    pub fn set_witness(&mut self, witness: Option<crate::witness::Witnesses>) {
        self.witness = witness;
    }

    /// Removes `pos` from the slice bitmap and decrements the slice
    /// count, leaving per-thread/per-function stats untouched.
    /// Fault-injection support only — the result is deliberately *not* a
    /// valid slice; the certifier must catch it. Returns false when `pos`
    /// was not a member.
    pub fn remove_member(&mut self, pos: TracePos) -> bool {
        let idx = pos.index();
        if !self.contains(pos) {
            return false;
        }
        self.bitmap[idx / 64] &= !(1u64 << (idx % 64));
        self.slice_count -= 1;
        true
    }

    /// Slice fraction restricted to trace positions `[from, to]`, optionally
    /// restricted to one thread. Used for the paper's load-time-vs-session
    /// comparison (§V-A).
    pub fn fraction_in(
        &self,
        trace: &Trace,
        from: TracePos,
        to: TracePos,
        tid: Option<ThreadId>,
    ) -> f64 {
        let mut total = 0u64;
        let mut hit = 0u64;
        let cols = trace.columns();
        let end = (to.index() + 1).min(self.considered as usize);
        for idx in from.index()..end {
            if tid.is_some_and(|t| t != cols.tid(idx)) {
                continue;
            }
            total += 1;
            if self.contains(TracePos(idx as u64)) {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

/// Runs the backward pass over `trace` with the given forward-pass
/// artifacts and criteria.
///
/// # Examples
///
/// ```
/// use wasteprof_slicer::{pixel_criteria, slice, ForwardPass, SliceOptions};
/// use wasteprof_trace::{site, Recorder, Region, ThreadKind};
///
/// let mut rec = Recorder::new();
/// rec.spawn_thread(ThreadKind::Main, "root");
/// let style = rec.alloc_cell(Region::Heap);
/// let tile = rec.alloc(Region::PixelTile, 64);
/// rec.compute(site!(), &[], &[style.into()]); // style := const
/// rec.compute(site!(), &[style.into()], &[tile]); // tile := f(style)
/// rec.marker(site!(), tile);
/// let trace = rec.finish();
///
/// let fwd = ForwardPass::build(&trace);
/// let result = slice(&trace, &fwd, &pixel_criteria(&trace), &SliceOptions::default());
/// assert!(result.fraction() > 0.5); // the whole chain feeds the pixels
/// ```
pub fn slice(
    trace: &Trace,
    forward: &ForwardPass,
    criteria: &Criteria,
    options: &SliceOptions,
) -> SliceResult {
    let n = considered_len(trace, options);
    let k = effective_segments(options.segments, n);
    let mut result = None;
    if k > 1 {
        // The segment-parallel pass bails out (rarely — see
        // `parallel::run`) when a segment's symbolic state outgrows its
        // budget; the sequential walk is always the reference fallback.
        result = crate::parallel::run(trace, forward, criteria, options, k);
    }
    let mut result = result.unwrap_or_else(|| {
        let mut bw = Backward::new(trace.functions().len(), forward, criteria, options, n);
        let cur = trace.columns().cursor(0, n);
        bw.prescan(&cur);
        bw.seal_frames();
        bw.feed(&cur);
        bw.finish()
    });
    if options.witness {
        // The witness is a pure function of (trace, criteria, bitmap), so
        // emitting it after either path keeps it identical at any K.
        result.witness = Some(crate::witness::emit(
            trace,
            forward.control_deps(),
            criteria,
            &result,
        ));
    }
    result
}

/// Runs the backward pass over a `WPTRACE2` stream, never holding more
/// than a bounded window of decoded chunks: the exact per-instruction
/// steps of [`slice()`] driven by streamed cursors instead of one in-memory
/// cursor, so the result is byte-identical to the in-memory path at any
/// segment count.
///
/// # Errors
///
/// Any chunk decode or read error from the underlying [`TraceReader`].
pub fn slice_streamed<R: Read + Seek>(
    reader: &mut TraceReader<R>,
    forward: &ForwardPass,
    criteria: &Criteria,
    options: &SliceOptions,
) -> Result<SliceResult, TraceIoError> {
    let n = considered_prefix(reader.len(), options);
    let k = effective_segments(options.segments, n);
    let mut result = None;
    if k > 1 {
        result = crate::parallel::run_streamed(reader, forward, criteria, options, k)?;
    }
    let mut result = match result {
        Some(r) => r,
        None => {
            let mut bw = Backward::new(reader.functions().len(), forward, criteria, options, n);
            reader.stream_range(0, n, |cur| bw.prescan(cur))?;
            bw.seal_frames();
            reader.stream_range_rev(0, n, |cur| bw.feed(cur))?;
            bw.finish()
        }
    };
    if options.witness {
        result.witness = Some(crate::witness::emit_streamed(
            reader,
            forward.control_deps(),
            criteria,
            &result,
        )?);
    }
    Ok(result)
}

/// Number of instructions the pass will consider (`[0, end]` clamped to
/// the trace).
pub(crate) fn considered_len(trace: &Trace, options: &SliceOptions) -> usize {
    considered_prefix(trace.len(), options)
}

/// [`considered_len`] for callers that only know the trace length.
pub(crate) fn considered_prefix(len: usize, options: &SliceOptions) -> usize {
    options.end.map(|e| (e.index() + 1).min(len)).unwrap_or(len)
}

/// Resolves the requested segment count against the trace length and the
/// thread budget.
///
/// Segment boundaries must land on 64-instruction bitmap-word boundaries
/// (so parallel finalizers never share a word), which caps the useful
/// count at `ceil(n / 64)`. With `0` (auto) the pass takes one segment
/// per available worker, but never segments shorter than ~64k
/// instructions: below that the per-segment symbolic overhead outweighs
/// the parallel win (see DESIGN.md on K selection).
pub(crate) fn effective_segments(requested: usize, n: usize) -> usize {
    const MIN_AUTO_SEGMENT: usize = 64 * 1024;
    let cap = n.div_ceil(64).max(1);
    if requested != 0 {
        return requested.clamp(1, cap);
    }
    let threads = rayon::current_num_threads();
    threads.min(n / MIN_AUTO_SEGMENT).clamp(1, cap)
}

/// Multiplicative hasher for the pending-branch set's small fixed-size
/// keys. The set is probed once per branch instruction, so the default
/// SipHash would cost more than the lookup it guards.
#[derive(Default)]
pub(crate) struct FibHasher(u64);

impl FibHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl std::hash::Hasher for FibHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The top bits carry the entropy of a multiplicative hash; std's
        // HashSet masks the *low* bits for the bucket index, so fold them
        // down.
        self.0 ^ (self.0 >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
}

pub(crate) type FibBuild = std::hash::BuildHasherDefault<FibHasher>;

#[derive(Debug)]
struct Frame {
    /// The function executing in this dynamic frame (needed to decide
    /// whether pending branches of that function may be cleared when the
    /// frame closes — not while a recursive outer invocation is open).
    func: FuncId,
    any_slice: bool,
}

/// The sequential backward walk, restructured around [`Backward::feed`]
/// so the same per-instruction step runs over either one in-memory cursor
/// or a sequence of streamed chunk cursors — results are identical by
/// construction. Protocol: [`Backward::prescan`] forward over the whole
/// considered range, [`Backward::seal_frames`], then [`Backward::feed`]
/// backward (last window first), then [`Backward::finish`].
struct Backward<'a> {
    deps: &'a ControlDeps,
    criteria: Vec<&'a crate::criteria::SlicingCriterion>,
    n: usize,
    live: LiveState,
    pending: HashSet<(ThreadId, FuncId, Pc), FibBuild>,
    open: Vec<Vec<FuncId>>,
    frames: Vec<Vec<Frame>>,
    bitmap: Vec<u64>,
    slice_count: u64,
    // Dense counters (ThreadId and FuncId indices are sequential): the
    // backward pass bumps these once per instruction, so HashMap probes
    // here would dominate the stats cost on multi-million-entry traces.
    per_thread: Vec<(u64, u64)>,
    per_func: Vec<(u64, u64)>,
    timeline: Vec<TimelinePoint>,
    interval: u64,
    until_checkpoint: u64,
    crit_idx: usize,
    tracked: ThreadId,
    tracked_processed: u64,
    tracked_in_slice: u64,
}

impl<'a> Backward<'a> {
    fn new(
        nfuncs: usize,
        forward: &'a ForwardPass,
        criteria: &'a Criteria,
        options: &SliceOptions,
        n: usize,
    ) -> Self {
        let interval = if options.timeline_interval == 0 {
            ((n as u64) / 1000).max(1)
        } else {
            options.timeline_interval
        };
        let criteria: Vec<&crate::criteria::SlicingCriterion> = criteria.items().iter().collect();
        let mut crit_idx = criteria.len();
        // Skip criteria beyond the considered prefix.
        while crit_idx > 0 && criteria[crit_idx - 1].pos.index() >= n {
            crit_idx -= 1;
        }
        Backward {
            deps: forward.control_deps(),
            criteria,
            n,
            live: LiveState::new(256),
            pending: HashSet::default(),
            open: vec![Vec::new(); 256],
            frames: Vec::new(),
            bitmap: vec![0; n.div_ceil(64)],
            slice_count: 0,
            per_thread: vec![(0, 0); 256],
            per_func: vec![(0, 0); nfuncs],
            timeline: Vec::new(),
            interval,
            until_checkpoint: interval,
            crit_idx,
            tracked: options.tracked_thread,
            tracked_processed: 0,
            tracked_in_slice: 0,
        }
    }

    /// Forward open-frames pre-scan over one window: calls still open at
    /// the cut never see their Ret in the prefix, so each thread's frame
    /// stack is pre-seeded with those invocations (callee identity
    /// included — frame clearing needs it).
    fn prescan(&mut self, cur: &ColumnCursor<'_>) {
        for idx in cur.lo()..cur.hi() {
            match cur.kind(idx) {
                InstrKind::Call { callee } => self.open[cur.tid(idx).index()].push(callee),
                InstrKind::Ret => {
                    self.open[cur.tid(idx).index()].pop();
                }
                _ => {}
            }
        }
    }

    /// Converts the pre-scan's open-call stacks into live frames; call
    /// once, after the last [`Backward::prescan`] window.
    fn seal_frames(&mut self) {
        self.frames = std::mem::take(&mut self.open)
            .into_iter()
            .map(|fs| {
                fs.into_iter()
                    .map(|func| Frame {
                        func,
                        any_slice: false,
                    })
                    .collect()
            })
            .collect();
    }

    fn in_slice(&self, idx: usize) -> bool {
        self.bitmap[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    fn join_slice(&mut self, idx: usize, tid: ThreadId, func: FuncId, pc: Pc) {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.bitmap[word] & bit != 0 {
            return;
        }
        self.bitmap[word] |= bit;
        self.slice_count += 1;
        self.per_thread[tid.index()].0 += 1;
        self.per_func[func.index()].0 += 1;
        if tid == self.tracked {
            self.tracked_in_slice += 1;
        }
        // Every branch this instruction is control-dependent on must also
        // join the slice: arm the pending list (§III-B — "when the
        // backward pass reaches a branch in the pending list"). Entries
        // are scoped to the thread: control dependence is a path property
        // of one thread's execution, and letting another thread's instance
        // of the same static branch consume the entry would *drop* the
        // true controlling branch (an under-approximation, not a safe
        // over-approximation).
        for &bpc in self.deps.controllers(func, pc) {
            self.pending.insert((tid, func, bpc));
        }
        // The dynamic call that led here becomes necessary too.
        if let Some(frame) = self.frames[tid.index()].last_mut() {
            frame.any_slice = true;
        }
    }

    /// The backward walk over one window, highest indices first. Windows
    /// must arrive in reverse trace order and tile `[0, n)` exactly.
    fn feed(&mut self, cur: &ColumnCursor<'_>) {
        // Stream the columns directly: each step touches only the fields it
        // needs, and operand lists come back as arena slices without any
        // per-instruction materialization. The checkpoint countdown avoids
        // a u64 division on every iteration.
        for idx in cur.rev_indices() {
            let tid = cur.tid(idx);
            let func = cur.func(idx);
            let kind = cur.kind(idx);

            // Totals.
            self.per_thread[tid.index()].1 += 1;
            self.per_func[func.index()].1 += 1;
            if tid == self.tracked {
                self.tracked_processed += 1;
            }

            // A return means we are entering a dynamic callee (backwards).
            if matches!(kind, InstrKind::Ret) {
                self.frames[tid.index()].push(Frame {
                    func,
                    any_slice: false,
                });
            }

            // Apply criteria anchored at this position: their variables are
            // the values *after* this instruction executed.
            while self.crit_idx > 0 && self.criteria[self.crit_idx - 1].pos.index() == idx {
                self.crit_idx -= 1;
                let c = self.criteria[self.crit_idx];
                for &range in &c.mem {
                    self.live.mem.insert(range);
                }
                let regs = self.live.regs_mut(tid);
                *regs = regs.union(c.regs);
                if c.include_instr {
                    self.join_slice(idx, tid, func, cur.pc(idx));
                }
            }

            // Pending branch: joins the slice, its condition becomes live.
            let is_pending_branch =
                kind.is_branch() && self.pending.remove(&(tid, func, cur.pc(idx)));
            if is_pending_branch {
                self.join_slice(idx, tid, func, cur.pc(idx));
                for &r in cur.mem_reads(idx) {
                    self.live.mem.insert(r);
                }
                let regs = self.live.regs_mut(tid);
                *regs = regs.union(cur.reg_reads(idx));
            } else {
                // Liveness kill/gen: an instruction writing a live variable
                // joins the slice.
                let reg_writes = cur.reg_writes(idx);
                let mem_writes = cur.mem_writes(idx);
                let writes_live_reg = reg_writes.intersects(self.live.regs(tid));
                let writes_live_mem = mem_writes.iter().any(|w| self.live.mem.intersects(*w));
                if writes_live_reg || writes_live_mem {
                    self.live.regs_mut(tid).subtract(reg_writes);
                    for &w in mem_writes {
                        self.live.mem.remove(w);
                    }
                    for &r in cur.mem_reads(idx) {
                        self.live.mem.insert(r);
                    }
                    let regs = self.live.regs_mut(tid);
                    *regs = regs.union(cur.reg_reads(idx));
                    self.join_slice(idx, tid, func, cur.pc(idx));
                }
            }

            // A call closes the callee's dynamic frame (backwards): if
            // anything inside was necessary, so is the call.
            if let InstrKind::Call { callee } = kind {
                let any = self.frames[tid.index()]
                    .pop()
                    .map(|f| f.any_slice)
                    .unwrap_or(false);
                if any {
                    self.join_slice(idx, tid, func, cur.pc(idx));
                }
                // If the call itself is in the slice (a criterion or a live
                // write anchored on it), that membership belongs to the
                // *caller's* frame — when join_slice ran, the callee frame
                // was still on top and absorbed the mark.
                if self.in_slice(idx) {
                    if let Some(frame) = self.frames[tid.index()].last_mut() {
                        frame.any_slice = true;
                    }
                }
                // This invocation is fully processed: its unconsumed
                // pending branches (loop heads re-arm themselves on every
                // iteration, including the first) must not leak into an
                // earlier, unrelated invocation of the same function.
                // With recursion the outer invocation is still open, so
                // only clear when no live frame runs `callee`.
                if !self.frames[tid.index()].iter().any(|f| f.func == callee) {
                    self.pending.retain(|&(t, f, _)| t != tid || f != callee);
                }
            }

            // Timeline checkpoint.
            self.until_checkpoint -= 1;
            if self.until_checkpoint == 0 || idx == 0 {
                self.timeline.push(TimelinePoint {
                    processed: (self.n - idx) as u64,
                    in_slice: self.slice_count,
                    tracked_processed: self.tracked_processed,
                    tracked_in_slice: self.tracked_in_slice,
                });
                self.until_checkpoint = self.interval;
            }
        }
    }

    fn finish(self) -> SliceResult {
        SliceResult {
            considered: self.n as u64,
            bitmap: self.bitmap,
            slice_count: self.slice_count,
            per_thread: self
                .per_thread
                .iter()
                .enumerate()
                .filter(|(_, &(s, n))| s != 0 || n != 0)
                .map(|(i, &v)| (ThreadId(i as u8), v))
                .collect(),
            per_func: self
                .per_func
                .iter()
                .enumerate()
                .filter(|(_, &(s, n))| s != 0 || n != 0)
                .map(|(i, &v)| (FuncId(i as u32), v))
                .collect(),
            timeline: self.timeline,
            witness: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{pixel_criteria, syscall_criteria, Criteria, SlicingCriterion};
    use wasteprof_trace::{site, AddrRange, Recorder, Region, Syscall, ThreadKind};

    fn run(trace: &Trace, criteria: &Criteria) -> SliceResult {
        let fwd = ForwardPass::build(trace);
        slice(trace, &fwd, criteria, &SliceOptions::default())
    }

    #[test]
    fn config_fingerprint_perturbs_on_every_public_field() {
        // One variant per public field of SliceOptions. When a field is
        // added, this list must grow with it or the assertion below (kept
        // in sync with the struct's field count) fails the build of this
        // test, forcing the fingerprint to cover the new field.
        let base = SliceOptions::default();
        let variants = [
            SliceOptions {
                end: Some(TracePos(0)),
                ..base.clone()
            },
            SliceOptions {
                timeline_interval: 17,
                ..base.clone()
            },
            SliceOptions {
                tracked_thread: ThreadId(3),
                ..base.clone()
            },
            SliceOptions {
                segments: 8,
                ..base.clone()
            },
            SliceOptions {
                witness: true,
                ..base.clone()
            },
        ];
        let SliceOptions {
            end: _,
            timeline_interval: _,
            tracked_thread: _,
            segments: _,
            witness: _,
        } = &base; // exhaustive destructure: field count == variant count
        assert_eq!(variants.len(), 5);

        let f0 = base.config_fingerprint();
        assert_eq!(f0, SliceOptions::default().config_fingerprint(), "stable");
        let mut seen = vec![f0];
        for (i, v) in variants.iter().enumerate() {
            let f = v.config_fingerprint();
            assert!(
                !seen.contains(&f),
                "variant {i} collides with an earlier fingerprint"
            );
            seen.push(f);
        }
        // None vs Some(end-of-trace 0) must differ even though both leave
        // the considered prefix unchanged on an empty trace.
        assert_ne!(f0, variants[0].config_fingerprint());
    }

    #[test]
    fn empty_criteria_empty_slice() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let a = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), &[], &[a.into()]);
        let trace = rec.finish();
        let r = run(&trace, &Criteria::default());
        assert_eq!(r.slice_count(), 0);
        assert_eq!(r.fraction(), 0.0);
    }

    #[test]
    fn dataflow_chain_is_sliced_dead_code_is_not() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let a = rec.alloc_cell(Region::Heap);
        let b = rec.alloc_cell(Region::Heap);
        let dead = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.compute(site!(), &[], &[a.into()]); // a := const      (needed)
        let dead_start = rec.pos();
        rec.compute(site!(), &[], &[dead.into()]); // dead := const (waste)
        let dead_end = rec.pos();
        rec.compute(site!(), &[a.into()], &[b.into()]); // b := f(a)  (needed)
        rec.compute(site!(), &[b.into()], &[tile]); // tile := f(b)   (needed)
        rec.marker(site!(), tile);
        let trace = rec.finish();
        let r = run(&trace, &pixel_criteria(&trace));
        // The dead computation must be fully out of the slice.
        for idx in dead_start.index()..dead_end.index() {
            assert!(
                !r.contains(TracePos(idx as u64)),
                "dead instr {idx} in slice"
            );
        }
        // All stores on the live chain must be in.
        for (idx, i) in trace.iter().enumerate() {
            if matches!(i.kind, InstrKind::Store)
                && !(dead_start.index()..dead_end.index()).contains(&idx)
            {
                assert!(r.contains(TracePos(idx as u64)), "live store {idx} missing");
            }
        }
    }

    #[test]
    fn overwritten_value_producer_not_in_slice() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let src1 = rec.alloc_cell(Region::Heap);
        let src2 = rec.alloc_cell(Region::Heap);
        let x = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), &[], &[src1.into()]);
        rec.compute(site!(), &[], &[src2.into()]);
        let first_write_start = rec.pos();
        rec.compute(site!(), &[src1.into()], &[x.into()]); // x := f(src1), killed
        let first_write_end = rec.pos();
        rec.compute(site!(), &[src2.into()], &[x.into()]); // x := f(src2), final
        let crit = Criteria::new(vec![SlicingCriterion::mem_at(
            TracePos(trace_len_hint(&rec)),
            vec![x.into()],
        )]);
        let trace = rec.finish();
        let r = run(&trace, &crit);
        for idx in first_write_start.index()..first_write_end.index() {
            assert!(
                !r.contains(TracePos(idx as u64)),
                "killed def {idx} in slice"
            );
        }
        // src1's producer must be out too (only reached via the killed def).
        assert!(!r.contains(TracePos(1)));
    }

    fn trace_len_hint(rec: &Recorder) -> u64 {
        rec.pos().0 - 1
    }

    #[test]
    fn control_dependence_pulls_branch_and_condition() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let cond = rec.alloc_cell(Region::Heap);
        let x = rec.alloc_cell(Region::Heap);
        let f = rec.intern_func("guarded");
        let cond_def_start = rec.pos();
        rec.compute(site!(), &[], &[cond.into()]); // cond := const
        let br = site!();
        let body = site!();
        let callsite = site!();
        let join = site!();
        let mut br_pos = None;
        rec.in_func(callsite, f, |rec| {
            br_pos = Some(rec.pos());
            rec.branch_mem(br, cond, true);
            rec.compute(body, &[], &[x.into()]); // guarded: x := const
            rec.compute(join, &[], &[]); // join point, nothing written
        });
        // Second invocation takes the other direction so the CFG knows both.
        rec.in_func(callsite, f, |rec| {
            rec.branch_mem(br, cond, false);
            rec.compute(join, &[], &[]);
        });
        let crit = Criteria::new(vec![SlicingCriterion::mem_at(
            TracePos(rec.pos().0 - 1),
            vec![x.into()],
        )]);
        let trace = rec.finish();
        let r = run(&trace, &crit);
        // The branch guarding x's def is in the slice...
        assert!(r.contains(br_pos.unwrap()), "guarding branch not in slice");
        // ...and so is the computation producing its condition.
        let cond_store = (cond_def_start.index()..trace.len())
            .find(|&i| {
                matches!(trace.columns().kind(i), InstrKind::Store)
                    && trace.columns().mem_writes(i)[0] == AddrRange::cell(cond)
            })
            .unwrap();
        assert!(
            r.contains(TracePos(cond_store as u64)),
            "condition producer not in slice"
        );
    }

    #[test]
    fn call_joins_slice_when_callee_matters() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let x = rec.alloc_cell(Region::Heap);
        let useful = rec.intern_func("useful");
        let useless = rec.intern_func("useless");
        let junk = rec.alloc_cell(Region::Heap);
        let useful_call = rec.pos();
        rec.in_func(site!(), useful, |rec| {
            rec.compute(site!(), &[], &[x.into()]);
        });
        let useless_call = rec.pos();
        rec.in_func(site!(), useless, |rec| {
            rec.compute(site!(), &[], &[junk.into()]);
        });
        let crit = Criteria::new(vec![SlicingCriterion::mem_at(
            TracePos(rec.pos().0 - 1),
            vec![x.into()],
        )]);
        let trace = rec.finish();
        let r = run(&trace, &crit);
        assert!(
            r.contains(useful_call),
            "call to useful callee missing from slice"
        );
        assert!(
            !r.contains(useless_call),
            "call to useless callee wrongly in slice"
        );
    }

    #[test]
    fn register_liveness_is_per_thread() {
        use wasteprof_trace::{Reg, RegSet};
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.spawn_thread(ThreadKind::Compositor, "root");
        let out = rec.alloc_cell(Region::Heap);
        // t1 writes rax (its own context) — unrelated.
        rec.switch_to(t1);
        let t1_def = rec.pos();
        rec.alu(site!(), Reg::Rax, RegSet::EMPTY);
        // t0 writes rax then stores it to the criterion cell.
        rec.switch_to(t0);
        let t0_def = rec.pos();
        rec.alu(site!(), Reg::Rax, RegSet::EMPTY);
        rec.store(site!(), out, Reg::Rax);
        let crit = Criteria::new(vec![SlicingCriterion::mem_at(
            TracePos(rec.pos().0 - 1),
            vec![out.into()],
        )]);
        let trace = rec.finish();
        let r = run(&trace, &crit);
        assert!(r.contains(t0_def), "producing thread's def missing");
        assert!(
            !r.contains(t1_def),
            "other thread's same-register def wrongly in slice"
        );
    }

    #[test]
    fn shared_memory_dataflow_crosses_threads() {
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.spawn_thread(ThreadKind::Raster(0), "root");
        let shared = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.switch_to(t0);
        let producer = rec.pos();
        rec.compute(site!(), &[], &[shared.into()]);
        rec.switch_to(t1);
        rec.compute(site!(), &[shared.into()], &[tile]);
        rec.marker(site!(), tile);
        let trace = rec.finish();
        let r = run(&trace, &pixel_criteria(&trace));
        // The main-thread producer feeds the rasterizer through shared
        // memory and must be in the pixel slice.
        let store_idx = (producer.index()..trace.len())
            .find(|&i| matches!(trace.columns().kind(i), InstrKind::Store))
            .unwrap();
        assert!(r.contains(TracePos(store_idx as u64)));
    }

    #[test]
    fn syscall_criteria_pull_payload_producers() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let payload = rec.alloc(Region::Heap, 32);
        let fdcell = rec.alloc_cell(Region::Heap);
        let junk = rec.alloc_cell(Region::Heap);
        let producer = rec.pos();
        rec.compute(site!(), &[], &[payload]);
        let waste = rec.pos();
        rec.compute(site!(), &[], &[junk.into()]);
        let sys = rec.pos();
        rec.syscall(
            site!(),
            Syscall::Sendto,
            &[fdcell.into()],
            vec![payload],
            vec![],
        );
        let trace = rec.finish();
        let r = run(&trace, &syscall_criteria(&trace));
        // The syscall, its argument loads, and the payload producer are in.
        assert!(r.contains(TracePos(trace.len() as u64 - 1)));
        assert!(r.contains(sys), "arg load missing");
        let store_idx = (producer.index()..waste.index())
            .find(|&i| matches!(trace.columns().kind(i), InstrKind::Store))
            .unwrap();
        assert!(
            r.contains(TracePos(store_idx as u64)),
            "payload producer missing"
        );
        // The unrelated computation is out.
        let junk_store = (waste.index()..sys.index())
            .find(|&i| matches!(trace.columns().kind(i), InstrKind::Store))
            .unwrap();
        assert!(!r.contains(TracePos(junk_store as u64)));
    }

    #[test]
    fn bounded_slicing_ignores_later_positions() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let a = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.compute(site!(), &[a.into()], &[tile]);
        rec.marker(site!(), tile);
        let cut = rec.pos(); // everything after this is ignored
        rec.compute(site!(), &[], &[a.into()]);
        let trace = rec.finish();
        let fwd = ForwardPass::build(&trace);
        let opts = SliceOptions {
            end: Some(TracePos(cut.0 - 1)),
            ..Default::default()
        };
        let r = slice(&trace, &fwd, &pixel_criteria(&trace), &opts);
        assert_eq!(r.considered(), cut.0);
        // Post-cut instructions can never be members.
        for idx in cut.index()..trace.len() {
            assert!(!r.contains(TracePos(idx as u64)));
        }
        assert!(r.slice_count() > 0);
    }

    #[test]
    fn timeline_is_monotonic_and_ends_at_full_length() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let tile = rec.alloc(Region::PixelTile, 64);
        for _ in 0..100 {
            rec.compute(site!(), &[], &[tile]);
        }
        rec.marker(site!(), tile);
        let trace = rec.finish();
        let fwd = ForwardPass::build(&trace);
        let opts = SliceOptions {
            timeline_interval: 7,
            ..Default::default()
        };
        let r = slice(&trace, &fwd, &pixel_criteria(&trace), &opts);
        let tl = r.timeline();
        assert!(!tl.is_empty());
        for w in tl.windows(2) {
            assert!(w[1].processed > w[0].processed);
            assert!(w[1].in_slice >= w[0].in_slice);
        }
        assert_eq!(tl.last().unwrap().processed, trace.len() as u64);
    }

    #[test]
    fn per_thread_totals_cover_trace() {
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.spawn_thread(ThreadKind::Io, "root");
        rec.switch_to(t0);
        rec.compute(site!(), &[], &[]);
        rec.switch_to(t1);
        rec.compute(site!(), &[], &[]);
        let trace = rec.finish();
        let r = run(&trace, &Criteria::default());
        let total: u64 = r.per_thread().map(|(_, _, n)| n).sum();
        assert_eq!(total as usize, trace.len());
    }

    #[test]
    fn pending_branch_is_thread_scoped() {
        // Two threads run the same static function; only the thread whose
        // guarded store feeds the criterion may have its branch sliced.
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root0");
        let t1 = rec.spawn_thread(ThreadKind::Compositor, "root1");
        let f = rec.intern_func("f");
        let cond = rec.alloc_cell(Region::Heap);
        let x = rec.alloc_cell(Region::Heap);
        let br = site!();
        let guarded = site!();
        let join = site!();

        // t0: taken path, guarded store to x.
        rec.switch_to(t0);
        rec.enter(site!(), f);
        rec.branch_mem(br, cond, true);
        let t0_br = rec.pos().index() - 1;
        rec.compute(guarded, &[], &[x.into()]);
        rec.compute(join, &[], &[]);
        rec.leave(site!());
        // t1: not-taken path (same static branch site).
        rec.switch_to(t1);
        rec.enter(site!(), f);
        rec.branch_mem(br, cond, false);
        let t1_br = rec.pos().index() - 1;
        rec.compute(join, &[], &[]);
        rec.leave(site!());
        let trace = rec.finish();

        let end = TracePos(trace.len() as u64 - 1);
        let criteria = Criteria::new(vec![SlicingCriterion {
            pos: end,
            mem: vec![x.into()],
            regs: wasteprof_trace::RegSet::EMPTY,
            include_instr: false,
        }]);
        let r = run(&trace, &criteria);
        assert!(
            r.contains(TracePos(t0_br as u64)),
            "t0's controlling branch must be in the slice"
        );
        assert!(
            !r.contains(TracePos(t1_br as u64)),
            "t1's unrelated instance of the same static branch must not \
             consume t0's pending entry"
        );
    }

    #[test]
    fn pending_loop_branch_does_not_leak_to_earlier_invocation() {
        // A loop head controls itself, so consuming its pending entry
        // re-arms it. When the invocation's Call closes, leftover entries
        // must not survive into an earlier, unrelated invocation.
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let f = rec.intern_func("f");
        let cond = rec.alloc_cell(Region::Heap);
        let c1 = rec.alloc_cell(Region::Heap);
        let c2 = rec.alloc_cell(Region::Heap);
        let head = site!();
        let body = site!();

        let invocation = |rec: &mut Recorder, cell: wasteprof_trace::Addr| {
            let mut brs = Vec::new();
            rec.enter(site!(), f);
            for _ in 0..2 {
                rec.branch_mem(head, cond, true);
                brs.push(rec.pos().index() - 1);
                rec.compute(body, &[], &[cell.into()]);
            }
            rec.branch_mem(head, cond, false);
            brs.push(rec.pos().index() - 1);
            rec.leave(site!());
            brs
        };
        let inv1 = invocation(&mut rec, c1);
        let inv2 = invocation(&mut rec, c2);
        let trace = rec.finish();

        let end = TracePos(trace.len() as u64 - 1);
        let criteria = Criteria::new(vec![SlicingCriterion {
            pos: end,
            mem: vec![c2.into()],
            regs: wasteprof_trace::RegSet::EMPTY,
            include_instr: false,
        }]);
        let r = run(&trace, &criteria);
        assert!(
            inv2.iter().take(2).any(|&i| r.contains(TracePos(i as u64))),
            "invocation 2's loop branches must join the slice"
        );
        for &i in &inv1 {
            assert!(
                !r.contains(TracePos(i as u64)),
                "invocation 1 loop branch {i} leaked into the slice"
            );
        }
    }

    #[test]
    fn call_anchored_criterion_includes_enclosing_call() {
        // A criterion anchored on a Call instruction must still propagate
        // slice membership to the *enclosing* dynamic call.
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let g = rec.intern_func("g");
        let h = rec.intern_func("h");
        rec.enter(site!(), g);
        let call_g = rec.pos().index() - 1;
        rec.enter(site!(), h);
        let call_h = rec.pos().index() - 1;
        rec.leave(site!());
        rec.leave(site!());
        let trace = rec.finish();

        let criteria = Criteria::new(vec![SlicingCriterion {
            pos: TracePos(call_h as u64),
            mem: Vec::new(),
            regs: wasteprof_trace::RegSet::EMPTY,
            include_instr: true,
        }]);
        let r = run(&trace, &criteria);
        assert!(
            r.contains(TracePos(call_h as u64)),
            "anchored call in slice"
        );
        assert!(
            r.contains(TracePos(call_g as u64)),
            "enclosing call must join the slice (its callee contains a \
             sliced instruction)"
        );
    }
}
