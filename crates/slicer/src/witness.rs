//! Dependence-witness emission: *why* each slice member joined.
//!
//! A slice alone is unauditable — the only way to re-check it is to run
//! the slicer again. A *witness* makes it checkable by an independent
//! pass: for every member the slicer records the one dependence edge that
//! pulled it in — the live fact (byte range or register) it defined and
//! the downstream member or criterion that consumed that fact, the CDG
//! edge for control-dependence members, or the contained member for
//! dynamic calls. The checker crate replays these edges in a single
//! *forward* sweep (`wasteprof-checker`'s `certify`), which shares no
//! code with the backward walk that produced them.
//!
//! Emission is a backward *replay* over the final slice bitmap. It leans
//! on a structural invariant of the sequential walk: the live sets are
//! mutated only by criteria applications, pending-branch probes, and
//! members' kill/gen — a non-member never changes them (if its writes hit
//! live state it would have joined). The replay therefore re-runs only
//! the member mutations, in the exact event order of the sequential walk,
//! and reads off the consumer of each killed fact. Because it is a pure
//! function of `(trace, criteria, final bitmap)`, the witness table is
//! byte-identical at any segment count K — the segment-parallel and
//! sequential paths produce the same bitmap, hence the same witnesses.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Seek};

use wasteprof_trace::{
    ColumnCursor, FuncId, InstrKind, Trace, TraceIoError, TracePos, TraceReader,
};

use crate::cdg::ControlDeps;
use crate::criteria::Criteria;
use crate::slice::{FibBuild, SliceResult};

/// The kind of dependence edge that pulled a member into the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WitnessKind {
    /// The member wrote live bytes `[fact_lo, fact_hi)`; the consumer read
    /// them (its last write to those bytes before the consumer).
    Mem,
    /// The member wrote live register `fact_lo` (register index) in the
    /// consumer's thread context.
    Reg,
    /// The member is a branch the consumer is control-dependent on
    /// (`fact_lo` carries the branch PC for display; the edge itself is
    /// checked against the recovered CDG).
    Control,
    /// The member is a `Call` whose dynamic callee frame contains the
    /// consumer.
    Call,
    /// The member is the anchor of an `include_instr` criterion; the
    /// consumer is the member itself.
    Criterion,
}

impl WitnessKind {
    /// Short name used in rendered diagnostics and reports.
    pub const fn name(self) -> &'static str {
        match self {
            WitnessKind::Mem => "mem",
            WitnessKind::Reg => "reg",
            WitnessKind::Control => "control",
            WitnessKind::Call => "call",
            WitnessKind::Criterion => "criterion",
        }
    }
}

/// One decoded witness row: why `member` is in the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessRow {
    /// The slice member this row justifies.
    pub member: TracePos,
    /// The kind of dependence edge.
    pub kind: WitnessKind,
    /// First byte of the defined range ([`WitnessKind::Mem`]), register
    /// index ([`WitnessKind::Reg`]), or branch PC ([`WitnessKind::Control`],
    /// informational); `0` otherwise.
    pub fact_lo: u64,
    /// One past the last byte of the defined range ([`WitnessKind::Mem`]);
    /// `0` otherwise.
    pub fact_hi: u64,
    /// The position that consumed the fact: a downstream member, the
    /// anchor of a criterion, or (for [`WitnessKind::Control`]) the
    /// control-dependent member that armed the branch.
    pub consumer: TracePos,
    /// True when the fact was consumed by a *criterion* at `consumer`
    /// rather than by a member's reads.
    pub consumer_is_criterion: bool,
    /// True when this member's own reads entered the live sets (kill/gen
    /// and pending-branch members): the certifier must check those reads
    /// against the slice complement.
    pub genned_reads: bool,
}

const FLAG_CRIT_CONSUMER: u8 = 1;
const FLAG_GENNED_READS: u8 = 2;

/// Columnar witness side-table: one row per slice member, sorted by
/// member position. Stored struct-of-arrays next to [`SliceResult`] so
/// multi-million-member tables stay compact and comparisons are cheap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Witnesses {
    members: Vec<u32>,
    kinds: Vec<WitnessKind>,
    fact_lo: Vec<u64>,
    fact_hi: Vec<u64>,
    consumers: Vec<u32>,
    flags: Vec<u8>,
}

impl Witnesses {
    /// Number of rows (equals the slice count for an honest witness).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Decodes row `i`.
    pub fn row(&self, i: usize) -> WitnessRow {
        WitnessRow {
            member: TracePos(self.members[i] as u64),
            kind: self.kinds[i],
            fact_lo: self.fact_lo[i],
            fact_hi: self.fact_hi[i],
            consumer: TracePos(self.consumers[i] as u64),
            consumer_is_criterion: self.flags[i] & FLAG_CRIT_CONSUMER != 0,
            genned_reads: self.flags[i] & FLAG_GENNED_READS != 0,
        }
    }

    /// Iterates over all rows in member order.
    pub fn rows(&self) -> impl Iterator<Item = WitnessRow> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// Rebuilds a table from decoded rows (fault-injection support: the
    /// checker's differential tests corrupt one row and re-encode).
    pub fn from_rows(rows: impl IntoIterator<Item = WitnessRow>) -> Witnesses {
        let mut w = Witnesses::default();
        for r in rows {
            w.push(r);
        }
        w
    }

    fn push(&mut self, r: WitnessRow) {
        self.members.push(r.member.0 as u32);
        self.kinds.push(r.kind);
        self.fact_lo.push(r.fact_lo);
        self.fact_hi.push(r.fact_hi);
        self.consumers.push(r.consumer.0 as u32);
        let mut flags = 0u8;
        if r.consumer_is_criterion {
            flags |= FLAG_CRIT_CONSUMER;
        }
        if r.genned_reads {
            flags |= FLAG_GENNED_READS;
        }
        self.flags.push(flags);
    }
}

/// A live fact's consumer: the position that declared the bytes/register
/// live, and whether that position is a criterion anchor or a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    pos: u32,
    crit: bool,
}

/// Interval map of live bytes → consumer, keyed by interval start.
/// Same shape as the checker's shadow map: disjoint `[start, end)`
/// entries, split on demand.
#[derive(Default)]
struct FactMap {
    map: BTreeMap<u64, (u64, Fact)>,
}

impl FactMap {
    /// Splits any entry straddling `at` so no interval crosses it.
    fn split_at(&mut self, at: u64) {
        let split = match self.map.range(..at).next_back() {
            Some((&s, &(end, fact))) if end > at => Some((s, end, fact)),
            _ => None,
        };
        if let Some((s, end, fact)) = split {
            self.map.get_mut(&s).expect("entry just observed").0 = at;
            self.map.insert(at, (end, fact));
        }
    }

    /// Marks `[lo, hi)` live with `fact`, overwriting any previous
    /// consumer of those bytes (last insertion in replay order wins —
    /// deterministic, and still a valid def→use edge for the certifier).
    fn insert(&mut self, lo: u64, hi: u64, fact: Fact) {
        if lo >= hi {
            return;
        }
        self.split_at(lo);
        self.split_at(hi);
        let doomed: Vec<u64> = self.map.range(lo..hi).map(|(&s, _)| s).collect();
        for s in doomed {
            self.map.remove(&s);
        }
        self.map.insert(lo, (hi, fact));
    }

    /// Kills `[lo, hi)` (the bytes are no longer live).
    fn remove(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        self.split_at(lo);
        self.split_at(hi);
        let doomed: Vec<u64> = self.map.range(lo..hi).map(|(&s, _)| s).collect();
        for s in doomed {
            self.map.remove(&s);
        }
    }

    /// The lowest-address live sub-interval of `[lo, hi)`, clipped to the
    /// query, with its consumer.
    fn first_overlap(&self, lo: u64, hi: u64) -> Option<(u64, u64, Fact)> {
        if let Some((_, &(end, fact))) = self.map.range(..=lo).next_back() {
            if end > lo {
                return Some((lo, end.min(hi), fact));
            }
        }
        self.map
            .range(lo..hi)
            .next()
            .map(|(&s, &(end, fact))| (s, end.min(hi), fact))
    }
}

/// One dynamic frame of the replay: the running function and the first
/// (in replay order) member found inside it, if any.
struct WFrame {
    func: FuncId,
    any_slice: Option<u32>,
}

/// The witness replay, restructured around [`Emitter::feed`] so the same
/// per-instruction step runs over either one in-memory cursor or a
/// sequence of streamed chunk cursors. Protocol mirrors the backward
/// walk's: `prescan` forward, `seal_frames`, `feed` backward (last window
/// first), `finish`.
struct Emitter<'a> {
    deps: &'a ControlDeps,
    result: &'a SliceResult,
    n: usize,
    criteria: Vec<&'a crate::criteria::SlicingCriterion>,
    crit_idx: usize,
    mem: FactMap,
    regs: Vec<[Option<Fact>; 16]>,
    pending: HashMap<(wasteprof_trace::ThreadId, FuncId, wasteprof_trace::Pc), u32, FibBuild>,
    open: Vec<Vec<FuncId>>,
    frames: Vec<Vec<WFrame>>,
    /// Rows in *descending* member order (reversed at the end): each
    /// member joins exactly at its own index of the backward walk.
    rows: Vec<WitnessRow>,
    joined: Vec<u64>,
    current_row: Option<usize>,
}

impl<'a> Emitter<'a> {
    fn new(deps: &'a ControlDeps, criteria: &'a Criteria, result: &'a SliceResult) -> Self {
        let n = result.considered() as usize;
        assert!(
            n <= u32::MAX as usize,
            "witness table uses 32-bit positions"
        );
        let criteria: Vec<&crate::criteria::SlicingCriterion> = criteria.items().iter().collect();
        let mut crit_idx = criteria.len();
        while crit_idx > 0 && criteria[crit_idx - 1].pos.index() >= n {
            crit_idx -= 1;
        }
        Emitter {
            deps,
            result,
            n,
            criteria,
            crit_idx,
            mem: FactMap::default(),
            regs: vec![[None; 16]; 256],
            pending: HashMap::default(),
            open: vec![Vec::new(); 256],
            frames: Vec::new(),
            rows: Vec::with_capacity(result.slice_count() as usize),
            joined: vec![0; n.div_ceil(64)],
            current_row: None,
        }
    }

    /// Forward pre-scan over one window: collects calls still open at the
    /// cut, like the backward walk does.
    fn prescan(&mut self, cur: &ColumnCursor<'_>) {
        for idx in cur.lo()..cur.hi() {
            match cur.kind(idx) {
                InstrKind::Call { callee } => self.open[cur.tid(idx).index()].push(callee),
                InstrKind::Ret => {
                    self.open[cur.tid(idx).index()].pop();
                }
                _ => {}
            }
        }
    }

    /// Converts the pre-scan's open-call stacks into live frames.
    fn seal_frames(&mut self) {
        self.frames = std::mem::take(&mut self.open)
            .into_iter()
            .map(|fs| {
                fs.into_iter()
                    .map(|func| WFrame {
                        func,
                        any_slice: None,
                    })
                    .collect()
            })
            .collect();
    }

    fn in_slice(&self, idx: usize) -> bool {
        self.result.contains(TracePos(idx as u64))
    }

    /// Records the member's witness row on its first join of this replay,
    /// then arms its controllers and marks its enclosing frame — the same
    /// side effects as the sequential walk's `join_slice`, with consumers
    /// attached (keep-first, deterministic).
    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        idx: usize,
        tid: wasteprof_trace::ThreadId,
        func: FuncId,
        pc: wasteprof_trace::Pc,
        kind: WitnessKind,
        fact_lo: u64,
        fact_hi: u64,
        consumer: Fact,
    ) {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.joined[word] & bit != 0 {
            return;
        }
        self.joined[word] |= bit;
        debug_assert!(
            self.in_slice(idx),
            "witness replay joined non-member {idx}: live-set invariant broken"
        );
        self.current_row = Some(self.rows.len());
        self.rows.push(WitnessRow {
            member: TracePos(idx as u64),
            kind,
            fact_lo,
            fact_hi,
            consumer: TracePos(consumer.pos as u64),
            consumer_is_criterion: consumer.crit,
            genned_reads: false,
        });
        for &bpc in self.deps.controllers(func, pc) {
            self.pending.entry((tid, func, bpc)).or_insert(idx as u32);
        }
        if let Some(frame) = self.frames[tid.index()].last_mut() {
            frame.any_slice.get_or_insert(idx as u32);
        }
    }

    /// Marks the current member's row as having genned its reads.
    fn mark_genned(&mut self) {
        if let Some(r) = self.current_row {
            self.rows[r].genned_reads = true;
        }
    }

    /// The backward replay over one window, highest indices first.
    /// Windows must arrive in reverse trace order and tile `[0, n)`.
    fn feed(&mut self, cur: &ColumnCursor<'_>) {
        for idx in cur.rev_indices() {
            self.current_row = None;
            let tid = cur.tid(idx);
            let ti = tid.index();
            let func = cur.func(idx);
            let pc = cur.pc(idx);
            let kind = cur.kind(idx);

            if matches!(kind, InstrKind::Ret) {
                self.frames[ti].push(WFrame {
                    func,
                    any_slice: None,
                });
            }

            while self.crit_idx > 0 && self.criteria[self.crit_idx - 1].pos.index() == idx {
                self.crit_idx -= 1;
                let c = self.criteria[self.crit_idx];
                let fact = Fact {
                    pos: idx as u32,
                    crit: true,
                };
                for &range in &c.mem {
                    self.mem
                        .insert(range.start().raw(), range.end().raw(), fact);
                }
                for r in c.regs.iter() {
                    self.regs[ti][r.index()] = Some(fact);
                }
                if c.include_instr {
                    self.join(idx, tid, func, pc, WitnessKind::Criterion, 0, 0, fact);
                }
            }

            let pending_armer = if kind.is_branch() {
                self.pending.remove(&(tid, func, pc))
            } else {
                None
            };
            if let Some(armer) = pending_armer {
                self.join(
                    idx,
                    tid,
                    func,
                    pc,
                    WitnessKind::Control,
                    pc.0 as u64,
                    0,
                    Fact {
                        pos: armer,
                        crit: false,
                    },
                );
                let gen = Fact {
                    pos: idx as u32,
                    crit: false,
                };
                for &r in cur.mem_reads(idx) {
                    self.mem.insert(r.start().raw(), r.end().raw(), gen);
                }
                for r in cur.reg_reads(idx).iter() {
                    self.regs[ti][r.index()] = Some(gen);
                }
                self.mark_genned();
            } else if self.in_slice(idx) {
                // Kill/gen runs only for members: a non-member never writes
                // live state (it would have joined), so skipping it here
                // keeps the replay proportional to the slice, not the
                // trace.
                let reg_writes = cur.reg_writes(idx);
                let mem_writes = cur.mem_writes(idx);
                let reg_fact = reg_writes
                    .iter()
                    .find_map(|r| self.regs[ti][r.index()].map(|f| (r, f)));
                let mem_fact = if reg_fact.is_none() {
                    mem_writes
                        .iter()
                        .find_map(|w| self.mem.first_overlap(w.start().raw(), w.end().raw()))
                } else {
                    None
                };
                if reg_fact.is_some() || mem_fact.is_some() {
                    if let Some((r, f)) = reg_fact {
                        self.join(idx, tid, func, pc, WitnessKind::Reg, r.index() as u64, 0, f);
                    } else if let Some((lo, hi, f)) = mem_fact {
                        self.join(idx, tid, func, pc, WitnessKind::Mem, lo, hi, f);
                    }
                    for r in reg_writes.iter() {
                        self.regs[ti][r.index()] = None;
                    }
                    for &w in mem_writes {
                        self.mem.remove(w.start().raw(), w.end().raw());
                    }
                    let gen = Fact {
                        pos: idx as u32,
                        crit: false,
                    };
                    for &r in cur.mem_reads(idx) {
                        self.mem.insert(r.start().raw(), r.end().raw(), gen);
                    }
                    for r in cur.reg_reads(idx).iter() {
                        self.regs[ti][r.index()] = Some(gen);
                    }
                    self.mark_genned();
                }
            }

            if let InstrKind::Call { callee } = kind {
                let closed = self.frames[ti].pop();
                if let Some(consumer) = closed.and_then(|f| f.any_slice) {
                    self.join(
                        idx,
                        tid,
                        func,
                        pc,
                        WitnessKind::Call,
                        0,
                        0,
                        Fact {
                            pos: consumer,
                            crit: false,
                        },
                    );
                }
                if self.in_slice(idx) {
                    if let Some(frame) = self.frames[ti].last_mut() {
                        frame.any_slice.get_or_insert(idx as u32);
                    }
                }
                if !self.frames[ti].iter().any(|f| f.func == callee) {
                    self.pending.retain(|&(t, f, _), _| t != tid || f != callee);
                }
            }
        }
    }

    fn finish(mut self) -> Witnesses {
        self.rows.reverse();
        debug_assert_eq!(
            self.rows.len() as u64,
            self.result.slice_count(),
            "witness replay diverged from the slice it explains"
        );
        Witnesses::from_rows(self.rows)
    }
}

/// Replays the member mutations of the backward walk over the final
/// bitmap and returns the witness table (one row per member, ascending).
pub(crate) fn emit(
    trace: &Trace,
    deps: &ControlDeps,
    criteria: &Criteria,
    result: &SliceResult,
) -> Witnesses {
    let mut em = Emitter::new(deps, criteria, result);
    let cur = trace.columns().cursor(0, em.n);
    em.prescan(&cur);
    em.seal_frames();
    em.feed(&cur);
    em.finish()
}

/// [`emit`] driven by streamed chunk cursors: identical rows, bounded
/// memory.
pub(crate) fn emit_streamed<R: Read + Seek>(
    reader: &mut TraceReader<R>,
    deps: &ControlDeps,
    criteria: &Criteria,
    result: &SliceResult,
) -> Result<Witnesses, TraceIoError> {
    let mut em = Emitter::new(deps, criteria, result);
    let n = em.n;
    reader.stream_range(0, n, |cur| em.prescan(cur))?;
    em.seal_frames();
    reader.stream_range_rev(0, n, |cur| em.feed(cur))?;
    Ok(em.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::pixel_criteria;
    use crate::slice::{slice, ForwardPass, SliceOptions};
    use wasteprof_trace::{site, Recorder, Region, ThreadKind};

    /// A small multi-thread session with data flow, control dependence,
    /// calls, and dead code.
    fn rich_trace() -> Trace {
        let mut rec = Recorder::new();
        let t0 = rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.spawn_thread(ThreadKind::Raster(0), "root");
        let cond = rec.alloc_cell(Region::Heap);
        let shared = rec.alloc_cell(Region::Heap);
        let dead = rec.alloc_cell(Region::Heap);
        let tile = rec.alloc(Region::PixelTile, 64);
        let f = rec.intern_func("guarded");
        rec.switch_to(t0);
        rec.compute(site!(), &[], &[cond.into()]);
        rec.compute(site!(), &[], &[dead.into()]); // never feeds the pixels
        let br = site!();
        let body = site!();
        let join = site!();
        rec.in_func(site!(), f, |rec| {
            rec.branch_mem(br, cond, true);
            rec.compute(body, &[], &[shared.into()]);
            rec.compute(join, &[], &[]);
        });
        rec.in_func(site!(), f, |rec| {
            rec.branch_mem(br, cond, false);
            rec.compute(join, &[], &[]);
        });
        rec.switch_to(t1);
        rec.compute(site!(), &[shared.into()], &[tile]);
        rec.marker(site!(), tile);
        rec.finish()
    }

    #[test]
    fn witness_covers_every_member_and_is_segment_invariant() {
        let trace = rich_trace();
        let fwd = ForwardPass::build(&trace);
        let criteria = pixel_criteria(&trace);
        let opts = |segments| SliceOptions {
            witness: true,
            segments,
            ..Default::default()
        };
        let k1 = slice(&trace, &fwd, &criteria, &opts(1));
        let k8 = slice(&trace, &fwd, &criteria, &opts(8));
        assert_eq!(k1, k8, "witnessed results must be identical at any K");

        let w = k1.witness().expect("witness requested");
        assert_eq!(w.len() as u64, k1.slice_count(), "one row per member");
        let mut prev = None;
        for row in w.rows() {
            assert!(k1.contains(row.member), "row member must be in the slice");
            assert!(
                prev.is_none_or(|p| p < row.member),
                "rows sorted by member, no duplicates"
            );
            prev = Some(row.member);
            // Consumers are criteria anchors or members themselves.
            if !row.consumer_is_criterion && row.kind != WitnessKind::Criterion {
                assert!(
                    k1.contains(row.consumer),
                    "non-criterion consumer {:?} of {:?} must be a member",
                    row.consumer,
                    row.member
                );
            }
        }
        // The session has all the interesting edge kinds.
        for kind in [WitnessKind::Mem, WitnessKind::Control, WitnessKind::Call] {
            assert!(
                w.rows().any(|r| r.kind == kind),
                "expected at least one {} row",
                kind.name()
            );
        }
    }

    #[test]
    fn witness_off_by_default() {
        let trace = rich_trace();
        let fwd = ForwardPass::build(&trace);
        let r = slice(
            &trace,
            &fwd,
            &pixel_criteria(&trace),
            &SliceOptions::default(),
        );
        assert!(r.witness().is_none());
    }

    #[test]
    fn fact_map_overwrites_and_clips() {
        let mut m = FactMap::default();
        let f = |p| Fact {
            pos: p,
            crit: false,
        };
        m.insert(10, 20, f(1));
        m.insert(15, 30, f(2));
        assert_eq!(m.first_overlap(0, 100), Some((10, 15, f(1))));
        assert_eq!(m.first_overlap(16, 18), Some((16, 18, f(2))));
        m.remove(12, 17);
        assert_eq!(m.first_overlap(11, 40), Some((11, 12, f(1))));
        assert_eq!(m.first_overlap(12, 17), None);
        assert_eq!(m.first_overlap(17, 40), Some((17, 30, f(2))));
    }

    #[test]
    fn rows_roundtrip_through_columns() {
        let rows = vec![
            WitnessRow {
                member: TracePos(3),
                kind: WitnessKind::Mem,
                fact_lo: 100,
                fact_hi: 164,
                consumer: TracePos(9),
                consumer_is_criterion: true,
                genned_reads: true,
            },
            WitnessRow {
                member: TracePos(5),
                kind: WitnessKind::Control,
                fact_lo: 0xabc,
                fact_hi: 0,
                consumer: TracePos(7),
                consumer_is_criterion: false,
                genned_reads: false,
            },
        ];
        let w = Witnesses::from_rows(rows.clone());
        assert_eq!(w.len(), 2);
        assert_eq!(w.rows().collect::<Vec<_>>(), rows);
    }
}
