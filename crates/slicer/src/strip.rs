//! Pre-slicing trace normalization: removing allocator-metadata
//! dependences.
//!
//! The recorder models PartitionAlloc faithfully: every traced heap
//! allocation emits a `base::allocator::PartitionAlloc::Alloc` frame
//! whose freelist scan reads *and* writes a per-thread bump cursor, and
//! the allocating instruction itself reads the cursor as its allocation
//! anchor. The cursor therefore chains every allocation on a thread into
//! one long def-use ribbon: if any later allocation feeds the pixels, the
//! backward slice walks the ribbon and pulls in every earlier allocator
//! frame — and through the anchors, every earlier allocating *statement*
//! — regardless of whether the allocated object mattered.
//!
//! That is faithful to machine-level slicing (the paper's §III slices the
//! real allocator the same way) but it is the wrong ground truth for
//! judging a *source-level* analyzer, which reasons about object values,
//! not allocator metadata. [`strip_allocator_deps`] rebuilds the trace
//! with every cursor-cell operand dropped, cutting the ribbon while
//! keeping the allocator instructions themselves (their cost still
//! counts; only the artificial dependence goes). The result is the
//! referee's pixel-slice ground truth.

use std::collections::HashSet;

use wasteprof_trace::{AddrRange, Columns, Trace};

/// The recorder's allocator frame name (see `Recorder::note_alloc`).
pub const ALLOCATOR_FN: &str = "base::allocator::PartitionAlloc::Alloc";

/// Returns a copy of `trace` with every memory operand that touches an
/// allocator bump-cursor cell removed, on every instruction. Cursor
/// cells are identified as the bytes the allocator frames write; the
/// anchor *reads* of those bytes on allocating instructions are dropped
/// too. A trace with no allocator frames is returned unchanged.
#[must_use]
pub fn strip_allocator_deps(trace: &Trace) -> Trace {
    let cols = trace.columns();
    let Some(alloc_fid) = trace.functions().get(ALLOCATOR_FN) else {
        return trace.clone();
    };
    let mut cursor: HashSet<AddrRange> = HashSet::new();
    for i in 0..cols.len() {
        if cols.func(i) == alloc_fid {
            for w in cols.mem_writes(i) {
                cursor.insert(*w);
            }
        }
    }
    let mut out = Columns::default();
    for i in 0..cols.len() {
        let reads: Vec<AddrRange> = cols
            .mem_reads(i)
            .iter()
            .filter(|r| !cursor.contains(r))
            .copied()
            .collect();
        let writes: Vec<AddrRange> = cols
            .mem_writes(i)
            .iter()
            .filter(|r| !cursor.contains(r))
            .copied()
            .collect();
        out.push(
            cols.tid(i),
            cols.func(i),
            cols.pc(i),
            cols.kind(i),
            cols.reg_reads(i),
            cols.reg_writes(i),
            &reads,
            &writes,
        );
    }
    Trace::from_parts(
        out,
        trace.functions().clone(),
        trace.threads().clone(),
        trace.markers().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use wasteprof_trace::{site, Recorder, Region, ThreadKind, TracePos};

    use super::*;
    use crate::{pixel_criteria, slice, ForwardPass, SliceOptions};

    #[test]
    fn untraced_allocations_leave_the_trace_unchanged() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
        let a = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), &[], &[a.into()]);
        let trace = rec.finish();
        let stripped = strip_allocator_deps(&trace);
        assert_eq!(stripped.columns().len(), trace.columns().len());
        assert_eq!(
            stripped.columns().mem_writes(0),
            trace.columns().mem_writes(0)
        );
    }

    #[test]
    fn cursor_operands_vanish_but_instructions_stay() {
        let mut rec = Recorder::new();
        rec.set_traced_allocations(true);
        rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
        let a = rec.alloc_cell(Region::Heap);
        let b = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), &[], &[a.into()]);
        rec.compute(site!(), &[], &[b.into()]);
        let trace = rec.finish();
        let stripped = strip_allocator_deps(&trace);
        // Same instruction stream, allocator frames included.
        assert_eq!(stripped.columns().len(), trace.columns().len());
        let fid = stripped.functions().get(ALLOCATOR_FN).unwrap();
        let cols = stripped.columns();
        let mut alloc_instrs = 0usize;
        for i in 0..cols.len() {
            if cols.func(i) == fid {
                alloc_instrs += 1;
                assert!(cols.mem_reads(i).is_empty(), "cursor read at {i}");
                assert!(cols.mem_writes(i).is_empty(), "cursor write at {i}");
            }
        }
        assert!(alloc_instrs > 0, "allocator frames preserved");
    }

    #[test]
    fn stripping_cuts_the_allocation_ribbon_out_of_the_slice() {
        // Two allocations on one thread: the first object is never read,
        // the second feeds the pixels. Raw slicing drags the first
        // allocator frame in through the shared cursor; stripped slicing
        // does not.
        let mut rec = Recorder::new();
        rec.set_traced_allocations(true);
        rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
        let dead = rec.alloc_cell(Region::Heap);
        let dead_write = rec.compute(site!(), &[], &[dead.into()]);
        let live = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), &[], &[live.into()]);
        let tile = rec.alloc(Region::PixelTile, 64);
        rec.compute(site!(), &[live.into()], &[tile]);
        rec.marker(site!(), tile);
        let trace = rec.finish();

        // The dead allocation's allocator frames are every Alloc
        // instruction before the (first) compute that wrote `dead`.
        let fid = trace.functions().get(ALLOCATOR_FN).unwrap();
        let cols = trace.columns();
        let dead_frames: Vec<TracePos> = (0..dead_write.0 as usize)
            .filter(|&i| cols.func(i) == fid)
            .map(|i| TracePos(i as u64))
            .collect();
        assert!(!dead_frames.is_empty());

        let raw = {
            let fwd = ForwardPass::build(&trace);
            slice(
                &trace,
                &fwd,
                &pixel_criteria(&trace),
                &SliceOptions::default(),
            )
        };
        let stripped_trace = strip_allocator_deps(&trace);
        let stripped = {
            let fwd = ForwardPass::build(&stripped_trace);
            slice(
                &stripped_trace,
                &fwd,
                &pixel_criteria(&stripped_trace),
                &SliceOptions::default(),
            )
        };
        assert!(
            dead_frames.iter().any(|&p| raw.contains(p)),
            "raw slice chains the dead allocation's frames in via the cursor"
        );
        assert!(
            dead_frames.iter().all(|&p| !stripped.contains(p)),
            "stripped slice excludes the dead allocation's frames"
        );
        assert!(stripped.slice_count() < raw.slice_count());
    }
}
