//! Postdominator computation (forward pass, part 2).
//!
//! "In a CFG, a node *n* postdominates a node *m* if and only if every
//! directed path from *m* to *exit* contains *n*" (§III-A). We compute
//! immediate postdominators with the Cooper–Harvey–Kennedy iterative
//! dominance algorithm run on the *reverse* CFG, rooted at the virtual
//! exit node.

use crate::cfg::{Cfg, NodeId};

/// The postdominator tree of one function's CFG.
#[derive(Debug, Clone)]
pub struct PostDoms {
    /// `ipdom[n]` = immediate postdominator of node `n`; `None` for the
    /// exit node itself and for nodes that cannot reach exit.
    ipdom: Vec<Option<NodeId>>,
}

impl PostDoms {
    /// Computes the postdominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        // Postorder of the reverse CFG (edges flipped: succ relation is
        // `preds`), rooted at EXIT.
        let order = reverse_postorder_of_reverse_cfg(cfg);
        // Map node -> its position in `order` (postorder number).
        let mut po_num = vec![usize::MAX; n];
        for (i, &node) in order.iter().enumerate() {
            po_num[node.index()] = i;
        }

        let mut ipdom: Vec<Option<NodeId>> = vec![None; n];
        ipdom[NodeId::EXIT.index()] = Some(NodeId::EXIT);

        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse postorder of the reverse CFG (i.e. from
            // EXIT outward).
            for &node in order.iter().rev() {
                if node == NodeId::EXIT {
                    continue;
                }
                // Predecessors in the reverse graph = successors in the CFG.
                let mut new_idom: Option<NodeId> = None;
                for &succ in &cfg.node(node).succs {
                    if ipdom[succ.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => succ,
                        Some(cur) => intersect(&ipdom, &po_num, succ, cur),
                    });
                }
                if let Some(nd) = new_idom {
                    if ipdom[node.index()] != Some(nd) {
                        ipdom[node.index()] = Some(nd);
                        changed = true;
                    }
                }
            }
        }

        // EXIT's ipdom is conventionally itself during the fixpoint; expose
        // it as None (it has no proper postdominator).
        ipdom[NodeId::EXIT.index()] = None;
        PostDoms { ipdom }
    }

    /// Immediate postdominator of `node` (`None` for exit or unreachable
    /// nodes).
    pub fn ipdom(&self, node: NodeId) -> Option<NodeId> {
        self.ipdom.get(node.index()).copied().flatten()
    }

    /// True if `a` postdominates `b` (including `a == b`).
    pub fn postdominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(next) => cur = next,
                None => return a == NodeId::EXIT && cur == NodeId::EXIT,
            }
        }
    }
}

/// Postorder traversal of the reverse CFG from EXIT; returned vector is in
/// postorder (EXIT last is NOT guaranteed; EXIT is where DFS starts so it
/// finishes last and sits at the end).
fn reverse_postorder_of_reverse_cfg(cfg: &Cfg) -> Vec<NodeId> {
    let n = cfg.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS over `preds` edges starting from EXIT.
    let mut stack: Vec<(NodeId, usize)> = vec![(NodeId::EXIT, 0)];
    visited[NodeId::EXIT.index()] = true;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        let preds = &cfg.node(node).preds;
        if *idx < preds.len() {
            let next = preds[*idx];
            *idx += 1;
            if !visited[next.index()] {
                visited[next.index()] = true;
                stack.push((next, 0));
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    order
}

fn intersect(ipdom: &[Option<NodeId>], po_num: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while po_num[a.index()] < po_num[b.index()] {
            a = ipdom[a.index()].expect("processed node has ipdom");
        }
        while po_num[b.index()] < po_num[a.index()] {
            b = ipdom[b.index()].expect("processed node has ipdom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgSet;
    use wasteprof_trace::{site, Recorder, Reg, RegSet, Region, ThreadKind};

    /// Builds a diamond: br -> {then, join}, then -> join, join -> exit.
    fn diamond() -> (
        crate::cfg::Cfg,
        wasteprof_trace::Pc,
        wasteprof_trace::Pc,
        wasteprof_trace::Pc,
    ) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let cell = rec.alloc_cell(Region::Heap);
        let br = site!();
        let then_s = site!();
        let join_s = site!();
        rec.branch_mem(br, cell, true);
        rec.alu(then_s, Reg::Rax, RegSet::EMPTY);
        rec.alu(join_s, Reg::Rax, RegSet::EMPTY);
        rec.branch_mem(br, cell, false);
        rec.alu(join_s, Reg::Rax, RegSet::EMPTY);
        let trace = rec.finish();
        let set = CfgSet::build(&trace);
        (set.get(root).unwrap().clone(), br, then_s, join_s)
    }

    #[test]
    fn diamond_postdominators() {
        let (cfg, br, then_s, join_s) = diamond();
        let pd = PostDoms::compute(&cfg);
        let nbr = cfg.node_of(br).unwrap();
        let nthen = cfg.node_of(then_s).unwrap();
        let njoin = cfg.node_of(join_s).unwrap();
        // join postdominates the branch; then does not.
        assert_eq!(pd.ipdom(nbr), Some(njoin));
        assert!(pd.postdominates(njoin, nbr));
        assert!(!pd.postdominates(nthen, nbr));
        assert_eq!(pd.ipdom(nthen), Some(njoin));
        assert!(pd.postdominates(NodeId::EXIT, nbr));
    }

    #[test]
    fn straight_line_chain_postdominates_upward() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let a = site!();
        let b = site!();
        rec.alu(a, Reg::Rax, RegSet::EMPTY);
        rec.alu(b, Reg::Rax, RegSet::EMPTY);
        let trace = rec.finish();
        let set = CfgSet::build(&trace);
        let cfg = set.get(root).unwrap();
        let pd = PostDoms::compute(cfg);
        let na = cfg.node_of(a).unwrap();
        let nb = cfg.node_of(b).unwrap();
        assert_eq!(pd.ipdom(na), Some(nb));
        assert_eq!(pd.ipdom(nb), Some(NodeId::EXIT));
        assert!(pd.postdominates(nb, na));
        assert!(!pd.postdominates(na, nb));
    }

    #[test]
    fn loop_head_postdominates_body() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let root = rec.current_func();
        let cell = rec.alloc_cell(Region::Heap);
        let head = site!();
        let body = site!();
        for _ in 0..2 {
            rec.branch_mem(head, cell, true);
            rec.alu(body, Reg::Rax, RegSet::EMPTY);
        }
        rec.branch_mem(head, cell, false);
        let trace = rec.finish();
        let set = CfgSet::build(&trace);
        let cfg = set.get(root).unwrap();
        let pd = PostDoms::compute(cfg);
        let nhead = cfg.node_of(head).unwrap();
        let nbody = cfg.node_of(body).unwrap();
        // The only way out of the body is back through the loop head.
        assert_eq!(pd.ipdom(nbody), Some(nhead));
        assert_eq!(pd.ipdom(nhead), Some(NodeId::EXIT));
    }

    #[test]
    fn every_reachable_node_postdominated_by_exit() {
        let (cfg, ..) = diamond();
        let pd = PostDoms::compute(&cfg);
        for id in cfg.node_ids() {
            if id == NodeId::EXIT {
                continue;
            }
            assert!(
                pd.postdominates(NodeId::EXIT, id),
                "{id:?} not postdominated by exit"
            );
        }
    }
}
