//! Slicing criteria: `(program point, set of variables)` pairs (§II-C).
//!
//! Two browser-independent criterion families are provided, matching §IV-C:
//!
//! * [`pixel_criteria`] — the values of the pixels buffer at every point
//!   where it holds final display pixels (the marker instructions logged by
//!   the rasterizer).
//! * [`syscall_criteria`] — the values read by any system call: everything
//!   the process communicates to the outside world (network, display,
//!   audio). This slice is by construction a superset of the pixel slice
//!   whenever the framebuffer is handed to the display through a syscall.

use std::io::{Read, Seek};
use wasteprof_trace::{AddrRange, InstrKind, RegSet, Trace, TraceIoError, TracePos, TraceReader};

/// One slicing criterion: at `pos`, the given memory ranges and registers
/// are declared *necessary*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicingCriterion {
    /// The program point (position in the trace).
    pub pos: TracePos,
    /// Memory ranges whose values at `pos` are necessary.
    pub mem: Vec<AddrRange>,
    /// Registers (in the executing thread's context) whose values are
    /// necessary.
    pub regs: RegSet,
    /// If true, the instruction at `pos` itself joins the slice (used for
    /// syscalls, which are themselves the communication).
    pub include_instr: bool,
}

impl SlicingCriterion {
    /// Criterion over memory ranges only.
    pub fn mem_at(pos: TracePos, mem: Vec<AddrRange>) -> Self {
        SlicingCriterion {
            pos,
            mem,
            regs: RegSet::EMPTY,
            include_instr: false,
        }
    }
}

/// A set of criteria, indexed by trace position for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Criteria {
    items: Vec<SlicingCriterion>,
}

impl Criteria {
    /// Creates a criteria set from individual criteria.
    pub fn new(mut items: Vec<SlicingCriterion>) -> Self {
        items.sort_by_key(|c| c.pos);
        Criteria { items }
    }

    /// All criteria, sorted by position.
    pub fn items(&self) -> &[SlicingCriterion] {
        &self.items
    }

    /// Number of criteria.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if there are no criteria (the slice will be empty).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops every criterion at a position greater than `end`.
    ///
    /// Used for the paper's Bing experiment (§V-A): slicing "starting from
    /// the time when the page was completely loaded" means only criteria up
    /// to that point seed the live sets.
    pub fn truncated(&self, end: TracePos) -> Criteria {
        Criteria {
            items: self
                .items
                .iter()
                .filter(|c| c.pos <= end)
                .cloned()
                .collect(),
        }
    }
}

impl FromIterator<SlicingCriterion> for Criteria {
    fn from_iter<I: IntoIterator<Item = SlicingCriterion>>(iter: I) -> Self {
        Criteria::new(iter.into_iter().collect())
    }
}

/// Builds pixel-buffer criteria from the trace's marker records.
///
/// Every marker is a point where a tile buffer contains final display pixel
/// values; the criterion makes that buffer live there.
pub fn pixel_criteria(trace: &Trace) -> Criteria {
    trace
        .markers()
        .iter()
        .map(|m| SlicingCriterion::mem_at(m.pos, vec![m.tile]))
        .collect()
}

/// Streamed variant of [`pixel_criteria`] over a [`TraceReader`].
///
/// Markers live in the footer, so this needs no segment reads at all.
pub fn pixel_criteria_streamed<R: Read + Seek>(reader: &TraceReader<R>) -> Criteria {
    reader
        .markers()
        .iter()
        .map(|m| SlicingCriterion::mem_at(m.pos, vec![m.tile]))
        .collect()
}

/// Builds syscall criteria: at every *output* syscall, the values it reads
/// (payload buffers and argument registers) are necessary, and the syscall
/// itself is part of the slice.
///
/// Input syscalls (e.g. `recvfrom`) are not criteria — their buffers only
/// become live if something downstream that is already necessary reads
/// them.
pub fn syscall_criteria(trace: &Trace) -> Criteria {
    let mut items = Vec::new();
    let cols = trace.columns();
    for idx in 0..cols.len() {
        if let InstrKind::Syscall { nr } = cols.kind(idx) {
            if !nr.is_output() {
                continue;
            }
            items.push(SlicingCriterion {
                pos: TracePos(idx as u64),
                mem: cols.mem_reads(idx).to_vec(),
                regs: cols.reg_reads(idx),
                include_instr: true,
            });
        }
    }
    Criteria::new(items)
}

/// Streamed variant of [`syscall_criteria`]: one forward pass over the
/// reader's segments, holding only the bounded chunk window in memory.
pub fn syscall_criteria_streamed<R: Read + Seek>(
    reader: &mut TraceReader<R>,
) -> Result<Criteria, TraceIoError> {
    let mut items = Vec::new();
    let n = reader.len();
    reader.stream_range(0, n, |cur| {
        for idx in cur.lo()..cur.hi() {
            if let InstrKind::Syscall { nr } = cur.kind(idx) {
                if !nr.is_output() {
                    continue;
                }
                items.push(SlicingCriterion {
                    pos: TracePos(idx as u64),
                    mem: cur.mem_reads(idx).to_vec(),
                    regs: cur.reg_reads(idx),
                    include_instr: true,
                });
            }
        }
    })?;
    Ok(Criteria::new(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::{site, Recorder, Region, Syscall, ThreadKind};

    #[test]
    fn pixel_criteria_follow_markers() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let t1 = rec.alloc(Region::PixelTile, 64);
        let t2 = rec.alloc(Region::PixelTile, 64);
        rec.marker(site!(), t1);
        rec.marker(site!(), t2);
        let trace = rec.finish();
        let c = pixel_criteria(&trace);
        assert_eq!(c.len(), 2);
        assert_eq!(c.items()[0].mem, vec![t1]);
        assert_eq!(c.items()[1].mem, vec![t2]);
        assert!(!c.items()[0].include_instr);
    }

    #[test]
    fn syscall_criteria_only_cover_output_calls() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let buf = rec.alloc(Region::Heap, 32);
        rec.syscall(site!(), Syscall::Sendto, &[], vec![buf], vec![]);
        rec.syscall(site!(), Syscall::Recvfrom, &[], vec![], vec![buf]);
        rec.syscall(site!(), Syscall::ClockGettime, &[], vec![], vec![buf]);
        let trace = rec.finish();
        let c = syscall_criteria(&trace);
        assert_eq!(c.len(), 1);
        assert_eq!(c.items()[0].mem, vec![buf]);
        assert!(c.items()[0].include_instr);
        assert!(!c.items()[0].regs.is_empty());
    }

    #[test]
    fn truncation_drops_later_criteria() {
        let items = vec![
            SlicingCriterion::mem_at(TracePos(5), vec![]),
            SlicingCriterion::mem_at(TracePos(10), vec![]),
            SlicingCriterion::mem_at(TracePos(20), vec![]),
        ];
        let c = Criteria::new(items);
        let t = c.truncated(TracePos(10));
        assert_eq!(t.len(), 2);
        assert!(t.items().iter().all(|i| i.pos <= TracePos(10)));
    }

    #[test]
    fn criteria_sorted_by_position() {
        let items = vec![
            SlicingCriterion::mem_at(TracePos(20), vec![]),
            SlicingCriterion::mem_at(TracePos(5), vec![]),
        ];
        let c = Criteria::new(items);
        assert!(c.items()[0].pos < c.items()[1].pos);
    }
}
