#![forbid(unsafe_code)]

//! Compositing and rasterization for the wasteprof browser: the layer
//! tree with per-layer backing stores, 256×256 tiling, rasterizer playback
//! of display lists into pixel buffers (with the paper's pixel-buffer
//! markers), occlusion-culled drawing, and presentation to the display.
//!
//! This is the last stage of the paper's rendering pipeline (Figure 1) and
//! the source of two of its waste findings: backing stores kept for layers
//! that are never shown, and prepainted tiles that are never scrolled to.

#![warn(missing_docs)]

mod compositor;

pub use compositor::{
    CompositedLayer, Compositor, CompositorConfig, DrawStats, RasterTask, Tile,
    RASTER_COST_DIVISOR, TILE_SIZE,
};
