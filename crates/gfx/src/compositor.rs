//! The compositor: layer tree, tiled backing stores, raster scheduling,
//! occlusion, draw, and present.
//!
//! This is the part of the pipeline the paper singles out (§II-B, §V-A):
//! Chromium gives *every* layer a backing store — "either when the layer is
//! visible or not" — and rasterizes beyond the viewport, so a constant
//! stream of compositor bookkeeping and some raster work never contributes
//! a pixel. The compositor's slice percentage is correspondingly low
//! (~34–35%) and website-independent. This module reproduces those
//! behaviours: per-frame priority/bookkeeping work per layer, blind backing
//! stores, a prepaint margin, occlusion-culled draws, and a `writev` to the
//! display at present time.

use wasteprof_layout::{LayerPaint, Rect};
use wasteprof_trace::{site, Addr, AddrRange, Recorder, Region, Syscall};

/// Tile edge length in pixels ("tiles are typically squares of 256×256
/// pixels" — paper §IV-B).
pub const TILE_SIZE: f32 = 256.0;

/// Default divisor converting rastered pixel area into ALU work
/// (`extra_ops = area / divisor`); see
/// [`CompositorConfig::raster_cost_divisor`].
pub const RASTER_COST_DIVISOR: u32 = 256;

/// One tile of a layer's backing store.
#[derive(Debug, Clone)]
pub struct Tile {
    /// Tile rectangle in page coordinates.
    pub rect: Rect,
    /// The pixel buffer (virtual memory, `PixelTile` region).
    pub buffer: AddrRange,
    /// Compositor bookkeeping cell for this tile (priority, resolution,
    /// raster queue state) — read by the raster setup, so the most recent
    /// bookkeeping pass before a raster becomes necessary.
    pub meta_cell: Addr,
    /// Fingerprint of the content last rastered into the buffer.
    pub content_fp: u64,
    /// Fingerprint of the currently committed content intersecting this
    /// tile (computed once per commit, compared every frame).
    pub target_fp: u64,
    /// True once the buffer holds current content.
    pub rastered: bool,
    /// True if a marker has been logged since the last raster.
    pub marked: bool,
}

/// A layer with its persistent backing store.
#[derive(Debug, Clone)]
pub struct CompositedLayer {
    /// Latest paint output from the main thread.
    pub paint: LayerPaint,
    /// Backing-store tiles covering the layer bounds.
    pub tiles: Vec<Tile>,
    /// Compositor-side bookkeeping cell (priorities, pinned state, ...).
    pub prop_cell: Addr,
    /// Committed content state (property-tree snapshot) read by raster
    /// playback, so commits feed the pixels of rastered layers.
    pub content_cell: Addr,
    /// True while a compositor-driven animation keeps this layer damaged
    /// every frame (carousels, progress bars).
    pub animating: bool,
    /// Animation step counter, salted into the content fingerprint.
    pub anim_step: u64,
}

/// A scheduled unit of raster work for a rasterizer thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasterTask {
    /// Index of the layer in the compositor's layer list.
    pub layer: usize,
    /// Index of the tile within the layer.
    pub tile: usize,
}

/// Statistics from one drawn frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrawStats {
    /// Tiles composited into the framebuffer.
    pub tiles_drawn: usize,
    /// Tiles skipped because an opaque layer above fully covers them.
    pub tiles_occluded: usize,
    /// Tiles skipped because they are outside the viewport.
    pub tiles_offscreen: usize,
}

/// Compositor configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompositorConfig {
    /// Viewport width in pixels.
    pub viewport_w: f32,
    /// Viewport height in pixels.
    pub viewport_h: f32,
    /// How far beyond the viewport tiles are eagerly rasterized
    /// (Chromium's prepaint); raster work in the margin that is never
    /// scrolled to is one of the paper's waste sources.
    pub prepaint_margin: f32,
    /// Divisor converting pixel area into raster/draw ALU work: smaller
    /// means rasterization costs more instructions per pixel.
    pub raster_cost_divisor: u32,
    /// Fixed command-processing overhead per raster task (decoding the
    /// display list, clip/transform stack churn) whose output is scratch
    /// state, not pixels - on tiny displays this dwarfs the useful pixel
    /// work (paper section V-A: mobile rasterizers at 13-14%).
    pub raster_task_overhead: u32,
}

impl CompositorConfig {
    /// Desktop defaults: 1366×768 with one viewport-height of prepaint.
    pub fn desktop() -> Self {
        CompositorConfig {
            viewport_w: 1366.0,
            viewport_h: 768.0,
            prepaint_margin: 768.0,
            raster_cost_divisor: RASTER_COST_DIVISOR,
            raster_task_overhead: 120,
        }
    }

    /// The paper's emulated mobile display: 360×640.
    pub fn mobile() -> Self {
        CompositorConfig {
            viewport_w: 360.0,
            viewport_h: 640.0,
            prepaint_margin: 1280.0,
            raster_cost_divisor: RASTER_COST_DIVISOR,
            raster_task_overhead: 120,
        }
    }
}

/// The compositor for one tab.
///
/// Methods must be called with the [`Recorder`] switched to the thread
/// doing the work: [`Compositor::commit`] on the main thread,
/// [`Compositor::prepare_frame`] / [`Compositor::draw`] on the compositor
/// thread, and [`Compositor::raster_task`] on a rasterizer thread — the
/// browser crate's scheduler arranges this.
#[derive(Debug)]
pub struct Compositor {
    config: CompositorConfig,
    layers: Vec<CompositedLayer>,
    scroll_y: f32,
    scroll_cell: Addr,
    order_cell: Addr,
    /// Frame timebase cell, written by the embedder's BeginFrame source
    /// and read by every drawn quad (frames are timestamped).
    frame_time_cell: Addr,
    frame: u64,
}

impl Compositor {
    /// Creates a compositor.
    pub fn new(rec: &mut Recorder, config: CompositorConfig) -> Self {
        Compositor {
            config,
            layers: Vec::new(),
            scroll_y: 0.0,
            scroll_cell: rec.alloc_cell(Region::Heap),
            order_cell: rec.alloc_cell(Region::Heap),
            frame_time_cell: rec.alloc_cell(Region::Heap),
            frame: 0,
        }
    }

    /// The frame timebase cell (the embedder's BeginFrame source writes
    /// it; drawn quads read it).
    pub fn frame_time_cell(&self) -> Addr {
        self.frame_time_cell
    }

    /// The configuration.
    pub fn config(&self) -> CompositorConfig {
        self.config
    }

    /// Current scroll offset.
    pub fn scroll_y(&self) -> f32 {
        self.scroll_y
    }

    /// Number of layers with backing stores.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layers (for inspection in tests and reports).
    pub fn layers(&self) -> &[CompositedLayer] {
        &self.layers
    }

    /// Frames drawn so far.
    pub fn frame_count(&self) -> u64 {
        self.frame
    }

    /// Total backing-store bytes held (the memory cost the paper notes
    /// Chromium "blindly accepts").
    pub fn backing_store_bytes(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.tiles.iter())
            .map(|t| t.buffer.len() as u64)
            .sum()
    }

    /// Main thread: pushes new paint output to the compositor.
    ///
    /// Every layer gets (or keeps) a backing store, visible or not.
    pub fn commit(&mut self, rec: &mut Recorder, mut new_paint: Vec<LayerPaint>) {
        let func = rec.intern_func("cc::LayerTreeHost::Commit");
        rec.in_func(site!(), func, |rec| {
            let mut kept: Vec<CompositedLayer> = Vec::new();
            for paint in new_paint.drain(..) {
                let existing = self
                    .layers
                    .iter()
                    .position(|l| l.paint.owner == paint.owner && l.paint.reason == paint.reason);
                let mut layer = match existing {
                    Some(i) => self.layers.remove(i),
                    None => CompositedLayer {
                        paint: paint.clone(),
                        tiles: Vec::new(),
                        prop_cell: rec.alloc_cell(Region::Heap),
                        content_cell: rec.alloc_cell(Region::Heap),
                        animating: false,
                        anim_step: 0,
                    },
                };
                // Commit copies the layer's properties and content state to
                // the compositor side, reading the style provenance and a
                // sample of the display list.
                let mut reads: Vec<AddrRange> = Vec::new();
                if let Some(c) = paint.style_cell {
                    reads.push(c.into());
                }
                rec.compute(site!(), &reads, &[layer.prop_cell.into()]);
                let mut content_reads: Vec<AddrRange> =
                    paint.items.iter().take(4).map(|i| i.cells).collect();
                content_reads.push(AddrRange::cell(layer.prop_cell));
                rec.compute_weighted(
                    site!(),
                    &content_reads,
                    &[layer.content_cell.into()],
                    2 + paint.items.len() as u32 / 4,
                );
                layer.retile(rec, &paint);
                layer.paint = paint;
                kept.push(layer);
            }
            // Layers that disappeared drop with their backing stores.
            self.layers = kept;
        });
    }

    /// Display-compositor BeginFrame bookkeeping: the frame source
    /// updates its deadline state (no telling namespace — part of the
    /// paper's uncategorized mass) and refreshes the frame timebase that
    /// the drawn quads read.
    pub fn begin_frame(&mut self, rec: &mut Recorder) {
        let f = rec.intern_func("viz::BeginFrameSource::OnBeginFrame");
        let frame_time = self.frame_time_cell;
        rec.in_func(site!(), f, |rec| {
            let state = rec.alloc_cell(Region::Heap);
            rec.compute_weighted(site!(), &[], &[state.into()], 30);
            rec.compute(site!(), &[state.into()], &[frame_time.into()]);
        });
    }

    /// Compositor thread: per-frame bookkeeping. Computes layer order,
    /// updates tile priorities, and schedules raster work for tiles in the
    /// interest area whose content changed.
    pub fn prepare_frame(&mut self, rec: &mut Recorder) -> Vec<RasterTask> {
        let func = rec.intern_func("cc::TileManager::PrepareTiles");
        let order_fn = rec.intern_func("cc::LayerTreeHostImpl::CalculateRenderSurfaceLayerList");
        let mut tasks = Vec::new();
        self.frame += 1;

        // Layer ordering: feeds the draw, so it is *useful* work.
        rec.in_func(site!(), order_fn, |rec| {
            let reads: Vec<AddrRange> = self
                .layers
                .iter()
                .map(|l| AddrRange::cell(l.prop_cell))
                .collect();
            rec.compute_weighted(
                site!(),
                &reads,
                &[self.order_cell.into()],
                self.layers.len() as u32 * 2,
            );
        });
        self.layers.sort_by_key(|l| l.paint.z_index);

        let interest = self.interest_area();
        rec.in_func(site!(), func, |rec| {
            for (li, layer) in self.layers.iter_mut().enumerate() {
                if layer.animating {
                    // A compositor-driven animation advances: the layer is
                    // damaged this frame.
                    layer.anim_step += 1;
                    rec.compute(
                        site!(),
                        &[AddrRange::cell(self.scroll_cell)],
                        &[AddrRange::cell(layer.content_cell)],
                    );
                }
                // Per-layer priority bookkeeping, every frame, whether or
                // not anything changed: a strong update, so only the pass
                // feeding an actual raster ever becomes necessary.
                rec.compute_weighted(
                    site!(),
                    &[AddrRange::cell(self.scroll_cell)],
                    &[AddrRange::cell(layer.prop_cell)],
                    1,
                );
                let anim_step = layer.anim_step;
                let mut far_tiles = 0u32;
                for (ti, tile) in layer.tiles.iter_mut().enumerate() {
                    let tile_rect = if layer.paint.fixed {
                        tile.rect
                    } else {
                        tile.rect.translated(0.0, -self.scroll_y)
                    };
                    let in_interest = tile_rect.intersects(&interest);
                    if !in_interest {
                        // Far-away tiles are skipped after a cheap eviction
                        // scan, batched below.
                        far_tiles += 1;
                        continue;
                    }
                    // Interest-area tile bookkeeping, per frame: read by
                    // the raster setup if this tile rasters before the
                    // next pass overwrites it.
                    rec.copy(
                        site!(),
                        AddrRange::cell(layer.prop_cell),
                        AddrRange::cell(tile.meta_cell),
                    );
                    // Raster invalidation is per tile: only tiles whose
                    // intersecting display items changed are re-rastered.
                    let fp = tile.target_fp ^ anim_step;
                    if !tile.rastered || tile.content_fp != fp {
                        tasks.push(RasterTask {
                            layer: li,
                            tile: ti,
                        });
                    }
                }
                if far_tiles > 0 {
                    rec.compute_weighted(
                        site!(),
                        &[AddrRange::cell(layer.prop_cell)],
                        &[AddrRange::cell(layer.prop_cell)],
                        far_tiles / 8,
                    );
                }
            }
        });
        tasks
    }

    /// Starts (or stops) a compositor-driven animation on the layer owned
    /// by `owner`: the layer is damaged on every frame, so its visible
    /// tiles re-raster continuously (a carousel or progress indicator).
    pub fn set_animating(&mut self, owner: Option<wasteprof_dom::NodeId>, on: bool) -> bool {
        for layer in &mut self.layers {
            if layer.paint.owner == owner {
                layer.animating = on;
                return true;
            }
        }
        false
    }

    /// Rasterizer thread: plays the layer's display items back into the
    /// tile's pixel buffer (`RasterBufferProvider::PlaybackToMemory`).
    pub fn raster_task(&mut self, rec: &mut Recorder, task: RasterTask) {
        let func = rec.intern_func("cc::RasterBufferProvider::PlaybackToMemory");
        let order_cell = self.order_cell;
        let scroll_cell = self.scroll_cell;
        let layer = &mut self.layers[task.layer];
        let fp = layer.tiles[task.tile].target_fp ^ layer.anim_step;
        let tile = &mut layer.tiles[task.tile];
        let overhead = self.config.raster_task_overhead;
        let skia = rec.intern_func("SkCanvas::PlaybackCommands");
        rec.in_func(site!(), func, |rec| {
            // Display-list decode and clip/transform bookkeeping inside the
            // 2D graphics library: reads the items but produces only
            // transient playback state, not pixels. Attributed to the Skia
            // analogue, which (like `sk` symbols in the paper's traces) has
            // no telling namespace and lands in the uncategorized mass.
            let scratch = rec.alloc_cell(Region::Heap);
            let item_reads: Vec<AddrRange> =
                layer.paint.items.iter().take(4).map(|i| i.cells).collect();
            rec.in_func(site!(), skia, |rec| {
                rec.compute_weighted(site!(), &item_reads, &[scratch.into()], overhead);
            });
            // Per-tile setup: playback settings derive from the committed
            // layer properties, the tile's scheduling state, the layer
            // order, and the scroll offset. The setup cost does not scale
            // with useful pixels (dominant on tiny mobile viewports).
            rec.compute_weighted(
                site!(),
                &[
                    AddrRange::cell(layer.prop_cell),
                    AddrRange::cell(tile.meta_cell),
                    AddrRange::cell(order_cell),
                    AddrRange::cell(scroll_cell),
                ],
                &[tile.buffer.slice(0, 64)],
                24,
            );
            // The per-command pixel work happens inside the 2D graphics
            // library (Skia's analogue): blending loops writing the tile.
            rec.in_func(site!(), skia, |rec| {
                for item in &layer.paint.items {
                    let Some(overlap) = item.rect.intersection(&tile.rect) else {
                        continue;
                    };
                    let area = overlap.area() as u32;
                    // Map the overlap onto a prefix slice of the linear
                    // tile buffer: a pixel-block-granular approximation of
                    // 2D rows.
                    let bytes = (area * 4).clamp(4, tile.buffer.len());
                    let y_off =
                        (((overlap.y - tile.rect.y) / TILE_SIZE) * tile.buffer.len() as f32) as u32;
                    let start = y_off.min(tile.buffer.len() - bytes);
                    rec.compute_weighted(
                        site!(),
                        &[item.cells, AddrRange::cell(layer.content_cell)],
                        &[tile.buffer.slice(start, bytes)],
                        area / self.config.raster_cost_divisor.max(1),
                    );
                }
            });
        });
        tile.rastered = true;
        tile.content_fp = fp;
        tile.marked = false;
    }

    /// Compositor thread: scroll input (handled entirely here — no main
    /// thread involvement, paper §V-A).
    pub fn scroll_by(&mut self, rec: &mut Recorder, dy: f32) {
        let func = rec.intern_func("cc::InputHandler::ScrollBy");
        rec.in_func(site!(), func, |rec| {
            let max = self.max_scroll();
            self.scroll_y = (self.scroll_y + dy).clamp(0.0, max);
            rec.compute(site!(), &[], &[self.scroll_cell.into()]);
        });
    }

    fn max_scroll(&self) -> f32 {
        let page_h = self
            .layers
            .iter()
            .map(|l| l.paint.bounds.bottom())
            .fold(self.config.viewport_h, f32::max);
        (page_h - self.config.viewport_h).max(0.0)
    }

    fn viewport(&self) -> Rect {
        Rect::new(0.0, 0.0, self.config.viewport_w, self.config.viewport_h)
    }

    fn interest_area(&self) -> Rect {
        let m = self.config.prepaint_margin;
        Rect::new(
            0.0,
            -m,
            self.config.viewport_w,
            self.config.viewport_h + 2.0 * m,
        )
    }

    /// Compositor thread: draws visible, unoccluded tiles into a fresh
    /// framebuffer and presents it to the display with `writev`.
    ///
    /// Tiles composited for the first time since their raster get the
    /// pixel-buffer marker: this is the program point at which their buffer
    /// provably holds final displayed pixel values.
    pub fn draw(&mut self, rec: &mut Recorder) -> DrawStats {
        self.draw_inner(rec, false)
    }

    /// Like [`Compositor::draw`], but only submits *damaged* tiles (those
    /// rastered since the last draw) — the partial-swap path animation
    /// frames take.
    pub fn draw_damage(&mut self, rec: &mut Recorder) -> DrawStats {
        self.draw_inner(rec, true)
    }

    fn draw_inner(&mut self, rec: &mut Recorder, damage_only: bool) -> DrawStats {
        let func = rec.intern_func("cc::Display::DrawAndSwap");
        let viewport = self.viewport();
        let mut stats = DrawStats::default();

        // Opaque occluders in *screen* coordinates, from topmost down.
        let occluders: Vec<(usize, Rect)> = self
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.paint.opaque)
            .map(|(i, l)| (i, self.screen_rect(l, l.paint.bounds)))
            .collect();

        // First pass: decide which tiles draw this frame.
        let mut quads: Vec<(usize, usize, u32)> = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            for (ti, tile) in layer.tiles.iter().enumerate() {
                if !tile.rastered || (damage_only && tile.marked) {
                    continue;
                }
                let screen = self.screen_rect(layer, tile.rect);
                let Some(visible) = screen.intersection(&viewport) else {
                    stats.tiles_offscreen += 1;
                    continue;
                };
                // Occlusion: fully covered by an opaque layer above?
                let occluded = occluders.iter().any(|(oi, orect)| {
                    let above = self.layers[*oi].paint.z_index > layer.paint.z_index
                        || (*oi > li && self.layers[*oi].paint.z_index == layer.paint.z_index);
                    above && orect.contains_rect(&visible)
                });
                if occluded {
                    stats.tiles_occluded += 1;
                    continue;
                }
                let bytes = ((visible.area() * 4.0) as u32).clamp(4, tile.buffer.len());
                quads.push((li, ti, bytes));
            }
        }

        // The frame buffer holds every quad's pixels: each quad owns a
        // disjoint region (screen pixels belong to exactly one drawn quad).
        // Sum in u64: thousands of stacked layers can exceed u32 bytes, in
        // which case the later quads alias the clamped buffer's tail.
        let fb_len: u32 = quads
            .iter()
            .map(|&(_, _, b)| b as u64)
            .sum::<u64>()
            .clamp(4, u32::MAX as u64) as u32;
        let fb = rec.alloc(Region::Framebuffer, fb_len);
        let mut fb_off = 0u32;
        let mut marks: Vec<(usize, usize)> = Vec::new();

        rec.in_func(site!(), func, |rec| {
            for &(li, ti, bytes) in &quads {
                let tile = &self.layers[li].tiles[ti];
                if !tile.marked {
                    marks.push((li, ti));
                }
                // Draw quad: framebuffer derives from the tile pixels and
                // the layer order.
                let dst = fb.slice(fb_off.min(fb_len - bytes.min(fb_len)), bytes.min(fb_len));
                fb_off = fb_off.saturating_add(bytes).min(fb_len);
                rec.compute_weighted(
                    site!(),
                    &[
                        tile.buffer,
                        AddrRange::cell(self.order_cell),
                        AddrRange::cell(self.frame_time_cell),
                    ],
                    &[dst],
                    6,
                );
                stats.tiles_drawn += 1;
            }
        });

        // Markers: these tiles now provably contain displayed pixels, and
        // so does the assembled framebuffer (the "final values of pixels
        // that are going to be put on the device display", section IV-B).
        for (li, ti) in marks {
            let buffer = self.layers[li].tiles[ti].buffer;
            rec.marker(site!(), buffer);
            self.layers[li].tiles[ti].marked = true;
        }
        if stats.tiles_drawn > 0 {
            rec.marker(site!(), fb);
        }

        // Present: the framebuffer leaves the process through the display
        // fd — the syscall criteria's anchor for visual output.
        let fd_cell = rec.alloc_cell(Region::Heap);
        rec.syscall(
            site!(),
            Syscall::Writev,
            &[fd_cell.into()],
            vec![fb],
            vec![],
        );
        stats
    }

    fn screen_rect(&self, layer: &CompositedLayer, rect: Rect) -> Rect {
        if layer.paint.fixed {
            rect
        } else {
            rect.translated(0.0, -self.scroll_y)
        }
    }
}

impl CompositedLayer {
    /// (Re)allocates the tile grid to cover the layer bounds, keeping
    /// existing backing stores where the grid is unchanged.
    fn retile(&mut self, rec: &mut Recorder, paint: &LayerPaint) {
        let needed = tile_grid(paint.bounds);
        let grid_unchanged = self.tiles.len() == needed.len()
            && self.tiles.iter().zip(&needed).all(|(t, r)| t.rect == *r);
        if !grid_unchanged {
            self.tiles = needed
                .into_iter()
                .map(|rect| Tile {
                    rect,
                    buffer: rec.alloc(Region::PixelTile, (TILE_SIZE * TILE_SIZE * 4.0) as u32),
                    meta_cell: rec.alloc_cell(Region::Heap),
                    content_fp: 0,
                    target_fp: 0,
                    rastered: false,
                    marked: false,
                })
                .collect();
        }
        // Commit-time invalidation keys: one O(items) pass per tile here,
        // so the per-frame scheduling check is a plain comparison.
        for tile in &mut self.tiles {
            tile.target_fp = tile_fingerprint(paint, tile.rect);
        }
    }
}

/// Content fingerprint of the display items intersecting one tile — the
/// per-tile raster invalidation key.
fn tile_fingerprint(paint: &LayerPaint, tile_rect: Rect) -> u64 {
    let mut h = wasteprof_layout::Fnv::new();
    for item in &paint.items {
        if !item.rect.intersects(&tile_rect) {
            continue;
        }
        h.mix_rect(&item.rect);
        h.mix_color(item.color);
        h.mix(item.cells.len() as u64);
    }
    h.finish()
}

/// The tile rectangles covering `bounds`, aligned to the tile grid.
fn tile_grid(bounds: Rect) -> Vec<Rect> {
    if bounds.is_empty() {
        return Vec::new();
    }
    // Backing stores are finite even for hostile page geometry (a CSS
    // `height: 1e11px` must not allocate a tile per 256px of it). Chromium
    // likewise caps tilings; 256x256 tiles is a 65536x65536-px layer.
    const MAX_TILES_PER_AXIS: i32 = 256;
    let x0 = (bounds.x / TILE_SIZE).floor() as i32;
    let y0 = (bounds.y / TILE_SIZE).floor() as i32;
    let x1 =
        ((bounds.right() / TILE_SIZE).ceil() as i32).min(x0.saturating_add(MAX_TILES_PER_AXIS));
    let y1 =
        ((bounds.bottom() / TILE_SIZE).ceil() as i32).min(y0.saturating_add(MAX_TILES_PER_AXIS));
    let mut out = Vec::new();
    for ty in y0..y1 {
        for tx in x0..x1 {
            out.push(Rect::new(
                tx as f32 * TILE_SIZE,
                ty as f32 * TILE_SIZE,
                TILE_SIZE,
                TILE_SIZE,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_css::Color;
    use wasteprof_layout::{DisplayItem, ItemKind, LayerReason};
    use wasteprof_trace::{Recorder, ThreadKind};

    fn test_layer(rec: &mut Recorder, bounds: Rect, z: i32, opaque: bool) -> LayerPaint {
        let cells = rec.alloc(Region::Heap, 16);
        LayerPaint {
            owner: Some(wasteprof_dom::NodeId((z + 100) as u32)),
            reason: LayerReason::ZIndex,
            bounds,
            z_index: z,
            fixed: false,
            opacity: 1.0,
            opaque,
            items: vec![DisplayItem {
                kind: ItemKind::Rect,
                rect: bounds,
                color: if opaque {
                    Color::WHITE
                } else {
                    Color::TRANSPARENT
                },
                cells,
            }],
            style_cell: None,
        }
    }

    fn setup() -> (Recorder, Compositor) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Compositor, "cc::CompositorMain");
        let comp = Compositor::new(
            &mut rec,
            CompositorConfig {
                viewport_w: 512.0,
                viewport_h: 512.0,
                prepaint_margin: 256.0,
                raster_cost_divisor: 1024,
                raster_task_overhead: 16,
            },
        );
        (rec, comp)
    }

    #[test]
    fn tile_grid_covers_bounds() {
        let tiles = tile_grid(Rect::new(0.0, 0.0, 600.0, 300.0));
        assert_eq!(tiles.len(), 3 * 2);
        let grid_union = tiles.iter().fold(Rect::default(), |a, t| a.union(t));
        assert!(grid_union.contains_rect(&Rect::new(0.0, 0.0, 600.0, 300.0)));
    }

    #[test]
    fn commit_creates_backing_stores_for_all_layers() {
        let (mut rec, mut comp) = setup();
        let visible = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), 0, true);
        let hidden_under = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), -1, false);
        comp.commit(&mut rec, vec![visible, hidden_under]);
        assert_eq!(comp.layer_count(), 2);
        // Even the occluded layer holds backing-store memory.
        assert!(comp.backing_store_bytes() >= 2 * 4 * (TILE_SIZE * TILE_SIZE * 4.0) as u64);
    }

    #[test]
    fn prepare_schedules_raster_only_in_interest_area() {
        let (mut rec, mut comp) = setup();
        // Tall layer: 512 wide, 4096 tall -> 2x16 tiles; interest covers
        // y in [-256, 1024) -> 4 tile rows + the page top rows.
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 4096.0), 0, true);
        comp.commit(&mut rec, vec![layer]);
        let tasks = comp.prepare_frame(&mut rec);
        let total_tiles = 2 * 16;
        assert!(
            tasks.len() < total_tiles,
            "prepaint should not cover the whole page"
        );
        // Interest area = viewport (512) + prepaint margin (256): rows with
        // y < 768, i.e. 3 rows of 2 tiles.
        assert_eq!(tasks.len(), 2 * 3);
    }

    #[test]
    fn raster_marks_content_current_and_is_not_repeated() {
        let (mut rec, mut comp) = setup();
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), 0, true);
        comp.commit(&mut rec, vec![layer.clone()]);
        let tasks = comp.prepare_frame(&mut rec);
        assert_eq!(tasks.len(), 4);
        for t in &tasks {
            comp.raster_task(&mut rec, *t);
        }
        // Second frame with unchanged content: nothing to raster.
        assert!(comp.prepare_frame(&mut rec).is_empty());
        // Changed content: re-raster.
        let mut changed = layer;
        changed.items[0].color = Color::rgb(1, 2, 3);
        comp.commit(&mut rec, vec![changed]);
        assert_eq!(comp.prepare_frame(&mut rec).len(), 4);
    }

    #[test]
    fn draw_emits_markers_only_for_displayed_tiles() {
        let (mut rec, mut comp) = setup();
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 2048.0), 0, true);
        comp.commit(&mut rec, vec![layer]);
        let tasks = comp.prepare_frame(&mut rec);
        for t in &tasks {
            comp.raster_task(&mut rec, *t);
        }
        let stats = comp.draw(&mut rec);
        assert_eq!(stats.tiles_drawn, 4); // 2x2 tiles fill the 512x512 viewport
        assert!(stats.tiles_offscreen > 0);
        let trace = rec.finish();
        // 4 tile markers + 1 framebuffer marker.
        assert_eq!(trace.markers().len(), 5);
    }

    #[test]
    fn occluded_tiles_are_rastered_but_not_drawn_or_marked() {
        let (mut rec, mut comp) = setup();
        let below = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), 0, false);
        let above = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), 10, true);
        comp.commit(&mut rec, vec![below, above]);
        let tasks = comp.prepare_frame(&mut rec);
        assert_eq!(
            tasks.len(),
            8,
            "both layers rastered (blind backing stores)"
        );
        for t in &tasks {
            comp.raster_task(&mut rec, *t);
        }
        let stats = comp.draw(&mut rec);
        assert_eq!(stats.tiles_occluded, 4);
        assert_eq!(stats.tiles_drawn, 4);
        let trace = rec.finish();
        // 4 visible tiles + the framebuffer; occluded tiles unmarked.
        assert_eq!(
            trace.markers().len(),
            5,
            "only the visible layer's tiles marked"
        );
    }

    #[test]
    fn scroll_is_compositor_only_and_reveals_tiles() {
        let (mut rec, mut comp) = setup();
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 2048.0), 0, true);
        comp.commit(&mut rec, vec![layer]);
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        comp.draw(&mut rec);
        comp.scroll_by(&mut rec, 600.0);
        assert_eq!(comp.scroll_y(), 600.0);
        // New frame: tiles already prepainted; draw shows new rows; newly
        // displayed tiles get their markers now.
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        let before = comp.layers()[0].tiles.iter().filter(|t| t.marked).count();
        comp.draw(&mut rec);
        let after = comp.layers()[0].tiles.iter().filter(|t| t.marked).count();
        assert!(
            after > before,
            "scrolled-in tiles must be marked at first display"
        );
    }

    #[test]
    fn scroll_clamps_to_page() {
        let (mut rec, mut comp) = setup();
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 1000.0), 0, true);
        comp.commit(&mut rec, vec![layer]);
        comp.scroll_by(&mut rec, 10_000.0);
        assert_eq!(comp.scroll_y(), 1000.0 - 512.0);
        comp.scroll_by(&mut rec, -20_000.0);
        assert_eq!(comp.scroll_y(), 0.0);
    }

    #[test]
    fn fixed_layers_ignore_scroll() {
        let (mut rec, mut comp) = setup();
        let mut fixed = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 256.0), 5, true);
        fixed.fixed = true;
        let page = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 4096.0), 0, true);
        comp.commit(&mut rec, vec![page, fixed]);
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        comp.draw(&mut rec);
        comp.scroll_by(&mut rec, 1000.0);
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        let stats = comp.draw(&mut rec);
        // The fixed bar still draws its 2 tiles at the top.
        assert!(stats.tiles_drawn >= 4 + 2);
    }

    #[test]
    fn draw_present_issues_writev() {
        let (mut rec, mut comp) = setup();
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), 0, true);
        comp.commit(&mut rec, vec![layer]);
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        comp.draw(&mut rec);
        let trace = rec.finish();
        use wasteprof_trace::InstrKind;
        let writev = trace
            .iter()
            .filter(|i| {
                matches!(
                    i.kind,
                    InstrKind::Syscall {
                        nr: Syscall::Writev
                    }
                )
            })
            .count();
        assert_eq!(writev, 1);
        // The writev reads the framebuffer region.
        let sys = trace
            .iter()
            .find(|i| {
                matches!(
                    i.kind,
                    InstrKind::Syscall {
                        nr: Syscall::Writev
                    }
                )
            })
            .unwrap();
        assert!(sys
            .mem_reads()
            .iter()
            .any(|r| r.start().region() == Some(Region::Framebuffer)));
    }

    #[test]
    fn backing_stores_survive_identical_commits() {
        let (mut rec, mut comp) = setup();
        let layer = test_layer(&mut rec, Rect::new(0.0, 0.0, 512.0, 512.0), 0, true);
        comp.commit(&mut rec, vec![layer.clone()]);
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        let buf_before = comp.layers()[0].tiles[0].buffer;
        comp.commit(&mut rec, vec![layer]);
        assert_eq!(comp.layers()[0].tiles[0].buffer, buf_before);
        assert!(comp.layers()[0].tiles[0].rastered, "raster result kept");
    }
}
