//! Property-based tests for the compositor's tiling, occlusion, and
//! marker discipline.

use proptest::prelude::*;
use wasteprof_css::Color;
use wasteprof_gfx::{Compositor, CompositorConfig, TILE_SIZE};
use wasteprof_layout::{DisplayItem, ItemKind, LayerPaint, LayerReason, Rect};
use wasteprof_trace::{InstrKind, Recorder, Region, ThreadKind};

fn layer(rec: &mut Recorder, bounds: Rect, z: i32, opaque: bool, ord: u32) -> LayerPaint {
    let cells = rec.alloc(Region::Heap, 16);
    LayerPaint {
        owner: Some(wasteprof_dom::NodeId(ord + 1)),
        reason: LayerReason::ZIndex,
        bounds,
        z_index: z,
        fixed: false,
        opacity: 1.0,
        opaque,
        items: vec![DisplayItem {
            kind: ItemKind::Rect,
            rect: bounds,
            color: if opaque {
                Color::WHITE
            } else {
                Color::TRANSPARENT
            },
            cells,
        }],
        style_cell: None,
    }
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u32..4, 0u32..8, 1u32..4, 1u32..6).prop_map(|(x, y, w, h)| {
        Rect::new(
            x as f32 * 100.0,
            y as f32 * 100.0,
            w as f32 * 120.0,
            h as f32 * 120.0,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiles_cover_layer_bounds_and_marks_only_follow_draws(
        rects in proptest::collection::vec(arb_rect(), 1..4),
        scroll in 0u32..8,
    ) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Compositor, "cc");
        let mut comp = Compositor::new(
            &mut rec,
            CompositorConfig {
                viewport_w: 512.0,
                viewport_h: 512.0,
                prepaint_margin: 256.0,
                raster_cost_divisor: 2048,
                raster_task_overhead: 4,
            },
        );
        let layers: Vec<LayerPaint> = rects
            .iter()
            .enumerate()
            .map(|(i, &r)| layer(&mut rec, r, i as i32, i % 2 == 0, i as u32))
            .collect();
        comp.commit(&mut rec, layers);

        // Tiling covers every layer's bounds.
        for l in comp.layers() {
            if l.paint.bounds.is_empty() {
                continue;
            }
            let union = l
                .tiles
                .iter()
                .fold(Rect::default(), |acc, t| acc.union(&t.rect));
            prop_assert!(union.contains_rect(&l.paint.bounds));
            // Tiles are tile-aligned and tile-sized.
            for t in &l.tiles {
                prop_assert_eq!(t.rect.w, TILE_SIZE);
                prop_assert_eq!(t.rect.h, TILE_SIZE);
                prop_assert_eq!(t.rect.x % TILE_SIZE, 0.0);
            }
        }

        comp.scroll_by(&mut rec, scroll as f32 * 64.0);
        for t in comp.prepare_frame(&mut rec) {
            comp.raster_task(&mut rec, t);
        }
        let stats = comp.draw(&mut rec);
        let trace = rec.finish();
        prop_assert_eq!(trace.validate(), Ok(()));

        // Marker count == drawn tiles (+1 framebuffer marker when anything
        // drew); markers only exist for rastered tiles.
        let markers = trace.markers().len();
        if stats.tiles_drawn > 0 {
            prop_assert_eq!(markers, stats.tiles_drawn + 1);
        } else {
            prop_assert_eq!(markers, 0);
        }

        // Occluded + drawn + offscreen accounts for every rastered tile.
        let rastered: usize =
            comp.layers().iter().flat_map(|l| &l.tiles).filter(|t| t.rastered).count();
        prop_assert_eq!(
            stats.tiles_drawn + stats.tiles_occluded + stats.tiles_offscreen,
            rastered
        );

        // Exactly one present syscall per draw.
        let writevs = trace
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Syscall { nr: wasteprof_trace::Syscall::Writev }))
            .count();
        prop_assert_eq!(writevs, 1);
    }
}
