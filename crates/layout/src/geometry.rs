//! Basic geometry types for layout and painting.

use std::fmt;

/// An axis-aligned rectangle in page coordinates (CSS pixels).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Rect {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl Rect {
    /// A rectangle from position and size.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Rect {
        Rect { x, y, w, h }
    }

    /// Right edge.
    pub fn right(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f32 {
        self.y + self.h
    }

    /// Area in square pixels.
    pub fn area(&self) -> f32 {
        self.w.max(0.0) * self.h.max(0.0)
    }

    /// True if width or height is not positive.
    pub fn is_empty(&self) -> bool {
        self.w <= 0.0 || self.h <= 0.0
    }

    /// True if the rectangles share area.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        Some(Rect {
            x,
            y,
            w: self.right().min(other.right()) - x,
            h: self.bottom().min(other.bottom()) - y,
        })
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        Rect {
            x,
            y,
            w: self.right().max(other.right()) - x,
            h: self.bottom().max(other.bottom()) - y,
        }
    }

    /// True if `self` fully covers `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x <= other.x
            && self.y <= other.y
            && self.right() >= other.right()
            && self.bottom() >= other.bottom()
    }

    /// The rectangle shifted by `(dx, dy)`.
    pub fn translated(&self, dx: f32, dy: f32) -> Rect {
        Rect {
            x: self.x + dx,
            y: self.y + dy,
            ..*self
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}) {}x{}", self.x, self.y, self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 10.0, 10.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(5.0, 5.0, 5.0, 5.0));
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 15.0, 15.0));
    }

    #[test]
    fn disjoint_rects() {
        let a = Rect::new(0.0, 0.0, 5.0, 5.0);
        let b = Rect::new(6.0, 0.0, 5.0, 5.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn containment() {
        let big = Rect::new(0.0, 0.0, 100.0, 100.0);
        let small = Rect::new(10.0, 10.0, 5.0, 5.0);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.contains_rect(&big));
    }

    #[test]
    fn empty_rects_never_intersect() {
        let e = Rect::new(0.0, 0.0, 0.0, 10.0);
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(!e.intersects(&a));
        assert!(e.is_empty());
    }

    #[test]
    fn translate() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.translated(10.0, 20.0), Rect::new(11.0, 22.0, 3.0, 4.0));
    }
}
