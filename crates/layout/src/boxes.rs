//! Render tree construction and box layout (the Layout stage of Figure 1).
//!
//! The render tree keeps only nodes with visual context (paper §II-A);
//! layout then computes "the exact position and size of different
//! elements". Block boxes stack vertically; text is broken into line boxes
//! with a deterministic character-width metric; `relative`, `absolute`, and
//! `fixed` positioning and z-index stacking are supported because the
//! paper's compositing analysis depends on overlapping layers existing.

use wasteprof_css::{edge, ComputedStyle, Display, Length, Position, StyleMap};
use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{site, Addr, AddrRange, Recorder, Region};

use crate::geometry::Rect;

/// Width of one character as a fraction of the font size (a deterministic
/// text metric standing in for font shaping).
pub const CHAR_WIDTH_FACTOR: f32 = 0.5;

/// Index of a box in the box tree arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BoxId(pub u32);

impl BoxId {
    /// Dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a layout box represents.
#[derive(Debug, Clone, PartialEq)]
pub enum BoxKind {
    /// A block-level element box.
    Block,
    /// An inline or inline-block element box.
    Inline,
    /// A run of text, already broken into lines.
    Text {
        /// `(line rect, number of characters)` per line box.
        lines: Vec<(Rect, u32)>,
    },
}

/// One box of the layout tree.
#[derive(Debug, Clone)]
pub struct LayoutBox {
    /// The DOM node this box was generated for.
    pub node: NodeId,
    /// Box kind.
    pub kind: BoxKind,
    /// Border-box rectangle in page coordinates.
    pub rect: Rect,
    /// Children in paint order.
    pub children: Vec<BoxId>,
    /// Computed style of the generating element (text boxes carry their
    /// parent's style).
    pub style: ComputedStyle,
    /// Trace cell holding the box geometry.
    pub geom_cell: Addr,
}

/// The laid-out box tree for a document.
#[derive(Debug, Clone)]
pub struct BoxTree {
    boxes: Vec<LayoutBox>,
    root: BoxId,
    /// Total page height (can exceed the viewport: offscreen content).
    pub page_height: f32,
    /// Viewport width the layout was computed for.
    pub viewport_width: f32,
}

impl BoxTree {
    /// The root box.
    pub fn root(&self) -> BoxId {
        self.root
    }

    /// Box data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: BoxId) -> &LayoutBox {
        &self.boxes[id.index()]
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True if the tree has no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Iterates over all box ids in creation (pre-)order.
    pub fn ids(&self) -> impl Iterator<Item = BoxId> {
        (0..self.boxes.len() as u32).map(BoxId)
    }

    /// Finds the box generated for a DOM node, if any.
    pub fn box_for_node(&self, node: NodeId) -> Option<BoxId> {
        self.ids().find(|&b| {
            self.get(b).node == node && !matches!(self.get(b).kind, BoxKind::Text { .. })
        })
    }

    /// Hit test: the topmost box containing the point, in paint order —
    /// higher effective `z-index` wins, then later document order.
    pub fn hit_test(&self, x: f32, y: f32) -> Option<BoxId> {
        if self.boxes.is_empty() {
            return None;
        }
        let mut best: Option<(i32, u32, BoxId)> = None;
        let mut seq = 0u32;
        // Pre-order DFS carrying the effective z (nearest self-or-ancestor
        // z-index), mirroring the painter's layer sort.
        let mut stack = vec![(self.root, 0i32)];
        while let Some((id, inherited_z)) = stack.pop() {
            let b = self.get(id);
            let z = b.style.z_index.unwrap_or(inherited_z);
            let r = &b.rect;
            if x >= r.x && x < r.right() && y >= r.y && y < r.bottom() {
                let key = (z, seq);
                if best.map(|(bz, bs, _)| key >= (bz, bs)).unwrap_or(true) {
                    best = Some((z, seq, id));
                }
            }
            seq += 1;
            for &c in b.children.iter().rev() {
                stack.push((c, z));
            }
        }
        best.map(|(_, _, id)| id)
    }
}

/// Lays out the document: builds the render tree (dropping `display:none`
/// subtrees and non-visual elements) and computes box geometry.
///
/// Every box-geometry write reads the element's style cells and the parent
/// geometry, extending the pixels-dataflow chain.
pub fn layout_document(
    rec: &mut Recorder,
    doc: &Document,
    styles: &StyleMap,
    viewport_width: f32,
    viewport_height: f32,
) -> BoxTree {
    let func = rec.intern_func("blink::layout::LayoutTree");
    rec.in_func(site!(), func, |rec| {
        let mut ctx = LayoutCtx {
            rec,
            doc,
            styles,
            boxes: Vec::new(),
            viewport_height,
            prev_sibling_geom: None,
        };
        let root_style = ComputedStyle::initial();
        let geom_cell = ctx.rec.alloc_cell(Region::Heap);
        let root_id = BoxId(0);
        ctx.boxes.push(LayoutBox {
            node: doc.root(),
            kind: BoxKind::Block,
            rect: Rect::new(0.0, 0.0, viewport_width, 0.0),
            children: Vec::new(),
            style: root_style,
            geom_cell,
        });
        // Build and lay out children of the root.
        let mut cursor_y = 0.0f32;
        for child in &doc.node(doc.root()).children {
            if let Some(b) =
                ctx.build_and_layout(*child, root_id, 0.0, cursor_y, viewport_width, 16.0)
            {
                let child_style = &ctx.boxes[b.index()].style;
                let out_of_flow =
                    matches!(child_style.position, Position::Absolute | Position::Fixed);
                if !out_of_flow {
                    cursor_y = ctx.boxes[b.index()].rect.bottom()
                        + resolve(child_style.margin[edge::BOTTOM], viewport_width, 16.0);
                }
                ctx.boxes[root_id.index()].children.push(b);
            }
        }
        let page_height = cursor_y.max(viewport_height);
        ctx.boxes[root_id.index()].rect.h = page_height;
        BoxTree {
            boxes: ctx.boxes,
            root: root_id,
            page_height,
            viewport_width,
        }
    })
}

fn resolve(l: Length, containing: f32, font: f32) -> f32 {
    l.resolve(containing, font, 0.0)
}

struct LayoutCtx<'a> {
    rec: &'a mut Recorder,
    doc: &'a Document,
    styles: &'a StyleMap,
    boxes: Vec<LayoutBox>,
    viewport_height: f32,
    /// Geometry cell of the most recently laid-out box — the preceding
    /// in-flow sibling dependence of block stacking.
    prev_sibling_geom: Option<Addr>,
}

/// Element tags that generate no boxes.
const NON_VISUAL: &[&str] = &[
    "head", "script", "style", "link", "meta", "title", "base", "noscript",
];

impl LayoutCtx<'_> {
    /// Builds the box subtree for `node` and lays it out with its top-left
    /// content corner at `(x, y)` inside a containing block `containing_w`
    /// wide. Returns `None` when the node generates no box.
    #[allow(clippy::too_many_arguments)]
    fn build_and_layout(
        &mut self,
        node: NodeId,
        parent: BoxId,
        x: f32,
        y: f32,
        containing_w: f32,
        parent_font: f32,
    ) -> Option<BoxId> {
        let prev_sibling = self.prev_sibling_geom.take();
        let n = self.doc.node(node);
        if let Some(tag) = n.tag() {
            if NON_VISUAL.contains(&tag) {
                return None;
            }
        }
        if n.is_text() {
            return self.layout_text(node, x, y, containing_w, parent_font);
        }
        if !n.is_element() {
            return None;
        }
        let style = self.styles.style(node).cloned().unwrap_or_default();
        if style.display == Display::None {
            return None;
        }

        let font = style.font_size;
        let ml = resolve(style.margin[edge::LEFT], containing_w, font);
        let mr = resolve(style.margin[edge::RIGHT], containing_w, font);
        let mt = resolve(style.margin[edge::TOP], containing_w, font);
        let pl = resolve(style.padding[edge::LEFT], containing_w, font);
        let pr = resolve(style.padding[edge::RIGHT], containing_w, font);
        let pt = resolve(style.padding[edge::TOP], containing_w, font);
        let pb = resolve(style.padding[edge::BOTTOM], containing_w, font);
        let bw = style.border_width;

        // Border-box width.
        let width = match style.width {
            Length::Auto => (containing_w - ml - mr).max(0.0),
            w => resolve(w, containing_w, font) + pl + pr + 2.0 * bw,
        };

        let geom_cell = self.rec.alloc_cell(Region::Heap);
        let id = BoxId(self.boxes.len() as u32);
        self.boxes.push(LayoutBox {
            node,
            kind: if style.display == Display::Inline {
                BoxKind::Inline
            } else {
                BoxKind::Block
            },
            rect: Rect::new(x + ml, y + mt, width, 0.0),
            children: Vec::new(),
            style: style.clone(),
            geom_cell,
        });

        // Lay out children inside the content box. Consecutive
        // inline-block children with resolvable widths pack into rows and
        // wrap (card grids); everything else stacks as blocks.
        let content_x = x + ml + bw + pl;
        let content_w = (width - pl - pr - 2.0 * bw).max(0.0);
        let mut cursor_y = y + mt + bw + pt;
        let mut cursor_x = content_x;
        let mut row_h = 0.0f32;
        // Iterate by index: `doc` is a shared reference so the children
        // list cannot change, and cloning it per box is pure allocation.
        let n_children = self.doc.node(node).children.len();
        for ci in 0..n_children {
            let child = self.doc.node(node).children[ci];
            // Decide flow mode from the child's own style before layout.
            let inline_w = self
                .styles
                .style(child)
                .filter(|st| {
                    matches!(st.display, Display::InlineBlock | Display::Inline)
                        && matches!(st.position, Position::Static | Position::Relative)
                })
                .and_then(|st| match st.width {
                    Length::Auto => None,
                    w => Some(
                        resolve(w, content_w, st.font_size)
                            + resolve(st.margin[edge::LEFT], content_w, st.font_size)
                            + resolve(st.margin[edge::RIGHT], content_w, st.font_size),
                    ),
                });
            if let Some(advance) = inline_w {
                if cursor_x + advance > content_x + content_w && cursor_x > content_x {
                    // Wrap to the next row.
                    cursor_y += row_h;
                    cursor_x = content_x;
                    row_h = 0.0;
                }
                if let Some(b) =
                    self.build_and_layout(child, id, cursor_x, cursor_y, content_w, font)
                {
                    self.prev_sibling_geom = Some(self.boxes[b.index()].geom_cell);
                    let bx = self.boxes[b.index()].rect;
                    let mb = resolve(
                        self.boxes[b.index()].style.margin[edge::BOTTOM],
                        content_w,
                        font,
                    );
                    cursor_x += advance.max(bx.w);
                    row_h = row_h.max(bx.h + mb + (bx.y - cursor_y).max(0.0));
                    self.boxes[id.index()].children.push(b);
                }
                continue;
            }
            // Block-level child: flush any open inline row first.
            if cursor_x > content_x {
                cursor_y += row_h;
                cursor_x = content_x;
                row_h = 0.0;
            }
            if let Some(b) = self.build_and_layout(child, id, content_x, cursor_y, content_w, font)
            {
                self.prev_sibling_geom = Some(self.boxes[b.index()].geom_cell);
                let child_style = &self.boxes[b.index()].style;
                let out_of_flow =
                    matches!(child_style.position, Position::Absolute | Position::Fixed);
                if !out_of_flow {
                    cursor_y = self.boxes[b.index()].rect.bottom()
                        + resolve(child_style.margin[edge::BOTTOM], content_w, font);
                }
                self.boxes[id.index()].children.push(b);
            }
        }
        if cursor_x > content_x {
            cursor_y += row_h;
        }

        // Border-box height.
        let content_h = cursor_y - (y + mt + bw + pt);
        let height = match style.height {
            Length::Auto => content_h + pt + pb + 2.0 * bw,
            h => resolve(h, self.viewport_height, font) + pt + pb + 2.0 * bw,
        };
        self.boxes[id.index()].rect.h = height.max(0.0);

        // Positioning schemes.
        match style.position {
            Position::Relative => {
                let dx = resolve_offset(
                    style.offsets[edge::LEFT],
                    style.offsets[edge::RIGHT],
                    containing_w,
                    font,
                );
                let dy = resolve_offset(
                    style.offsets[edge::TOP],
                    style.offsets[edge::BOTTOM],
                    self.viewport_height,
                    font,
                );
                self.shift_subtree(id, dx, dy);
            }
            Position::Absolute | Position::Fixed => {
                // Positioned against the viewport (the simulated page keeps
                // positioned ancestors at the viewport origin).
                let bx = self.boxes[id.index()].rect;
                let nx = match (style.offsets[edge::LEFT], style.offsets[edge::RIGHT]) {
                    (Length::Auto, Length::Auto) => bx.x,
                    (Length::Auto, r) => containing_w - resolve(r, containing_w, font) - bx.w,
                    (l, _) => resolve(l, containing_w, font),
                };
                let ny = match (style.offsets[edge::TOP], style.offsets[edge::BOTTOM]) {
                    (Length::Auto, Length::Auto) => bx.y,
                    (Length::Auto, b) => {
                        self.viewport_height - resolve(b, self.viewport_height, font) - bx.h
                    }
                    (t, _) => resolve(t, self.viewport_height, font),
                };
                self.shift_subtree(id, nx - bx.x, ny - bx.y);
            }
            Position::Static => {}
        }

        // Mirror the geometry into the trace: position and size derive
        // from the element's style, the text/children extents, the parent
        // flow state, the preceding in-flow sibling (block stacking), and
        // the tree structure the traversal followed.
        let style_cells = self.styles.cells(node);
        let mut reads: Vec<AddrRange> = Vec::new();
        if let Some(c) = style_cells {
            reads.push(c.geometry.into());
            reads.push(c.position.into());
        }
        // The containing block is the parent *box* — already in hand, so
        // no scan over the boxes built so far is needed.
        reads.push(self.boxes[parent.index()].geom_cell.into());
        if let Some(dom_parent) = self.doc.node(node).parent {
            reads.push(self.doc.node(dom_parent).cells.structure.into());
        }
        if let Some(prev) = prev_sibling {
            reads.push(prev.into());
        }
        let geom = self.boxes[id.index()].geom_cell;
        self.rec
            .compute_weighted(site!(), &reads, &[geom.into()], 3);

        Some(id)
    }

    fn shift_subtree(&mut self, id: BoxId, dx: f32, dy: f32) {
        if dx == 0.0 && dy == 0.0 {
            return;
        }
        let mut stack = vec![id];
        while let Some(b) = stack.pop() {
            self.boxes[b.index()].rect = self.boxes[b.index()].rect.translated(dx, dy);
            if let BoxKind::Text { lines } = &mut self.boxes[b.index()].kind {
                for (r, _) in lines {
                    *r = r.translated(dx, dy);
                }
            }
            for i in 0..self.boxes[b.index()].children.len() {
                stack.push(self.boxes[b.index()].children[i]);
            }
        }
    }

    /// Simple inline layout: breaks text into line boxes at word
    /// boundaries using the deterministic character metric.
    fn layout_text(
        &mut self,
        node: NodeId,
        x: f32,
        y: f32,
        containing_w: f32,
        font: f32,
    ) -> Option<BoxId> {
        let text = self.doc.node(node).text().unwrap_or("").to_owned();
        if text.trim().is_empty() {
            return None;
        }
        let parent = self.doc.node(node).parent;
        let style = parent
            .and_then(|p| self.styles.style(p))
            .cloned()
            .unwrap_or_default();
        let char_w = font * CHAR_WIDTH_FACTOR;
        let max_chars = ((containing_w / char_w).floor() as u32).max(1);
        let line_h = style.line_height.max(font);

        let mut lines = Vec::new();
        let mut cur = 0u32;
        for word in text.split_whitespace() {
            let wlen = word.chars().count() as u32 + 1;
            if cur + wlen > max_chars && cur > 0 {
                lines.push(cur);
                cur = 0;
            }
            cur += wlen;
        }
        if cur > 0 {
            lines.push(cur);
        }
        let line_rects: Vec<(Rect, u32)> = lines
            .iter()
            .enumerate()
            .map(|(i, &chars)| {
                (
                    Rect::new(x, y + i as f32 * line_h, chars as f32 * char_w, line_h),
                    chars,
                )
            })
            .collect();
        let total_h = line_rects.len() as f32 * line_h;
        let width = line_rects.iter().map(|(r, _)| r.w).fold(0.0, f32::max);

        let geom_cell = self.rec.alloc_cell(Region::Heap);
        let id = BoxId(self.boxes.len() as u32);
        // Line breaking reads the text content and the inherited font.
        let mut reads: Vec<AddrRange> = Vec::new();
        if let Some(r) = self.doc.node(node).text_range() {
            reads.push(r);
        }
        if let Some(c) = parent.and_then(|p| self.styles.cells(p)) {
            reads.push(c.font.into());
        }
        if let Some(p) = parent {
            reads.push(self.doc.node(p).cells.structure.into());
        }
        self.rec
            .compute_weighted(site!(), &reads, &[geom_cell.into()], lines.len() as u32);
        self.boxes.push(LayoutBox {
            node,
            kind: BoxKind::Text { lines: line_rects },
            rect: Rect::new(x, y, width, total_h),
            children: Vec::new(),
            style,
            geom_cell,
        });
        Some(id)
    }
}

fn resolve_offset(primary: Length, secondary: Length, containing: f32, font: f32) -> f32 {
    match (primary, secondary) {
        (Length::Auto, Length::Auto) => 0.0,
        (Length::Auto, s) => -resolve(s, containing, font),
        (p, _) => resolve(p, containing, font),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_css::{parse_stylesheet, StyleEngine, Viewport};
    use wasteprof_html::parse_into;
    use wasteprof_trace::ThreadKind;

    fn layout(html: &str, css: &str) -> (Document, BoxTree) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut doc = Document::new(&mut rec);
        let hr = rec.alloc(Region::Input, html.len().max(1) as u32);
        parse_into(&mut rec, &mut doc, html, hr);
        let cr = rec.alloc(Region::Input, css.len().max(1) as u32);
        let sheet = parse_stylesheet(&mut rec, css, cr, Viewport::DESKTOP, "t");
        let mut engine = StyleEngine::new(Viewport::DESKTOP);
        engine.add_sheet(sheet);
        let styles = engine.style_document(&mut rec, &doc);
        let tree = layout_document(&mut rec, &doc, &styles, 1000.0, 600.0);
        (doc, tree)
    }

    #[test]
    fn blocks_stack_vertically() {
        let (doc, tree) = layout("<div id=a></div><div id=b></div>", "div { height: 50px; }");
        let a = tree.box_for_node(doc.element_by_id("a").unwrap()).unwrap();
        let b = tree.box_for_node(doc.element_by_id("b").unwrap()).unwrap();
        assert_eq!(tree.get(a).rect.y, 0.0);
        assert_eq!(tree.get(a).rect.h, 50.0);
        assert_eq!(tree.get(b).rect.y, 50.0);
        assert_eq!(tree.get(a).rect.w, 1000.0); // auto width fills
    }

    #[test]
    fn margins_and_padding_apply() {
        let (doc, tree) = layout(
            "<div id=a><div id=b></div></div>",
            "#a { margin: 10px; padding: 5px; } #b { height: 20px; }",
        );
        let a = tree.box_for_node(doc.element_by_id("a").unwrap()).unwrap();
        let b = tree.box_for_node(doc.element_by_id("b").unwrap()).unwrap();
        assert_eq!(tree.get(a).rect.x, 10.0);
        assert_eq!(tree.get(a).rect.y, 10.0);
        assert_eq!(tree.get(a).rect.w, 980.0);
        assert_eq!(tree.get(b).rect.x, 15.0);
        assert_eq!(tree.get(b).rect.y, 15.0);
        assert_eq!(tree.get(a).rect.h, 30.0); // child 20 + padding 2*5
    }

    #[test]
    fn explicit_and_percent_widths() {
        let (doc, tree) = layout(
            "<div id=a><div id=b></div></div>",
            "#a { width: 500px } #b { width: 50% ; height: 10px }",
        );
        let a = tree.box_for_node(doc.element_by_id("a").unwrap()).unwrap();
        let b = tree.box_for_node(doc.element_by_id("b").unwrap()).unwrap();
        assert_eq!(tree.get(a).rect.w, 500.0);
        assert_eq!(tree.get(b).rect.w, 250.0);
    }

    #[test]
    fn display_none_generates_no_boxes() {
        let (doc, tree) = layout(
            "<div id=a></div><div id=b style='display: none'><p>hidden</p></div>",
            "div { height: 10px }",
        );
        assert!(tree.box_for_node(doc.element_by_id("b").unwrap()).is_none());
        assert!(tree.box_for_node(doc.element_by_id("a").unwrap()).is_some());
        assert_eq!(tree.page_height, 600.0); // only one 10px div -> viewport min
    }

    #[test]
    fn head_and_scripts_are_non_visual() {
        let (doc, tree) = layout(
            "<head><title>t</title></head><body><script>var x=1;</script><p>text</p></body>",
            "",
        );
        for id in tree.ids() {
            let tag = doc.node(tree.get(id).node).tag().unwrap_or("");
            assert!(!NON_VISUAL.contains(&tag), "{tag} box generated");
        }
    }

    #[test]
    fn text_wraps_into_lines() {
        let words = vec!["word"; 50].join(" ");
        let (_, tree) = layout(
            &format!("<p id=p style='font-size: 16px'>{words}</p>"),
            "p { width: 200px }",
        );
        let text_box = tree
            .ids()
            .find(|&b| matches!(tree.get(b).kind, BoxKind::Text { .. }))
            .expect("text box exists");
        let BoxKind::Text { lines } = &tree.get(text_box).kind else {
            unreachable!()
        };
        // 200px at 8px/char = 25 chars/line; "word " is 5 chars -> 5 words
        // per line -> 10 lines.
        assert!(lines.len() >= 8, "expected many lines, got {}", lines.len());
        // Parent paragraph grew to contain them.
        assert!(tree.get(text_box).rect.h >= lines.len() as f32 * 16.0);
    }

    #[test]
    fn absolute_positioning_honors_offsets() {
        let (doc, tree) = layout(
            "<div id=a></div>",
            "#a { position: absolute; top: 40px; left: 60px; width: 10px; height: 10px }",
        );
        let a = tree.box_for_node(doc.element_by_id("a").unwrap()).unwrap();
        assert_eq!(tree.get(a).rect.x, 60.0);
        assert_eq!(tree.get(a).rect.y, 40.0);
    }

    #[test]
    fn fixed_right_bottom_offsets() {
        let (doc, tree) = layout(
            "<div id=a></div>",
            "#a { position: fixed; right: 0; bottom: 0; width: 100px; height: 50px }",
        );
        let a = tree.box_for_node(doc.element_by_id("a").unwrap()).unwrap();
        assert_eq!(tree.get(a).rect.x, 900.0);
        assert_eq!(tree.get(a).rect.y, 550.0);
    }

    #[test]
    fn absolute_children_do_not_affect_flow() {
        let (doc, tree) = layout(
            "<div id=a><div id=float style='position:absolute; top:0; height:500px'></div></div><div id=b></div>",
            "#a { height: 10px } #b { height: 10px }",
        );
        let b = tree.box_for_node(doc.element_by_id("b").unwrap()).unwrap();
        assert_eq!(tree.get(b).rect.y, 10.0); // not pushed by the 500px abs box
    }

    #[test]
    fn relative_offset_shifts_subtree() {
        let (doc, tree) = layout(
            "<div id=a style='position:relative; left:30px; top:5px'><p id=p>x</p></div>",
            "#a { height: 20px }",
        );
        let a = tree.box_for_node(doc.element_by_id("a").unwrap()).unwrap();
        let p = tree.box_for_node(doc.element_by_id("p").unwrap()).unwrap();
        assert_eq!(tree.get(a).rect.x, 30.0);
        assert_eq!(tree.get(p).rect.x, 30.0);
        assert_eq!(tree.get(a).rect.y, 5.0);
    }

    #[test]
    fn inline_blocks_pack_into_rows() {
        let (doc, tree) = layout(
            "<div id=wrap><div class=c id=i0></div><div class=c id=i1></div>             <div class=c id=i2></div><div class=c id=i3></div></div>",
            ".c { display: inline-block; width: 400px; height: 50px } #wrap { width: 1000px }",
        );
        let b = |n: &str| {
            tree.get(tree.box_for_node(doc.element_by_id(n).unwrap()).unwrap())
                .rect
        };
        // Two per row (2x400 <= 1000 < 3x400).
        assert_eq!(b("i0").y, b("i1").y);
        assert!(b("i1").x > b("i0").x);
        assert!(b("i2").y > b("i0").y, "third card wraps to a new row");
        assert_eq!(b("i2").y, b("i3").y);
        // Parent grew to contain both rows.
        let wrap = b("wrap");
        assert!(wrap.h >= 100.0);
    }

    #[test]
    fn page_height_tracks_offscreen_content() {
        let (_, tree) = layout("<div></div><div></div><div></div>", "div { height: 400px }");
        assert_eq!(tree.page_height, 1200.0); // 3 x 400 > 600 viewport
    }

    #[test]
    fn hit_test_finds_topmost() {
        let (doc, tree) = layout(
            "<div id=below></div><div id=above style='position:absolute; top:0; left:0; width:100px; height:100px'></div>",
            "#below { height: 100px }",
        );
        let above = tree
            .box_for_node(doc.element_by_id("above").unwrap())
            .unwrap();
        assert_eq!(tree.hit_test(50.0, 50.0), Some(above));
        assert_eq!(tree.hit_test(5000.0, 50.0), None);
    }

    #[test]
    fn hit_test_respects_z_index_over_document_order() {
        // The menu paints on top (z-index layer) even though the body
        // comes later in document order; hit testing must agree.
        let (doc, tree) = layout(
            "<div><div id=menu style='position:absolute; z-index:10; top:0; left:0; \
             width:100px; height:100px'></div></div>\
             <div id=body style='height:100px'></div>",
            "",
        );
        let menu = tree
            .box_for_node(doc.element_by_id("menu").unwrap())
            .unwrap();
        let body = tree
            .box_for_node(doc.element_by_id("body").unwrap())
            .unwrap();
        // Both boxes contain the probe point.
        assert!(tree.get(body).rect.y < 100.0, "body must overlap the menu");
        assert_eq!(tree.hit_test(50.0, 50.0), Some(menu));
    }

    #[test]
    fn geometry_writes_read_style_cells() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut doc = Document::new(&mut rec);
        let hr = rec.alloc(Region::Input, 64);
        parse_into(&mut rec, &mut doc, "<div id=a></div>", hr);
        let css = "#a { width: 100px; height: 10px }";
        let cr = rec.alloc(Region::Input, css.len() as u32);
        let sheet = parse_stylesheet(&mut rec, css, cr, Viewport::DESKTOP, "t");
        let mut engine = StyleEngine::new(Viewport::DESKTOP);
        engine.add_sheet(sheet);
        let styles = engine.style_document(&mut rec, &doc);
        let a = doc.element_by_id("a").unwrap();
        let style_geom = styles.cells(a).unwrap().geometry;
        let tree = layout_document(&mut rec, &doc, &styles, 1000.0, 600.0);
        let geom = tree.get(tree.box_for_node(a).unwrap()).geom_cell;
        let trace = rec.finish();
        // The instruction writing the box geometry participates in a chain
        // that reads the computed-style geometry cell.
        assert!(trace
            .iter()
            .any(|i| i.mem_writes().iter().any(|w| w.contains(geom))));
        assert!(trace
            .iter()
            .any(|i| i.mem_reads().iter().any(|r| r.contains(style_geom))));
    }
}
