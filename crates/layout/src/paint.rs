//! Paint: display-list generation (the Paint stage of Figure 1).
//!
//! Walks the box tree in stacking order and produces, per compositing
//! layer, the list of graphical commands ("lines and circles" in the
//! paper's words — here rects, borders, text runs, and images) that the
//! rasterizer threads will later play back into pixel tiles.

use wasteprof_css::{Color, StyleMap};
use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{site, AddrRange, Recorder, Region};

use crate::boxes::{BoxId, BoxKind, BoxTree};
use crate::geometry::Rect;

/// A graphical command in a display list.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// Filled rectangle (backgrounds).
    Rect,
    /// Rectangle outline.
    Border,
    /// A run of text.
    Text {
        /// Number of characters (raster cost scales with it).
        chars: u32,
    },
    /// An image placeholder (decoded bitmap pattern).
    Image,
}

/// One display item.
#[derive(Debug, Clone)]
pub struct DisplayItem {
    /// What to draw.
    pub kind: ItemKind,
    /// Where, in page coordinates.
    pub rect: Rect,
    /// Color (fill / text color).
    pub color: Color,
    /// Trace cells holding the item.
    pub cells: AddrRange,
}

/// Why a layer exists (mirrors Chromium's compositing reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerReason {
    /// The root of the page.
    Root,
    /// Explicit z-index.
    ZIndex,
    /// `opacity < 1`.
    Opacity,
    /// `position: fixed`.
    Fixed,
    /// `will-change` hint.
    WillChange,
}

/// The paint output for one compositing layer.
#[derive(Debug, Clone)]
pub struct LayerPaint {
    /// The element that owns the layer (`None` for the root layer).
    pub owner: Option<NodeId>,
    /// Why the layer was created.
    pub reason: LayerReason,
    /// Layer bounds in page coordinates.
    pub bounds: Rect,
    /// Stacking order (z-index; root = 0, ties break by paint order).
    pub z_index: i32,
    /// `true` for viewport-anchored (fixed) layers that do not scroll.
    pub fixed: bool,
    /// Layer opacity.
    pub opacity: f32,
    /// True if every item in the layer is fully opaque (occlusion test).
    pub opaque: bool,
    /// The display list.
    pub items: Vec<DisplayItem>,
    /// The owner's computed-style position cell (z-index provenance for
    /// the compositor's ordering work); `None` for the root layer.
    pub style_cell: Option<wasteprof_trace::Addr>,
}

impl LayerPaint {
    /// A content fingerprint: layers whose fingerprint is unchanged can
    /// reuse their backing store (the caching the paper calls out).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for item in &self.items {
            h.mix_rect(&item.rect);
            h.mix_color(item.color);
            h.mix(match &item.kind {
                ItemKind::Rect => 1,
                ItemKind::Border => 2,
                ItemKind::Text { chars } => 0x100 | *chars as u64,
                ItemKind::Image => 3,
            });
        }
        h.mix(self.bounds.w.to_bits() as u64);
        h.mix(self.bounds.h.to_bits() as u64);
        h.finish()
    }
}

/// Memoized display items, keyed by generating node and item slot: Blink's
/// display-item cache. Unchanged items are reused (their cells stay valid
/// in the trace) instead of being re-recorded — repainting content that
/// did not change is exactly the work real engines learned to skip.
#[derive(Debug, Clone, Default)]
pub struct PaintCache {
    items: std::collections::HashMap<(NodeId, u8, u32), (u64, AddrRange)>,
}

impl PaintCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn get_or_record(
        &mut self,
        node: NodeId,
        kind_tag: u8,
        slot: u32,
        fp: u64,
        record: impl FnOnce() -> AddrRange,
    ) -> AddrRange {
        match self.items.get(&(node, kind_tag, slot)) {
            Some((cached_fp, cells)) if *cached_fp == fp => *cells,
            _ => {
                let cells = record();
                self.items.insert((node, kind_tag, slot), (fp, cells));
                cells
            }
        }
    }
}

/// Incremental FNV-1a (64-bit) over words and bytes — the one hash used
/// for every display-item / content fingerprint (here and in the
/// compositor's tile invalidation), so the mixing can never drift apart.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf29ce484222325)
    }
}

impl Fnv {
    /// Fresh hasher with the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes one word.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// Mixes raw bytes.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    /// Mixes a rectangle's geometry.
    pub fn mix_rect(&mut self, rect: &Rect) {
        self.mix(rect.x.to_bits() as u64);
        self.mix(rect.y.to_bits() as u64);
        self.mix(rect.w.to_bits() as u64);
        self.mix(rect.h.to_bits() as u64);
    }

    /// Mixes an RGBA color.
    pub fn mix_color(&mut self, color: Color) {
        self.mix(
            ((color.r as u64) << 24)
                | ((color.g as u64) << 16)
                | ((color.b as u64) << 8)
                | color.a as u64,
        );
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

fn item_fp(rect: &Rect, color: Color, extra: u64) -> u64 {
    let mut h = Fnv::new();
    h.mix_rect(rect);
    h.mix_color(color);
    h.mix(extra);
    h.finish()
}

/// FNV over arbitrary bytes (content hashes for cache keys).
fn bytes_fp(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.mix_bytes(bytes);
    h.finish()
}

/// Paints the box tree into per-layer display lists, in stacking order
/// (layers sorted by z-index, root first on ties).
pub fn paint_document(
    rec: &mut Recorder,
    doc: &Document,
    styles: &StyleMap,
    tree: &BoxTree,
    cache: &mut PaintCache,
) -> Vec<LayerPaint> {
    let func = rec.intern_func("gfx::paint::PaintController");
    rec.in_func(site!(), func, |rec| {
        let mut layers = Vec::new();
        let root_layer = LayerPaint {
            owner: None,
            reason: LayerReason::Root,
            bounds: Rect::new(0.0, 0.0, tree.viewport_width, tree.page_height),
            z_index: 0,
            fixed: false,
            opacity: 1.0,
            opaque: true,
            items: Vec::new(),
            style_cell: None,
        };
        layers.push(root_layer);
        paint_box(rec, doc, styles, tree, tree.root(), 0, &mut layers, cache);
        // Stable sort by z-index keeps paint order within a z level.
        layers.sort_by_key(|l| l.z_index);
        for layer in &mut layers {
            let all_opaque = layer
                .items
                .iter()
                .all(|i| matches!(i.kind, ItemKind::Rect | ItemKind::Image) && i.color.is_opaque());
            // A layer only occludes what it fully covers: some opaque item
            // must span the whole layer bounds, or tiles underneath could
            // be culled while still visible.
            let covered = layer.items.iter().any(|i| {
                matches!(i.kind, ItemKind::Rect | ItemKind::Image)
                    && i.color.is_opaque()
                    && i.rect.contains_rect(&layer.bounds)
            });
            layer.opaque = all_opaque && covered && layer.opacity == 1.0 && !layer.items.is_empty();
        }
        layers
    })
}

#[allow(clippy::too_many_arguments)]
fn paint_box(
    rec: &mut Recorder,
    doc: &Document,
    styles: &StyleMap,
    tree: &BoxTree,
    id: BoxId,
    layer_idx: usize,
    layers: &mut Vec<LayerPaint>,
    cache: &mut PaintCache,
) {
    let b = tree.get(id);
    let style = &b.style;

    // Does this box start its own compositing layer?
    let mut target = layer_idx;
    if b.node != doc.root() && style.wants_layer() {
        let reason = if style.z_index.is_some() {
            LayerReason::ZIndex
        } else if style.opacity < 1.0 {
            LayerReason::Opacity
        } else if style.position == wasteprof_css::Position::Fixed {
            LayerReason::Fixed
        } else {
            LayerReason::WillChange
        };
        layers.push(LayerPaint {
            owner: Some(b.node),
            reason,
            bounds: b.rect,
            z_index: style.z_index.unwrap_or(0),
            fixed: style.position == wasteprof_css::Position::Fixed,
            opacity: style.opacity,
            opaque: false,
            items: Vec::new(),
            style_cell: styles.cells(b.node).map(|c| c.position),
        });
        target = layers.len() - 1;
    }

    // Invisible boxes still exist (the compositor keeps backing stores for
    // them — paper §II-B) but paint no items.
    let paints = !style.is_invisible() && !b.rect.is_empty();
    let style_cells = styles.cells(b.node);
    let geom: AddrRange = b.geom_cell.into();

    if paints {
        match &b.kind {
            BoxKind::Text { lines } => {
                // The cache key covers the text *content*: equal-length but
                // different text must not reuse a stale recording.
                let content = bytes_fp(doc.node(b.node).text().unwrap_or("").as_bytes());
                for (slot, (line_rect, chars)) in lines.iter().enumerate() {
                    let fp = item_fp(line_rect, b.style.color, content ^ *chars as u64);
                    let cells = cache.get_or_record(b.node, 0, slot as u32, fp, || {
                        let cells = rec.alloc(Region::Heap, 16);
                        let mut reads: Vec<AddrRange> = vec![geom];
                        if let Some(p) = doc.node(b.node).parent {
                            if let Some(c) = styles.cells(p) {
                                reads.push(c.paint.into());
                                reads.push(c.font.into());
                            }
                        }
                        if let Some(t) = doc.node(b.node).text_range() {
                            reads.push(t);
                        }
                        rec.compute_weighted(site!(), &reads, &[cells], 2);
                        cells
                    });
                    layers[target].items.push(DisplayItem {
                        kind: ItemKind::Text { chars: *chars },
                        rect: *line_rect,
                        color: b.style.color,
                        cells,
                    });
                }
            }
            BoxKind::Block | BoxKind::Inline => {
                // Background.
                if style.background.a > 0 {
                    let fp = item_fp(&b.rect, style.background, 1);
                    let cells = cache.get_or_record(b.node, 1, 0, fp, || {
                        let cells = rec.alloc(Region::Heap, 16);
                        let mut reads: Vec<AddrRange> = vec![geom];
                        if let Some(c) = style_cells {
                            reads.push(c.paint.into());
                        }
                        rec.compute_weighted(site!(), &reads, &[cells], 2);
                        cells
                    });
                    layers[target].items.push(DisplayItem {
                        kind: ItemKind::Rect,
                        rect: b.rect,
                        color: style.background,
                        cells,
                    });
                }
                // Border.
                if style.border_width > 0.0 {
                    let fp = item_fp(&b.rect, style.border_color, 2);
                    let cells = cache.get_or_record(b.node, 2, 0, fp, || {
                        let cells = rec.alloc(Region::Heap, 16);
                        let mut reads: Vec<AddrRange> = vec![geom];
                        if let Some(c) = style_cells {
                            reads.push(c.paint.into());
                        }
                        rec.compute(site!(), &reads, &[cells]);
                        cells
                    });
                    layers[target].items.push(DisplayItem {
                        kind: ItemKind::Border,
                        rect: b.rect,
                        color: style.border_color,
                        cells,
                    });
                }
                // Images paint a decoded-bitmap placeholder.
                if doc.node(b.node).tag() == Some("img") {
                    let src_fp = doc
                        .node(b.node)
                        .attr_value("src")
                        .map(|v| bytes_fp(v.as_bytes()))
                        .unwrap_or(0);
                    let fp = item_fp(&b.rect, Color::rgb(200, 200, 200), 3 ^ src_fp);
                    let cells = cache.get_or_record(b.node, 3, 0, fp, || {
                        let cells = rec.alloc(Region::Heap, 16);
                        let mut reads: Vec<AddrRange> = vec![geom];
                        if let Some(a) = doc.node(b.node).attr("src") {
                            reads.push(a.cell.into());
                        }
                        rec.compute_weighted(site!(), &reads, &[cells], 4);
                        cells
                    });
                    layers[target].items.push(DisplayItem {
                        kind: ItemKind::Image,
                        rect: b.rect,
                        color: Color::rgb(200, 200, 200),
                        cells,
                    });
                }
            }
        }
    }

    for &child in &b.children {
        paint_box(rec, doc, styles, tree, child, target, layers, cache);
    }

    // Grow the layer bounds to cover everything painted into it.
    if target < layers.len() {
        let items_bounds = layers[target]
            .items
            .iter()
            .map(|i| i.rect)
            .fold(Rect::default(), |acc, r| acc.union(&r));
        layers[target].bounds = layers[target].bounds.union(&items_bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::layout_document;
    use wasteprof_css::{parse_stylesheet, StyleEngine, Viewport};
    use wasteprof_html::parse_into;
    use wasteprof_trace::{Recorder, ThreadKind};

    fn paint(html: &str, css: &str) -> Vec<LayerPaint> {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut doc = wasteprof_dom::Document::new(&mut rec);
        let hr = rec.alloc(Region::Input, html.len().max(1) as u32);
        parse_into(&mut rec, &mut doc, html, hr);
        let cr = rec.alloc(Region::Input, css.len().max(1) as u32);
        let sheet = parse_stylesheet(&mut rec, css, cr, Viewport::DESKTOP, "t");
        let mut engine = StyleEngine::new(Viewport::DESKTOP);
        engine.add_sheet(sheet);
        let styles = engine.style_document(&mut rec, &doc);
        let tree = layout_document(&mut rec, &doc, &styles, 1000.0, 600.0);
        paint_document(&mut rec, &doc, &styles, &tree, &mut PaintCache::new())
    }

    #[test]
    fn root_layer_collects_normal_content() {
        let layers = paint(
            "<div>hello world</div>",
            "div { background: white; height: 40px }",
        );
        assert_eq!(layers.len(), 1);
        let root = &layers[0];
        assert_eq!(root.reason, LayerReason::Root);
        assert!(root.items.iter().any(|i| matches!(i.kind, ItemKind::Rect)));
        assert!(root
            .items
            .iter()
            .any(|i| matches!(i.kind, ItemKind::Text { .. })));
    }

    #[test]
    fn z_index_creates_layers_in_order() {
        let layers = paint(
            "<div id=low></div><div id=high></div>",
            "#low { z-index: 1; position: relative; height: 10px; background: red }\
             #high { z-index: 5; position: relative; height: 10px; background: blue }",
        );
        assert_eq!(layers.len(), 3);
        let zs: Vec<i32> = layers.iter().map(|l| l.z_index).collect();
        assert_eq!(zs, vec![0, 1, 5]);
        assert_eq!(layers[1].reason, LayerReason::ZIndex);
    }

    #[test]
    fn opacity_and_fixed_create_layers() {
        let layers = paint(
            "<div style='opacity: 0.5; height: 10px'></div>\
             <div style='position: fixed; top: 0; height: 10px'></div>",
            "",
        );
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().any(|l| l.reason == LayerReason::Opacity));
        assert!(layers
            .iter()
            .any(|l| l.reason == LayerReason::Fixed && l.fixed));
    }

    #[test]
    fn invisible_layer_paints_nothing_but_exists() {
        let layers = paint(
            "<div style='visibility: hidden; will-change: transform; height: 10px'>\
             <p>invisible text</p></div>",
            "",
        );
        let hidden = layers
            .iter()
            .find(|l| l.reason == LayerReason::WillChange)
            .unwrap();
        // The layer exists (backing store will be kept) but has no visible
        // paint. Note children of a hidden element inherit visibility.
        assert!(hidden.items.is_empty());
    }

    #[test]
    fn borders_and_images() {
        let layers = paint(
            "<div style='border: 2px solid black; height: 10px'></div><img src='x.png'>",
            "img { width: 50px; height: 50px }",
        );
        let root = &layers[0];
        assert!(root
            .items
            .iter()
            .any(|i| matches!(i.kind, ItemKind::Border)));
        assert!(root.items.iter().any(|i| matches!(i.kind, ItemKind::Image)));
    }

    #[test]
    fn opaque_detection() {
        // Opaque requires full coverage of the layer bounds: a viewport-
        // filling white div qualifies...
        let opaque = paint("<div style='background: white; height: 600px'></div>", "");
        assert!(opaque[0].opaque);
        // ...a translucent one does not...
        let transparent = paint(
            "<div style='background: rgba(0,0,0,0.5); height: 600px'></div>",
            "",
        );
        assert!(!transparent[0].opaque);
        // ...and neither does an opaque item that covers only part of the
        // layer (it cannot occlude tiles it does not paint).
        let partial = paint("<div style='background: white; height: 10px'></div>", "");
        assert!(!partial[0].opaque);
    }

    #[test]
    fn fingerprint_stable_and_content_sensitive() {
        let a = paint("<div style='background: red; height: 10px'></div>", "");
        let b = paint("<div style='background: red; height: 10px'></div>", "");
        let c = paint("<div style='background: blue; height: 10px'></div>", "");
        assert_eq!(a[0].fingerprint(), b[0].fingerprint());
        assert_ne!(a[0].fingerprint(), c[0].fingerprint());
    }

    #[test]
    fn sublayer_content_not_duplicated_in_root() {
        let layers = paint(
            "<div id=l style='will-change: transform'><p>inside layer</p></div>",
            "#l { height: 30px }",
        );
        let root = &layers[0];
        let sub = layers.iter().find(|l| l.owner.is_some()).unwrap();
        assert!(sub
            .items
            .iter()
            .any(|i| matches!(i.kind, ItemKind::Text { .. })));
        assert!(!root
            .items
            .iter()
            .any(|i| matches!(i.kind, ItemKind::Text { .. })));
    }

    #[test]
    fn layer_bounds_cover_items() {
        let layers = paint(
            "<div style='will-change: transform'><div style='height: 50px; background: red'></div></div>",
            "",
        );
        let sub = layers.iter().find(|l| l.owner.is_some()).unwrap();
        for item in &sub.items {
            assert!(sub.bounds.contains_rect(&item.rect));
        }
    }
}
