#![forbid(unsafe_code)]

//! Layout and paint for the wasteprof browser: render-tree construction,
//! block/inline box layout, positioned elements and stacking, and
//! display-list generation per compositing layer (the Layout and Paint
//! stages of the paper's rendering pipeline, Figure 1).

#![warn(missing_docs)]

mod boxes;
mod geometry;
mod paint;

pub use boxes::{layout_document, BoxId, BoxKind, BoxTree, LayoutBox, CHAR_WIDTH_FACTOR};
pub use geometry::Rect;
pub use paint::{paint_document, DisplayItem, Fnv, ItemKind, LayerPaint, LayerReason, PaintCache};
