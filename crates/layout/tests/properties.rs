//! Property-based tests for layout invariants on generated pages.

use proptest::prelude::*;
use wasteprof_css::{parse_stylesheet, StyleEngine, Viewport};
use wasteprof_dom::Document;
use wasteprof_html::parse_into;
use wasteprof_layout::{layout_document, BoxKind, BoxTree};
use wasteprof_trace::{Recorder, Region, ThreadKind};

#[derive(Debug, Clone)]
struct Block {
    height: u32,
    margin: u32,
    padding: u32,
    children: Vec<Block>,
}

fn arb_block() -> impl Strategy<Value = Block> {
    let leaf = (5u32..60, 0u32..8, 0u32..8).prop_map(|(height, margin, padding)| Block {
        height,
        margin,
        padding,
        children: Vec::new(),
    });
    leaf.prop_recursive(3, 12, 4, |inner| {
        (
            5u32..60,
            0u32..8,
            0u32..8,
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(height, margin, padding, children)| Block {
                height,
                margin,
                padding,
                children,
            })
    })
}

fn render_html(b: &Block, id: &mut u32, out: &mut String) {
    let my = *id;
    *id += 1;
    out.push_str(&format!(
        "<div id=\"b{my}\" style=\"margin: {}px; padding: {}px{}\">",
        b.margin,
        b.padding,
        if b.children.is_empty() {
            format!("; height: {}px", b.height)
        } else {
            String::new()
        },
    ));
    for c in &b.children {
        render_html(c, id, out);
    }
    out.push_str("</div>");
}

fn layout(html: &str) -> (Document, BoxTree) {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "m");
    let mut doc = Document::new(&mut rec);
    let hr = rec.alloc(Region::Input, html.len().max(1) as u32);
    parse_into(&mut rec, &mut doc, html, hr);
    let css = "div { background: white }";
    let cr = rec.alloc(Region::Input, css.len() as u32);
    let sheet = parse_stylesheet(&mut rec, css, cr, Viewport::DESKTOP, "p");
    let mut engine = StyleEngine::new(Viewport::DESKTOP);
    engine.add_sheet(sheet);
    let styles = engine.style_document(&mut rec, &doc);
    let tree = layout_document(&mut rec, &doc, &styles, 1000.0, 600.0);
    (doc, tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn block_layout_invariants(root in arb_block()) {
        let mut html = String::new();
        let mut id = 0;
        render_html(&root, &mut id, &mut html);
        let (_doc, tree) = layout(&html);

        for bid in tree.ids() {
            let b = tree.get(bid);
            if matches!(b.kind, BoxKind::Text { .. }) {
                continue;
            }
            // Geometry is finite and non-negative.
            prop_assert!(b.rect.w.is_finite() && b.rect.h.is_finite());
            prop_assert!(b.rect.w >= 0.0 && b.rect.h >= 0.0, "{:?}", b.rect);

            // Children lie within the parent's horizontal extent and below
            // its top edge, and block siblings never overlap vertically.
            let mut prev_bottom = f32::NEG_INFINITY;
            for &cid in &b.children {
                let c = tree.get(cid);
                prop_assert!(c.rect.x + 0.01 >= b.rect.x, "child left of parent");
                prop_assert!(
                    c.rect.right() <= b.rect.right() + 0.01,
                    "child {:?} exceeds parent {:?}",
                    c.rect,
                    b.rect
                );
                prop_assert!(c.rect.y + 0.01 >= b.rect.y, "child above parent");
                prop_assert!(
                    c.rect.y + 0.01 >= prev_bottom,
                    "sibling overlap: {:?} starts above previous bottom {prev_bottom}",
                    c.rect
                );
                prev_bottom = c.rect.bottom();
            }

            // A parent with children is at least as tall as their extent.
            if let Some(&last) = b.children.last() {
                let last_bottom = tree.get(last).rect.bottom();
                prop_assert!(
                    b.rect.bottom() + 0.01 >= last_bottom,
                    "parent {:?} shorter than children ({last_bottom})",
                    b.rect
                );
            }
        }

        // Page height covers the root box.
        let root_rect = tree.get(tree.root()).rect;
        prop_assert!(tree.page_height + 0.01 >= root_rect.h);
    }

    #[test]
    fn text_lines_respect_container_width(
        words in proptest::collection::vec("[a-z]{1,10}", 1..40),
        width in 120u32..800,
    ) {
        let text = words.join(" ");
        let html = format!("<div id=\"w\" style=\"width: {width}px\"><p>{text}</p></div>");
        let (_doc, tree) = layout(&html);
        for bid in tree.ids() {
            if let BoxKind::Text { lines } = &tree.get(bid).kind {
                for (rect, chars) in lines {
                    prop_assert!(*chars > 0);
                    // A line is never wider than its container plus one
                    // overlong word (which cannot be broken).
                    let longest = words.iter().map(|w| w.len()).max().unwrap_or(0) as f32;
                    let char_w = 16.0 * wasteprof_layout::CHAR_WIDTH_FACTOR;
                    let slack = (longest + 1.0) * char_w;
                    prop_assert!(
                        rect.w <= width as f32 + slack,
                        "line {rect:?} far exceeds container {width}"
                    );
                }
            }
        }
    }
}
