#![forbid(unsafe_code)]

//! Offline drop-in subset of the [rayon](https://crates.io/crates/rayon)
//! API, implemented over `std::thread::scope`. The build container has no
//! network access to crates.io; swap back to the real crate when vendoring
//! is available.
//!
//! Supported surface:
//!
//! * [`current_num_threads`] — honours `RAYON_NUM_THREADS`, like rayon's
//!   global pool.
//! * [`join`] — runs two closures, in parallel when more than one thread
//!   is configured.
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` via [`prelude`] —
//!   order-preserving, with dynamic (atomic work counter) scheduling so
//!   heterogeneous task costs balance across workers.
//!
//! There is no persistent worker pool: each parallel call spawns scoped
//! threads. That amortizes fine here because the workspace's parallel
//! units are whole benchmark sessions and slicing passes (hundreds of
//! milliseconds each), not microtasks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits for `par_iter()` / `into_par_iter()`.
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel call will use: `RAYON_NUM_THREADS`
/// when set and nonzero, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `a` and `b`, in parallel when the configured thread count allows.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Runs `items[i] -> f(&items[i])` over a dynamic pool, preserving input
/// order in the result. The scheduling is an atomic take-a-ticket queue,
/// so long tasks do not leave workers idle behind a static partition.
fn run_ordered<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().expect("result lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// `par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element reference type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// The subset of rayon's `ParallelIterator`: `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// Item type produced by this iterator.
    type Item;

    /// Evaluates the pipeline into an ordered `Vec`.
    fn collect_vec(self) -> Vec<Self::Item>;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Collects into `C` (only `Vec` is supported).
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.collect_vec())
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn collect_vec(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, R, F> ParallelIterator for ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn collect_vec(self) -> Vec<R> {
        run_ordered(self.inner.items, self.f)
    }
}

/// Ordered-collection sink for [`ParallelIterator::collect`].
pub trait FromParallel<T> {
    /// Builds the collection from ordered items.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
