//! JavaScript AST.

/// Index of a literal within a script's literal table; literals get trace
/// cells at compile time so that executing them reads compiler output.
pub type LitId = u32;

/// Index of a function within a script.
pub type FnIdx = u32;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (number add or string concat).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==` / `===` (no coercion model; both behave strictly).
    Eq,
    /// `!=` / `!==`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `!`.
    Not,
    /// `-`.
    Neg,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`.
    Set,
    /// `+=`.
    Add,
    /// `-=`.
    Sub,
}

/// Places an assignment can target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `x = ...`.
    Var(String),
    /// `obj.prop = ...`.
    Member(Box<Expr>, String),
    /// `obj[key] = ...`.
    Index(Box<Expr>, Box<Expr>),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64, LitId),
    /// String literal.
    Str(String, LitId),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// Variable reference.
    Ident(String),
    /// `[a, b, c]`.
    Array(Vec<Expr>),
    /// `{ k: v, ... }`.
    Object(Vec<(String, Expr)>),
    /// `function (args) { ... }` — index into the script's function table.
    Function(FnIdx),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `&&` (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// `||` (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment (expression-valued).
    Assign(AssignOp, Target, Box<Expr>),
    /// `f(args)`.
    Call(Box<Expr>, Vec<Expr>),
    /// `obj.method(args)` — kept distinct so native methods can dispatch
    /// on the receiver.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// `obj.prop`.
    Member(Box<Expr>, String),
    /// `obj[key]`.
    Index(Box<Expr>, Box<Expr>),
    /// Postfix `x++` / `x--`: updates the target but evaluates to the
    /// *previous* value (unlike the compound-assignment desugaring used
    /// for the prefix forms).
    PostIncDec {
        /// The place being updated.
        target: Target,
        /// True for `++`, false for `--`.
        inc: bool,
        /// Literal id of the implicit `1`.
        one: LitId,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var`/`let`/`const` declaration (all function-scoped here).
    Decl(String, Option<Expr>),
    /// Expression statement.
    Expr(Expr),
    /// `if (c) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { .. }`.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Vec<Stmt>),
    /// `return e;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// Named function declaration (hoisted): name + function-table index.
    FuncDecl(String, FnIdx),
}

/// A function definition within a script.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name, if declared with one.
    pub name: Option<String>,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements (shared so calls do not clone the AST).
    pub body: std::rc::Rc<Vec<Stmt>>,
    /// Byte offset of the function in the script source.
    pub src_offset: u32,
    /// Byte length of the function source (for Table I coverage).
    pub src_len: u32,
    /// Literal ids that appear in this function's own body (not nested
    /// functions) — compiled into code cells alongside the function.
    pub literals: Vec<LitId>,
}

/// A parsed script: top-level statements plus the function table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// All function definitions (including nested and anonymous ones).
    pub funcs: Vec<FuncDef>,
    /// Literal ids appearing at top level.
    pub literals: Vec<LitId>,
    /// Total number of literals in the script.
    pub literal_count: u32,
    /// Total source length in bytes.
    pub src_len: u32,
}
