//! Dynamic execution witness: per-statement ground truth for the static
//! analyzer's referee.
//!
//! While the interpreter runs it keeps, per script unit and per statement
//! id (see [`crate::numbering`]):
//!
//! * **execution counts** — how many times each statement ran, so a
//!   statically-unreachable claim can be checked against "never ran";
//! * **store fates** — for every `var` declaration / variable assignment,
//!   whether the stored value was read back before being overwritten
//!   (or never read at all: a dynamically dead store);
//! * **self spans** — half-open trace-position ranges of the instructions
//!   recorded while the statement itself (not its nested statements) was
//!   executing, so a statically-wasted claim can be checked against the
//!   dynamic pixel slice.
//!
//! The witness never touches the [`wasteprof_trace::Recorder`]: traces,
//! slices, and every downstream artifact stay byte-identical whether or
//! not anyone reads the witness.

use std::collections::HashMap;

use wasteprof_trace::Addr;

/// Fate counters for one static store site `(stmt id, variable name)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreFate {
    /// Dynamic stores executed at this site.
    pub stores: u64,
    /// Stores whose value was read at least once before being overwritten.
    pub read_back: u64,
    /// Stores overwritten (or left at engine teardown) without ever being
    /// read: dynamically dead.
    pub dead: u64,
}

/// Witness for one script unit (one registered script, keyed by origin).
#[derive(Debug, Clone, Default)]
pub struct UnitWitness {
    /// Script origin (the resource URL, or `"inline"`).
    pub origin: String,
    /// Statement id → number of times the statement executed.
    pub exec: HashMap<u32, u64>,
    /// `(stmt id, variable name)` → store fate counters.
    pub stores: HashMap<(u32, String), StoreFate>,
    /// Statement id → half-open `[start, end)` trace-position spans of the
    /// statement's *self* instructions (nested statements excluded).
    pub self_spans: HashMap<u32, Vec<(u64, u64)>>,
    /// Function index (into the unit's `script.funcs`) → number of times
    /// the function was invoked, counting every entry path (direct call,
    /// stored closure, timer, event handler). Ground truth for the
    /// never-invocable claim (`WP0106`).
    pub calls: HashMap<u32, u64>,
}

impl UnitWitness {
    /// Total dynamic executions of `stmt`.
    #[must_use]
    pub fn exec_count(&self, stmt: u32) -> u64 {
        self.exec.get(&stmt).copied().unwrap_or(0)
    }

    /// Total dynamic invocations of function `fn_idx` of this unit.
    #[must_use]
    pub fn call_count(&self, fn_idx: u32) -> u64 {
        self.calls.get(&fn_idx).copied().unwrap_or(0)
    }

    /// Total self instructions recorded for `stmt` across all executions.
    #[must_use]
    pub fn self_instructions(&self, stmt: u32) -> u64 {
        self.self_spans
            .get(&stmt)
            .map(|v| v.iter().map(|(s, e)| e - s).sum())
            .unwrap_or(0)
    }
}

/// Execution witness across every script unit the engine has run.
#[derive(Debug, Clone, Default)]
pub struct JsWitness {
    /// One entry per registered script, in registration order.
    pub units: Vec<UnitWitness>,
}

impl JsWitness {
    /// Looks up a unit's witness by script origin.
    #[must_use]
    pub fn unit(&self, origin: &str) -> Option<&UnitWitness> {
        self.units.iter().find(|u| u.origin == origin)
    }

    /// Total dynamic statement executions across all units.
    #[must_use]
    pub fn total_exec(&self) -> u64 {
        self.units
            .iter()
            .map(|u| u.exec.values().sum::<u64>())
            .sum()
    }
}

/// Mutable witness-collection state owned by the engine.
///
/// `stack` mirrors the interpreter's statement recursion: one frame per
/// in-flight `exec_stmt`, holding `(unit, stmt id, self-span start)`. The
/// enter/exit hooks are called from a wrapper around the interpreter's
/// statement dispatch, so the stack stays balanced even when a `JsError`
/// unwinds through `?`.
#[derive(Debug, Default)]
pub(crate) struct WitnessState {
    pub(crate) witness: JsWitness,
    stack: Vec<(usize, u32, u64)>,
    /// Variable cell → site of its most recent unread store.
    last_store: HashMap<Addr, (usize, u32, String)>,
}

impl WitnessState {
    /// Enters a statement frame at trace position `pos`: flushes the
    /// parent's open self span and bumps the execution count.
    pub(crate) fn enter(&mut self, unit: usize, stmt: u32, pos: u64) {
        if let Some(&mut (pu, ps, ref mut start)) = self.stack.last_mut() {
            if pos > *start {
                push_span(&mut self.witness.units, pu, ps, *start, pos);
            }
            *start = pos;
        }
        if let Some(u) = self.witness.units.get_mut(unit) {
            *u.exec.entry(stmt).or_insert(0) += 1;
        }
        self.stack.push((unit, stmt, pos));
    }

    /// Exits the current statement frame at trace position `pos`, flushing
    /// its final self span and resuming the parent's span.
    pub(crate) fn exit(&mut self, pos: u64) {
        if let Some((u, s, start)) = self.stack.pop() {
            if pos > start {
                push_span(&mut self.witness.units, u, s, start, pos);
            }
            if let Some(top) = self.stack.last_mut() {
                top.2 = pos;
            }
        }
    }

    /// Records a variable store into `cell` named `name`, attributed to
    /// the innermost in-flight statement. A previous unread store into the
    /// same cell becomes dead.
    pub(crate) fn store(&mut self, cell: Addr, name: &str) {
        let Some(&(unit, stmt, _)) = self.stack.last() else {
            return;
        };
        if let Some((pu, ps, pn)) = self.last_store.insert(cell, (unit, stmt, name.to_owned())) {
            fate(&mut self.witness.units, pu, ps, pn).dead += 1;
        }
        fate(&mut self.witness.units, unit, stmt, name.to_owned()).stores += 1;
    }

    /// Records an invocation of function `fn_idx` of `unit`, whatever the
    /// entry path (direct call, stored closure, timer, event handler).
    pub(crate) fn call(&mut self, unit: usize, fn_idx: u32) {
        if let Some(u) = self.witness.units.get_mut(unit) {
            *u.calls.entry(fn_idx).or_insert(0) += 1;
        }
    }

    /// Records a read of variable `cell`: the pending store (if any) is
    /// marked read-back and stops being a dead-store candidate.
    pub(crate) fn read(&mut self, cell: Addr) {
        if let Some((u, s, n)) = self.last_store.remove(&cell) {
            fate(&mut self.witness.units, u, s, n).read_back += 1;
        }
    }

    /// Finalizes and takes the witness: every still-pending store was
    /// never read, so it counts as dead. The per-unit slots are re-seeded
    /// (same origins, empty counters) so the engine can keep running.
    pub(crate) fn take(&mut self) -> JsWitness {
        let pending: Vec<_> = self.last_store.drain().map(|(_, site)| site).collect();
        for (u, s, n) in pending {
            fate(&mut self.witness.units, u, s, n).dead += 1;
        }
        self.stack.clear();
        let fresh = JsWitness {
            units: self
                .witness
                .units
                .iter()
                .map(|u| UnitWitness {
                    origin: u.origin.clone(),
                    ..UnitWitness::default()
                })
                .collect(),
        };
        std::mem::replace(&mut self.witness, fresh)
    }

    /// Registers the witness slot for a newly-registered script unit.
    pub(crate) fn add_unit(&mut self, origin: &str) {
        self.witness.units.push(UnitWitness {
            origin: origin.to_owned(),
            ..UnitWitness::default()
        });
    }
}

fn push_span(units: &mut [UnitWitness], unit: usize, stmt: u32, start: u64, end: u64) {
    if let Some(u) = units.get_mut(unit) {
        u.self_spans.entry(stmt).or_default().push((start, end));
    }
}

fn fate(units: &mut [UnitWitness], unit: usize, stmt: u32, name: String) -> &mut StoreFate {
    // Witness slots exist for every registered unit; a stale index (after
    // `take`) still resolves because slots are re-seeded in place.
    units
        .get_mut(unit)
        .expect("witness unit registered")
        .stores
        .entry((stmt, name))
        .or_default()
}

#[cfg(test)]
mod tests {
    use wasteprof_dom::Document;
    use wasteprof_trace::{Recorder, Region, ThreadKind};

    use crate::{JsEngine, JsWitness};

    fn run(src: &str) -> JsWitness {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
        let mut doc = Document::new(&mut rec);
        let body = doc.create_element(&mut rec, "body", &[]);
        doc.append_child(&mut rec, doc.root(), body);
        let mut js = JsEngine::new();
        let range = rec.alloc(Region::Input, src.len() as u32);
        js.load_script(&mut rec, &mut doc, src, range, "test.js")
            .unwrap();
        js.take_witness()
    }

    #[test]
    fn store_fates_and_exec_counts() {
        let w = run("var a = 1; a = 2; var b = a; b = 9;");
        let u = w.unit("test.js").unwrap();
        // `var a = 1` is overwritten by `a = 2` without a read: dead.
        let f0 = u.stores[&(0, "a".to_owned())];
        assert_eq!((f0.stores, f0.read_back, f0.dead), (1, 0, 1));
        // `a = 2` is read back by `var b = a`.
        let f1 = u.stores[&(1, "a".to_owned())];
        assert_eq!((f1.stores, f1.read_back, f1.dead), (1, 1, 0));
        // `b = 9` is never read: finalized dead at teardown.
        let f3 = u.stores[&(3, "b".to_owned())];
        assert_eq!((f3.stores, f3.read_back, f3.dead), (1, 0, 1));
        assert_eq!(u.exec_count(0), 1);
        assert!(u.self_instructions(1) > 0);
        assert_eq!(w.unit("test.js").unwrap().exec.len(), 4);
    }

    #[test]
    fn loop_bodies_count_and_untaken_branches_stay_zero() {
        let w = run("var i = 0; while (i < 3) { i += 1; } if (i > 99) { i = 0; }");
        let u = w.unit("test.js").unwrap();
        assert_eq!(u.exec_count(1), 1, "while statement entered once");
        assert_eq!(u.exec_count(2), 3, "loop body per iteration");
        assert_eq!(u.exec_count(4), 0, "untaken branch body never runs");
        // Every `i += 1` store is read back by the next condition check.
        let f = u.stores[&(2, "i".to_owned())];
        assert_eq!((f.stores, f.read_back, f.dead), (3, 3, 0));
    }

    #[test]
    fn call_counts_cover_every_entry_path() {
        let w = run(concat!(
            "function twice(f) { f(); f(); }\n",
            "function inc() { return 1; }\n",
            "function never() { return 2; }\n",
            "var g = function () { return 3; };\n",
            "twice(inc); g();",
        ));
        let u = w.unit("test.js").unwrap();
        assert_eq!(u.call_count(0), 1, "twice called once");
        assert_eq!(u.call_count(1), 2, "inc called twice through a variable");
        assert_eq!(u.call_count(2), 0, "never is never invoked");
        assert_eq!(u.call_count(3), 1, "function expression called once");
    }
}
