//! Runtime values, objects, scopes, and errors of the JS engine.

use std::fmt;
use std::rc::Rc;

use std::collections::HashMap;

use wasteprof_trace::{Addr, AddrRange};

/// Handle to a heap object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ObjId(pub u32);

/// Handle to a runtime function (closure identity).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FunId(pub u32);

/// Handle to a scope in the scope arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScopeId(pub u32);

/// A JavaScript value.
///
/// Beyond the language's own values, the engine models the handful of host
/// objects page scripts use: `document`, `window`, `console`, `Math`,
/// `performance`, `navigator`, DOM nodes, and the `style` / `classList`
/// views of a node.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// `undefined`.
    #[default]
    Undefined,
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (all numbers are f64).
    Num(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Plain object or array.
    Obj(ObjId),
    /// Function closure.
    Fun(FunId),
    /// A DOM node reference.
    Node(wasteprof_dom::NodeId),
    /// The `document` host object.
    Document,
    /// The `window` host object.
    Window,
    /// The `console` host object.
    Console,
    /// The `Math` host object.
    MathObj,
    /// The `performance` host object.
    Performance,
    /// The `navigator` host object.
    Navigator,
    /// `node.style` view.
    Style(wasteprof_dom::NodeId),
    /// `node.classList` view.
    ClassList(wasteprof_dom::NodeId),
}

impl Value {
    /// JS truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            _ => true,
        }
    }

    /// Numeric coercion (NaN when not meaningful).
    pub fn as_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Bool(true) => 1.0,
            Value::Bool(false) => 0.0,
            Value::Str(s) => s.parse().unwrap_or(f64::NAN),
            Value::Null => 0.0,
            _ => f64::NAN,
        }
    }

    /// String coercion.
    pub fn as_str(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Node(_) => "[object Node]".into(),
            Value::Obj(_) => "[object Object]".into(),
            Value::Fun(_) => "function".into(),
            _ => "[object]".into(),
        }
    }

    /// Loose equality (modeled as strict-ish over our value set).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined | Value::Null, Value::Undefined | Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Obj(a), Value::Obj(b)) => a == b,
            (Value::Fun(a), Value::Fun(b)) => a == b,
            (Value::Node(a), Value::Node(b)) => a == b,
            (Value::Num(a), Value::Str(s)) | (Value::Str(s), Value::Num(a)) => {
                s.parse::<f64>().map(|b| *a == b).unwrap_or(false)
            }
            _ => false,
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.into())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A value plus the trace cell it lives in — what every evaluation returns.
#[derive(Clone, Debug)]
pub struct Ev {
    /// The value.
    pub v: Value,
    /// Cell(s) holding it in the trace's virtual memory.
    pub cell: AddrRange,
}

/// One property of an object (value + trace cell).
#[derive(Clone, Debug)]
pub struct Prop {
    /// Property value.
    pub value: Value,
    /// Trace cell of the property.
    pub cell: Addr,
}

/// A heap object: a property map (arrays use index keys plus `length`).
#[derive(Clone, Debug, Default)]
pub struct JsObject {
    /// Properties by name.
    pub props: HashMap<String, Prop>,
    /// True if created from an array literal.
    pub is_array: bool,
}

/// One variable slot.
#[derive(Clone, Debug)]
pub struct Slot {
    /// Current value.
    pub value: Value,
    /// Trace cell of the variable.
    pub cell: Addr,
}

/// A lexical scope.
#[derive(Clone, Debug)]
pub struct Scope {
    /// Variables declared in this scope.
    pub vars: HashMap<String, Slot>,
    /// Enclosing scope.
    pub parent: Option<ScopeId>,
}

/// Runtime errors (reported like a console error; the page carries on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsError {
    /// Human-readable description.
    pub message: String,
}

impl JsError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        JsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "js error: {}", self.message)
    }
}

impl std::error::Error for JsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::from("").truthy());
        assert!(Value::from("x").truthy());
        assert!(Value::Num(3.0).truthy());
        assert!(Value::Obj(ObjId(0)).truthy());
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::from("42").as_num(), 42.0);
        assert!(Value::Undefined.as_num().is_nan());
        assert_eq!(Value::Num(3.0).as_str(), "3");
        assert_eq!(Value::Num(3.5).as_str(), "3.5");
    }

    #[test]
    fn equality() {
        assert!(Value::Num(1.0).loose_eq(&Value::from("1")));
        assert!(Value::Null.loose_eq(&Value::Undefined));
        assert!(!Value::Num(1.0).loose_eq(&Value::Num(2.0)));
        assert!(
            Value::Node(wasteprof_dom::NodeId(3)).loose_eq(&Value::Node(wasteprof_dom::NodeId(3)))
        );
    }
}
