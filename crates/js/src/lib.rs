#![forbid(unsafe_code)]

//! A miniature JavaScript engine for the wasteprof browser, modeled after
//! the V8 pipeline the paper instruments: eager parse + compile of every
//! function (`v8::Parser`, `v8::Compiler`), a traced interpreter
//! (`v8::JsFunction::*`), DOM/host bindings, event handlers, timers, and
//! DevTools-style unused-code coverage (the JS half of Table I).
//!
//! Processing JavaScript is the paper's single largest category of
//! *potentially unnecessary* computation (Figure 5): imported library code
//! that never runs is compiled anyway, and much of what runs never affects
//! the pixels. This engine reproduces both behaviours at the trace level.

#![warn(missing_docs)]

mod ast;
mod engine;
mod interp;
mod lexer;
mod numbering;
mod parser;
mod value;
mod witness;

pub use ast::{AssignOp, BinOp, Expr, FuncDef, Script, Stmt, Target, UnOp};
pub use engine::{JsCoverage, JsEngine, PendingBeacon, PendingTimer, DEFAULT_STEP_BUDGET};
pub use lexer::{lex, LexError, Spanned, Tok};
pub use numbering::{number_script, StmtNode, UnitNumbering};
pub use parser::{parse, ParseError};
pub use value::{Ev, FunId, JsError, JsObject, ObjId, Prop, Scope, ScopeId, Slot, Value};
pub use witness::{JsWitness, StoreFate, UnitWitness};
