//! The JavaScript engine: script loading, compilation, host bindings, and
//! coverage accounting.
//!
//! The engine is deliberately V8-shaped for the purposes of the paper's
//! characterization:
//!
//! * **Parsing and compilation are eager and traced.** Every function in a
//!   script is compiled at load time into cells of the `Code` region
//!   (`v8::Compiler::CompileFunction`), reading its source span. Functions
//!   that never run leave that work as a dataflow dead end — the dominant
//!   "JavaScript" slice of unnecessary computation in Figure 5, and the
//!   paper's headline deferral opportunity.
//! * **Literals link execution to compilation.** A function's literal
//!   values live inside its code range; evaluating a literal reads its
//!   cell, so the compile work of *executed* code can enter the slice.
//! * **Coverage is measured like DevTools.** Bytes of functions that never
//!   executed are the unused-JS half of Table I.

use std::collections::HashMap;

use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{site, Addr, AddrRange, FuncId, Recorder, Region};

use crate::ast::Script;
use crate::numbering::{number_script, UnitNumbering};
use crate::parser::{parse, ParseError};
use crate::value::{Ev, FunId, JsError, JsObject, Prop, Scope, ScopeId, Slot, Value};
use crate::witness::{JsWitness, WitnessState};

/// Default per-entry-point step budget (guards against runaway scripts).
pub const DEFAULT_STEP_BUDGET: u64 = 2_000_000;

pub(crate) struct ScriptUnit {
    pub script: Script,
    pub src: AddrRange,
    pub lit_cells: Vec<Addr>,
    pub origin: String,
    pub top_executed: bool,
    /// Index of this script's first function in the engine's def table.
    pub fn_base: usize,
    /// Stable statement numbering shared with the static analyzer.
    pub numbering: UnitNumbering,
}

pub(crate) struct FnDef {
    pub script: usize,
    pub idx: usize,
    pub code: AddrRange,
    pub trace_fn: FuncId,
    pub executed: bool,
    pub compiled: bool,
    pub src_len: u32,
    pub src_offset: u32,
}

pub(crate) struct Closure {
    pub def: usize,
    pub scope: ScopeId,
}

/// A timer queued by `setTimeout` / `requestAnimationFrame`, for the
/// browser's event loop to fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingTimer {
    /// The callback closure.
    pub fun: FunId,
    /// Requested delay in milliseconds.
    pub delay_ms: f64,
}

/// An analytics beacon queued by `navigator.sendBeacon`, for the browser's
/// IO thread to transmit.
#[derive(Debug, Clone)]
pub struct PendingBeacon {
    /// Destination URL.
    pub url: String,
    /// Cells holding the payload (read by the eventual `sendto`).
    pub payload: AddrRange,
}

/// Unused-code accounting for scripts (the JS half of Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsCoverage {
    /// Total script source bytes loaded.
    pub total_bytes: u64,
    /// Bytes of code that executed at least once.
    pub used_bytes: u64,
}

impl JsCoverage {
    /// Bytes never executed.
    pub fn unused_bytes(&self) -> u64 {
        self.total_bytes.saturating_sub(self.used_bytes)
    }

    /// Unused fraction in `[0, 1]`.
    pub fn unused_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.unused_bytes() as f64 / self.total_bytes as f64
        }
    }
}

/// The JavaScript engine for one page.
///
/// # Examples
///
/// ```
/// use wasteprof_dom::Document;
/// use wasteprof_js::JsEngine;
/// use wasteprof_trace::{Recorder, Region, ThreadKind};
///
/// let mut rec = Recorder::new();
/// rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
/// let mut doc = Document::new(&mut rec);
/// let body = doc.create_element(&mut rec, "body", &[]);
/// doc.append_child(&mut rec, doc.root(), body);
/// doc.set_attribute(&mut rec, body, "id", "b", &[]);
///
/// let mut js = JsEngine::new();
/// let src = "document.getElementById('b').textContent = 'hi';";
/// let range = rec.alloc(Region::Input, src.len() as u32);
/// js.load_script(&mut rec, &mut doc, src, range, "inline").unwrap();
/// assert_eq!(doc.text_content(body), "hi");
/// ```
pub struct JsEngine {
    pub(crate) scripts: Vec<ScriptUnit>,
    pub(crate) defs: Vec<FnDef>,
    pub(crate) closures: Vec<Closure>,
    pub(crate) heap: Vec<JsObject>,
    pub(crate) scopes: Vec<Scope>,
    pub(crate) global: ScopeId,
    pub(crate) handlers: HashMap<(NodeId, String), Vec<FunId>>,
    pub(crate) window_handlers: HashMap<String, Vec<FunId>>,
    pub(crate) timers: Vec<PendingTimer>,
    pub(crate) beacons: Vec<PendingBeacon>,
    pub(crate) rng: u64,
    pub(crate) steps_left: u64,
    pub(crate) step_budget: u64,
    pub(crate) viewport: (f64, f64),
    pub(crate) viewport_cell: Option<Addr>,
    pub(crate) pending_title: Option<(String, AddrRange)>,
    pub(crate) errors: Vec<JsError>,
    pub(crate) call_depth: usize,
    pub(crate) lazy_compilation: bool,
    pub(crate) compile_instructions: u64,
    pub(crate) wit: WitnessState,
}

impl JsEngine {
    /// Creates an engine with an empty global scope.
    pub fn new() -> Self {
        JsEngine {
            scripts: Vec::new(),
            defs: Vec::new(),
            closures: Vec::new(),
            heap: Vec::new(),
            scopes: vec![Scope {
                vars: HashMap::new(),
                parent: None,
            }],
            global: ScopeId(0),
            handlers: HashMap::new(),
            window_handlers: HashMap::new(),
            timers: Vec::new(),
            beacons: Vec::new(),
            rng: 0x9e3779b97f4a7c15,
            steps_left: DEFAULT_STEP_BUDGET,
            step_budget: DEFAULT_STEP_BUDGET,
            viewport: (1366.0, 768.0),
            viewport_cell: None,
            pending_title: None,
            errors: Vec::new(),
            call_depth: 0,
            lazy_compilation: false,
            compile_instructions: 0,
            wit: WitnessState::default(),
        }
    }

    /// Takes the dynamic execution witness accumulated so far (statement
    /// execution counts, variable store fates, per-statement self spans).
    ///
    /// Still-pending stores are finalized as dead (never read). The
    /// engine's witness resets to empty and keeps collecting, so this can
    /// be called once at session teardown or repeatedly between phases.
    pub fn take_witness(&mut self) -> JsWitness {
        self.wit.take()
    }

    /// Switches between the paper's observed behaviour (eager compilation
    /// of every function at load, the default) and its proposed
    /// optimization: *deferring* compilation until a function is actually
    /// called ("compiling a piece of JavaScript code when it is really
    /// needed", §VII).
    pub fn set_lazy_compilation(&mut self, lazy: bool) {
        self.lazy_compilation = lazy;
    }

    /// Instructions spent in the compiler so far (for the deferral
    /// ablation).
    pub fn compile_instructions(&self) -> u64 {
        self.compile_instructions
    }

    /// Sets the viewport reported by `window.innerWidth/innerHeight`.
    pub fn set_viewport(&mut self, rec: &mut Recorder, width: f64, height: f64) {
        self.viewport = (width, height);
        let cell = *self
            .viewport_cell
            .get_or_insert_with(|| rec.alloc_cell(Region::Heap));
        rec.compute(site!(), &[], &[cell.into()]);
    }

    /// Loads a script: parse, eagerly compile every function, then run the
    /// top-level code.
    ///
    /// # Errors
    ///
    /// Returns the parse or runtime error; the engine remains usable (the
    /// browser logs the error and carries on, as real ones do).
    pub fn load_script(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        src: &str,
        src_range: AddrRange,
        origin: &str,
    ) -> Result<(), JsError> {
        let script = self.parse_traced(rec, src, src_range).map_err(|e| {
            let err = JsError::new(format!("{origin}: {e}"));
            self.errors.push(err.clone());
            err
        })?;
        let unit_idx = self.register(rec, script, src_range, origin);
        self.steps_left = self.step_budget;
        let result = self.run_top_level(rec, doc, unit_idx);
        if let Err(e) = &result {
            self.errors.push(e.clone());
        }
        result
    }

    fn parse_traced(
        &mut self,
        rec: &mut Recorder,
        src: &str,
        src_range: AddrRange,
    ) -> Result<Script, ParseError> {
        let f = rec.intern_func("v8::Parser::ParseProgram");
        rec.in_func(site!(), f, |rec| {
            let artifact = rec.alloc_cell(Region::Heap);
            rec.compute_weighted(
                site!(),
                &[src_range],
                &[artifact.into()],
                src.len() as u32 / 8,
            );
            parse(src)
        })
    }

    /// Registers a parsed script: allocates code ranges and literal cells,
    /// and emits the eager compilation of every function.
    fn register(
        &mut self,
        rec: &mut Recorder,
        script: Script,
        src: AddrRange,
        origin: &str,
    ) -> usize {
        let unit_idx = self.scripts.len();
        let fn_base = self.defs.len();
        let numbering = number_script(&script);
        let compiler = rec.intern_func("v8::Compiler::CompileFunction");
        let mut lit_cells = vec![Addr::new(0); script.literal_count as usize];

        // Top-level "function": its literals live in a top code range.
        let top_code = rec.alloc(Region::Code, 16 + 8 * script.literals.len().max(1) as u32);
        for (i, &lit) in script.literals.iter().enumerate() {
            lit_cells[lit as usize] = top_code.start().offset(16 + 8 * i as u64);
        }
        rec.in_func(site!(), compiler, |rec| {
            rec.compute_weighted(site!(), &[src], &[top_code], script.src_len / 4);
        });

        for (idx, def) in script.funcs.iter().enumerate() {
            let code = rec.alloc(Region::Code, 16 + 8 * def.literals.len().max(1) as u32);
            for (i, &lit) in def.literals.iter().enumerate() {
                lit_cells[lit as usize] = code.start().offset(16 + 8 * i as u64);
            }
            let name = def
                .name
                .clone()
                .unwrap_or_else(|| format!("anonymous_{unit_idx}_{idx}"));
            let trace_fn = rec.intern_func(&format!("v8::JsFunction::{name}"));
            let compiled = if self.lazy_compilation {
                // Deferral: only a cheap pre-parse scope scan happens now;
                // full compilation waits for the first call.
                rec.in_func(site!(), compiler, |rec| {
                    let scope_info = rec.alloc_cell(Region::Heap);
                    let span = span_of(src, def.src_offset, def.src_len);
                    rec.compute_weighted(site!(), &[span], &[scope_info.into()], 2);
                });
                false
            } else {
                let span = span_of(src, def.src_offset, def.src_len);
                let before = rec.pos().0;
                rec.in_func(site!(), compiler, |rec| {
                    rec.compute_weighted(site!(), &[span], &[code], def.src_len * 2);
                });
                self.compile_instructions += rec.pos().0 - before;
                true
            };
            self.defs.push(FnDef {
                script: unit_idx,
                idx,
                code,
                trace_fn,
                executed: false,
                compiled,
                src_len: def.src_len,
                src_offset: def.src_offset,
            });
        }

        self.scripts.push(ScriptUnit {
            script,
            src,
            lit_cells,
            origin: origin.to_owned(),
            top_executed: false,
            fn_base,
            numbering,
        });
        self.wit.add_unit(origin);
        unit_idx
    }

    /// Compiles a deferred function on its first call.
    pub(crate) fn ensure_compiled(&mut self, rec: &mut Recorder, def_idx: usize) {
        if self.defs[def_idx].compiled {
            return;
        }
        self.defs[def_idx].compiled = true;
        let unit = self.defs[def_idx].script;
        let code = self.defs[def_idx].code;
        let (off, len) = (self.defs[def_idx].src_offset, self.defs[def_idx].src_len);
        let span = span_of(self.scripts[unit].src, off, len);
        let compiler = rec.intern_func("v8::Compiler::CompileFunction");
        let before = rec.pos().0;
        rec.in_func(site!(), compiler, |rec| {
            rec.compute_weighted(site!(), &[span], &[code], len * 2);
        });
        self.compile_instructions += rec.pos().0 - before;
    }

    fn run_top_level(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
    ) -> Result<(), JsError> {
        self.scripts[unit].top_executed = true;
        let origin = self.scripts[unit].origin.clone();
        let trace_fn = rec.intern_func(&format!("v8::JsFunction::TopLevel[{origin}]"));
        // Top-level declarations are globals, shared across scripts.
        let scope = self.global;
        let body = self.scripts[unit].script.body.clone();
        let nodes = std::rc::Rc::clone(&self.scripts[unit].numbering.top);
        rec.enter(site!(), trace_fn);
        let result = self
            .exec_hoisted_block(rec, doc, unit, &body, &nodes, scope)
            .map(|_| ());
        rec.leave(site!());
        result
    }

    // ----- scope & heap helpers ----------------------------------------

    pub(crate) fn push_scope(&mut self, parent: ScopeId) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        self.scopes.push(Scope {
            vars: HashMap::new(),
            parent: Some(parent),
        });
        id
    }

    pub(crate) fn declare(
        &mut self,
        rec: &mut Recorder,
        scope: ScopeId,
        name: &str,
        value: Value,
    ) -> Addr {
        let cell = rec.alloc_cell(Region::Heap);
        self.scopes[scope.0 as usize]
            .vars
            .insert(name.to_owned(), Slot { value, cell });
        cell
    }

    pub(crate) fn lookup(&self, scope: ScopeId, name: &str) -> Option<&Slot> {
        let mut cur = Some(scope);
        while let Some(s) = cur {
            let sc = &self.scopes[s.0 as usize];
            if let Some(slot) = sc.vars.get(name) {
                return Some(slot);
            }
            cur = sc.parent;
        }
        None
    }

    pub(crate) fn lookup_mut(&mut self, scope: ScopeId, name: &str) -> Option<&mut Slot> {
        let mut cur = Some(scope);
        while let Some(s) = cur {
            // Two-phase to satisfy the borrow checker.
            if self.scopes[s.0 as usize].vars.contains_key(name) {
                return self.scopes[s.0 as usize].vars.get_mut(name);
            }
            cur = self.scopes[s.0 as usize].parent;
        }
        None
    }

    pub(crate) fn new_object(&mut self, is_array: bool) -> crate::value::ObjId {
        let id = crate::value::ObjId(self.heap.len() as u32);
        self.heap.push(JsObject {
            props: HashMap::new(),
            is_array,
        });
        id
    }

    pub(crate) fn new_closure(&mut self, def: usize, scope: ScopeId) -> FunId {
        let id = FunId(self.closures.len() as u32);
        self.closures.push(Closure { def, scope });
        id
    }

    pub(crate) fn set_prop(
        &mut self,
        rec: &mut Recorder,
        obj: crate::value::ObjId,
        name: &str,
        value: Value,
        src: &[AddrRange],
    ) -> Addr {
        let entry = self.heap[obj.0 as usize].props.entry(name.to_owned());
        let cell = match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().value = value;
                o.get().cell
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let cell = rec.alloc_cell(Region::Heap);
                v.insert(Prop { value, cell });
                cell
            }
        };
        rec.compute(site!(), src, &[cell.into()]);
        cell
    }

    pub(crate) fn next_random(&mut self) -> f64 {
        // xorshift64*: deterministic, seedable.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Seeds `Math.random` (workloads use this for reproducibility).
    pub fn seed_random(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    /// Overrides the per-entry-point step budget (default
    /// [`DEFAULT_STEP_BUDGET`]).
    pub fn set_step_budget(&mut self, budget: u64) {
        self.step_budget = budget;
        self.steps_left = budget;
    }

    // ----- event / timer plumbing for the browser ----------------------

    /// True if `node` (or an ancestor, via bubbling) has a handler for
    /// `event`.
    pub fn has_handler(&self, doc: &Document, node: NodeId, event: &str) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if self.handlers.contains_key(&(n, event.to_owned())) {
                return true;
            }
            cur = doc.node(n).parent;
        }
        false
    }

    /// Dispatches a DOM event with bubbling. Returns true if any handler
    /// ran.
    pub fn dispatch_event(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        node: NodeId,
        event: &str,
    ) -> bool {
        let mut to_run = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            if let Some(hs) = self.handlers.get(&(n, event.to_owned())) {
                to_run.extend(hs.iter().copied());
            }
            cur = doc.node(n).parent;
        }
        self.run_handlers(rec, doc, &to_run)
    }

    /// Dispatches a window-level event (`scroll`, `resize`, `load`).
    pub fn dispatch_window_event(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        event: &str,
    ) -> bool {
        let to_run: Vec<FunId> = self.window_handlers.get(event).cloned().unwrap_or_default();
        self.run_handlers(rec, doc, &to_run)
    }

    fn run_handlers(&mut self, rec: &mut Recorder, doc: &mut Document, hs: &[FunId]) -> bool {
        let mut ran = false;
        for &h in hs {
            self.steps_left = self.step_budget;
            if let Err(e) = self.call_closure(rec, doc, h, Vec::new()) {
                self.errors.push(e);
            }
            ran = true;
        }
        ran
    }

    /// Fires a queued timer callback.
    pub fn fire_timer(&mut self, rec: &mut Recorder, doc: &mut Document, timer: PendingTimer) {
        self.steps_left = self.step_budget;
        if let Err(e) = self.call_closure(rec, doc, timer.fun, Vec::new()) {
            self.errors.push(e);
        }
    }

    /// Drains timers queued since the last call.
    pub fn take_timers(&mut self) -> Vec<PendingTimer> {
        std::mem::take(&mut self.timers)
    }

    /// Drains pending analytics beacons.
    pub fn take_beacons(&mut self) -> Vec<PendingBeacon> {
        std::mem::take(&mut self.beacons)
    }

    /// Takes a pending `document.title` update (for the IPC to the browser
    /// process).
    pub fn take_title(&mut self) -> Option<(String, AddrRange)> {
        self.pending_title.take()
    }

    /// Runtime/parse errors collected so far (the "console").
    pub fn errors(&self) -> &[JsError] {
        &self.errors
    }

    /// Reads a global variable (top-level `var`s land in the global
    /// scope). Used by tests and examples to observe script effects.
    pub fn lookup_global(&self, name: &str) -> Option<Value> {
        self.lookup(self.global, name).map(|s| s.value.clone())
    }

    // ----- coverage (Table I) -------------------------------------------

    /// Unused-JS accounting over everything executed so far.
    ///
    /// A function's *own* bytes exclude the spans of functions nested in
    /// it, so coverage is exact even for module-pattern code.
    pub fn coverage(&self) -> JsCoverage {
        let mut cov = JsCoverage::default();
        for (unit_idx, unit) in self.scripts.iter().enumerate() {
            cov.total_bytes += unit.script.src_len as u64;
            let defs: Vec<&FnDef> = self.defs.iter().filter(|d| d.script == unit_idx).collect();
            let own = |start: u32, len: u32, exclude_self: Option<usize>| -> u64 {
                let end = start + len;
                let mut own = len as u64;
                for (i, d) in defs.iter().enumerate() {
                    if Some(i) == exclude_self {
                        continue;
                    }
                    // Direct children only: nested spans inside another
                    // nested span are already excluded from that span.
                    if d.src_offset >= start && d.src_offset + d.src_len <= end {
                        let is_direct = !defs.iter().enumerate().any(|(j, e)| {
                            j != i
                                && Some(j) != exclude_self
                                && e.src_offset >= start
                                && e.src_offset + e.src_len <= end
                                && e.src_offset <= d.src_offset
                                && d.src_offset + d.src_len <= e.src_offset + e.src_len
                        });
                        if is_direct {
                            own = own.saturating_sub(d.src_len as u64);
                        }
                    }
                }
                own
            };
            if unit.top_executed {
                cov.used_bytes += own(0, unit.script.src_len, None);
            }
            for (i, d) in defs.iter().enumerate() {
                if d.executed {
                    cov.used_bytes += own(d.src_offset, d.src_len, Some(i));
                }
            }
        }
        cov
    }

    /// Number of function definitions registered.
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }

    /// Number of function definitions that ever executed.
    pub fn executed_count(&self) -> usize {
        self.defs.iter().filter(|d| d.executed).count()
    }
}

impl Default for JsEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Sub-span of a script's source range, clamped to fit.
pub(crate) fn span_of(src: AddrRange, offset: u32, len: u32) -> AddrRange {
    let len = len.max(1);
    if offset + len <= src.len() {
        src.slice(offset, len)
    } else {
        src
    }
}

pub(crate) fn ev_undefined(rec: &mut Recorder) -> Ev {
    let cell = rec.alloc_stack(8);
    Ev {
        v: Value::Undefined,
        cell,
    }
}
