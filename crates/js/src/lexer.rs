//! JavaScript lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Num(f64),
    /// String literal (quotes removed, escapes decoded).
    Str(String),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation or operator, e.g. `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// True if this token is the given punctuation.
    pub fn is(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// True if this token is the given keyword/identifier.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset where the token starts.
    pub offset: u32,
}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "===", "!==", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%", "<", ">", "=", "!", "?",
    ":",
];

/// Errors from lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the problem.
    pub offset: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes a source string into tokens (with a trailing [`Tok::Eof`]).
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings or bytes that start no
/// token.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        let offset = i as u32;
        // Strings.
        if b == b'"' || b == b'\'' {
            let quote = b;
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(LexError {
                            message: "unterminated string".into(),
                            offset,
                        })
                    }
                    Some(&c) if c == quote => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        let esc = bytes.get(i + 1).copied().unwrap_or(b'\\');
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            c => c as char,
                        });
                        i += 2;
                    }
                    Some(&c) => {
                        s.push(c as char);
                        i += 1;
                    }
                }
            }
            out.push(Spanned {
                tok: Tok::Str(s),
                offset,
            });
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            let start = i;
            while matches!(bytes.get(i), Some(&c) if c.is_ascii_digit() || c == b'.') {
                i += 1;
            }
            let text = &src[start..i];
            let n = text.parse::<f64>().map_err(|_| LexError {
                message: format!("bad number {text:?}"),
                offset,
            })?;
            out.push(Spanned {
                tok: Tok::Num(n),
                offset,
            });
            continue;
        }
        // Identifiers / keywords.
        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            let start = i;
            while matches!(bytes.get(i), Some(&c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'$')
            {
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(src[start..i].to_owned()),
                offset,
            });
            continue;
        }
        // Punctuation.
        let mut matched = false;
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    offset,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                message: format!("unexpected byte {:?}", b as char),
                offset,
            });
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        offset: bytes.len() as u32,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers_strings_idents() {
        assert_eq!(
            kinds("var x = 42.5; y = 'hi'"),
            vec![
                Tok::Ident("var".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Num(42.5),
                Tok::Punct(";"),
                Tok::Ident("y".into()),
                Tok::Punct("="),
                Tok::Str("hi".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn multichar_operators_longest_match() {
        assert_eq!(
            kinds("a === b != c <= d && e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("==="),
                Tok::Ident("b".into()),
                Tok::Punct("!="),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Punct("&&"),
                Tok::Ident("e".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\n/* block\nmore */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#"'a\nb\'c'"#),
            vec![Tok::Str("a\nb'c".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn unknown_byte_errors() {
        assert!(lex("a # b").is_err());
    }
}
