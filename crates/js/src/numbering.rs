//! Stable statement numbering shared by the interpreter and the static
//! analyzer.
//!
//! `wasteprof-staticjs` predicts facts about *statements* ("this store is
//! dead", "this statement can never execute") and the interpreter's
//! execution witness records facts about *statements* ("this statement ran
//! 7 times", "this store was read back"). For the referee to match the two
//! sides up, both must agree on what "statement 12 of app.js" means. This
//! module is that contract: a deterministic preorder numbering of every
//! statement in a parsed [`Script`], derived from the AST alone, so any
//! consumer that parses the same source gets the same ids.
//!
//! The numbering mirrors the AST shape exactly: top-level statements
//! first, then each function's body in function-table order, each walked
//! in preorder. A [`StmtNode`] carries the id plus the node lists for the
//! statement's nested blocks (`If` has two, loops have their body, `For`
//! also has its optional init statement), in the same positions the
//! interpreter executes them.

use std::rc::Rc;

use crate::ast::{Script, Stmt};

/// Numbering node for one statement: its stable id plus the numbering of
/// each nested statement block, in execution order.
///
/// Block layout per statement kind:
/// * `If` — `blocks[0]` is the then-branch, `blocks[1]` the else-branch.
/// * `While` — `blocks[0]` is the loop body.
/// * `For` — `blocks[0]` holds the init statement (empty when absent),
///   `blocks[1]` the loop body.
/// * every other statement — no blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtNode {
    /// Stable statement id, unique within one script.
    pub id: u32,
    /// Numbering of the statement's nested blocks (see layout above).
    pub blocks: Vec<Vec<StmtNode>>,
}

/// The full numbering of one script: top-level body plus every function
/// body, with a shared id space.
///
/// Node lists are behind [`Rc`] so the interpreter can clone a handle
/// across its recursion without cloning the tree (mirroring how it shares
/// statement bodies).
#[derive(Debug, Clone)]
pub struct UnitNumbering {
    /// Numbering of the top-level statements.
    pub top: Rc<Vec<StmtNode>>,
    /// Numbering of each function body, in function-table order.
    pub funcs: Vec<Rc<Vec<StmtNode>>>,
    /// Total statements numbered; ids are `0..stmt_count`.
    pub stmt_count: u32,
}

/// Numbers every statement of `script` deterministically: top-level body
/// first, then each function body in table order, preorder within each.
pub fn number_script(script: &Script) -> UnitNumbering {
    let mut next = 0u32;
    let top = Rc::new(number_block(&script.body, &mut next));
    let funcs = script
        .funcs
        .iter()
        .map(|f| Rc::new(number_block(&f.body, &mut next)))
        .collect();
    UnitNumbering {
        top,
        funcs,
        stmt_count: next,
    }
}

fn number_block(body: &[Stmt], next: &mut u32) -> Vec<StmtNode> {
    body.iter().map(|s| number_stmt(s, next)).collect()
}

fn number_stmt(stmt: &Stmt, next: &mut u32) -> StmtNode {
    let id = *next;
    *next += 1;
    let blocks = match stmt {
        Stmt::If(_, then, els) => {
            vec![number_block(then, next), number_block(els, next)]
        }
        Stmt::While(_, body) => vec![number_block(body, next)],
        Stmt::For(init, _, _, body) => {
            let init_nodes = match init {
                Some(s) => vec![number_stmt(s, next)],
                None => Vec::new(),
            };
            vec![init_nodes, number_block(body, next)]
        }
        _ => Vec::new(),
    };
    StmtNode { id, blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn numbering_is_deterministic_preorder() {
        let src = "var a = 1; if (a) { a = 2; } else { a = 3; } \
                   function f() { while (a < 9) { a += 1; } return a; } f();";
        let script = parse(src).unwrap();
        let n1 = number_script(&script);
        let n2 = number_script(&script);
        assert_eq!(*n1.top, *n2.top);
        assert_eq!(n1.stmt_count, n2.stmt_count);
        // Top-level: var, if (+2 nested), f-decl, call = 6; function body:
        // while (+1 nested), return = 3.
        assert_eq!(n1.stmt_count, 9);
        assert_eq!(n1.top[0].id, 0);
        assert_eq!(n1.top[1].id, 1); // the if
        assert_eq!(n1.top[1].blocks[0][0].id, 2); // then
        assert_eq!(n1.top[1].blocks[1][0].id, 3); // else
        assert_eq!(n1.funcs[0][0].id, 6); // while
        assert_eq!(n1.funcs[0][0].blocks[0][0].id, 7); // loop body
    }

    #[test]
    fn for_init_occupies_block_zero() {
        let script = parse("for (var i = 0; i < 3; i += 1) { i = i; }").unwrap();
        let n = number_script(&script);
        assert_eq!(n.top[0].id, 0);
        assert_eq!(n.top[0].blocks[0][0].id, 1, "init statement");
        assert_eq!(n.top[0].blocks[1][0].id, 2, "body statement");
        let script = parse("for (; ; ) { break; }").unwrap();
        let n = number_script(&script);
        assert!(n.top[0].blocks[0].is_empty(), "absent init");
        assert_eq!(n.top[0].blocks[1][0].id, 1);
    }
}
