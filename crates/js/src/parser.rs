//! JavaScript parser (Pratt-style expression parsing).

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, Spanned, Tok};

/// Errors from parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the problem.
    pub offset: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a script.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic problem. The engine
/// treats a failing script the way a browser does: the error is reported
/// and the rest of the page carries on.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        funcs: Vec::new(),
        lit_stack: vec![Vec::new()],
        lit_count: 0,
        depth: 0,
    };
    let mut body = Vec::new();
    while !p.peek().is_eof() {
        body.extend(p.statement()?);
    }
    let literals = p.lit_stack.pop().expect("top literal frame");
    Ok(Script {
        body,
        funcs: p.funcs,
        literals,
        literal_count: p.lit_count,
        src_len: src.len() as u32,
    })
}

trait TokExt {
    fn is_eof(&self) -> bool;
}
impl TokExt for Tok {
    fn is_eof(&self) -> bool {
        matches!(self, Tok::Eof)
    }
}

/// Maximum nesting depth of expressions/statements before the parser
/// reports an error instead of overflowing the native stack.
const MAX_PARSE_DEPTH: u32 = 64;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    funcs: Vec<FuncDef>,
    lit_stack: Vec<Vec<LitId>>,
    lit_count: u32,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn offset(&self) -> u32 {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn expect(&mut self, p: &str) -> Result<(), ParseError> {
        if self.peek().is(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek().is(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => self.err(format!("expected identifier, found {t}")),
        }
    }

    fn new_lit(&mut self) -> LitId {
        let id = self.lit_count;
        self.lit_count += 1;
        self.lit_stack.last_mut().expect("literal frame").push(id);
        id
    }

    // ----- statements ---------------------------------------------------

    fn statement(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return self.err("statement nesting too deep");
        }
        let out = self.statement_inner();
        self.depth -= 1;
        out
    }

    fn statement_inner(&mut self) -> Result<Vec<Stmt>, ParseError> {
        match self.peek().clone() {
            Tok::Punct(";") => {
                self.bump();
                Ok(vec![])
            }
            Tok::Punct("{") => self.block(),
            Tok::Ident(kw) => match kw.as_str() {
                "var" | "let" | "const" => {
                    self.bump();
                    let mut out = Vec::new();
                    loop {
                        let name = self.ident()?;
                        let init = if self.eat("=") {
                            Some(self.expression()?)
                        } else {
                            None
                        };
                        out.push(Stmt::Decl(name, init));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat(";");
                    Ok(out)
                }
                "function" => {
                    let idx = self.function(true)?;
                    let name = self.funcs[idx as usize]
                        .name
                        .clone()
                        .expect("declared function has a name");
                    Ok(vec![Stmt::FuncDecl(name, idx)])
                }
                "if" => {
                    self.bump();
                    self.expect("(")?;
                    let cond = self.expression()?;
                    self.expect(")")?;
                    let then = self.statement()?;
                    let els = if self.peek().is_kw("else") {
                        self.bump();
                        self.statement()?
                    } else {
                        vec![]
                    };
                    Ok(vec![Stmt::If(cond, then, els)])
                }
                "while" => {
                    self.bump();
                    self.expect("(")?;
                    let cond = self.expression()?;
                    self.expect(")")?;
                    let body = self.statement()?;
                    Ok(vec![Stmt::While(cond, body)])
                }
                "for" => {
                    self.bump();
                    self.expect("(")?;
                    let init = if self.peek().is(";") {
                        None
                    } else {
                        Some(Box::new({
                            let stmts = self.statement()?;
                            match stmts.len() {
                                1 => stmts.into_iter().next().expect("one statement"),
                                _ => return self.err("for-init must be one statement"),
                            }
                        }))
                    };
                    // statement() consumed a trailing ';' for decls; expr
                    // statements leave it.
                    self.eat(";");
                    let cond = if self.peek().is(";") {
                        None
                    } else {
                        Some(self.expression()?)
                    };
                    self.expect(";")?;
                    let step = if self.peek().is(")") {
                        None
                    } else {
                        Some(self.expression()?)
                    };
                    self.expect(")")?;
                    let body = self.statement()?;
                    Ok(vec![Stmt::For(init, cond, step, body)])
                }
                "return" => {
                    self.bump();
                    let value =
                        if self.peek().is(";") || self.peek().is("}") || self.peek().is_eof() {
                            None
                        } else {
                            Some(self.expression()?)
                        };
                    self.eat(";");
                    Ok(vec![Stmt::Return(value)])
                }
                "break" => {
                    self.bump();
                    self.eat(";");
                    Ok(vec![Stmt::Break])
                }
                "continue" => {
                    self.bump();
                    self.eat(";");
                    Ok(vec![Stmt::Continue])
                }
                _ => {
                    let e = self.expression()?;
                    self.eat(";");
                    Ok(vec![Stmt::Expr(e)])
                }
            },
            _ => {
                let e = self.expression()?;
                self.eat(";");
                Ok(vec![Stmt::Expr(e)])
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect("{")?;
        let mut out = Vec::new();
        while !self.peek().is("}") && !self.peek().is_eof() {
            out.extend(self.statement()?);
        }
        self.expect("}")?;
        Ok(out)
    }

    /// Parses `function [name](params) { body }`; returns its table index.
    fn function(&mut self, named: bool) -> Result<FnIdx, ParseError> {
        let start = self.offset();
        self.bump(); // "function"
        let name = if named || matches!(self.peek(), Tok::Ident(_)) {
            if matches!(self.peek(), Tok::Ident(_)) {
                Some(self.ident()?)
            } else if named {
                return self.err("function declaration needs a name");
            } else {
                None
            }
        } else {
            None
        };
        self.expect("(")?;
        let mut params = Vec::new();
        while !self.peek().is(")") {
            params.push(self.ident()?);
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        self.lit_stack.push(Vec::new());
        let body = self.block()?;
        let literals = self.lit_stack.pop().expect("function literal frame");
        let end = self.toks[self.pos.saturating_sub(1)].offset + 1;
        let idx = self.funcs.len() as FnIdx;
        self.funcs.push(FuncDef {
            name,
            params,
            body: std::rc::Rc::new(body),
            src_offset: start,
            src_len: end.saturating_sub(start),
            literals,
        });
        Ok(idx)
    }

    // ----- expressions ----------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return self.err("expression nesting too deep");
        }
        let out = self.assignment();
        self.depth -= 1;
        out
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Punct("=") => Some(AssignOp::Set),
            Tok::Punct("+=") => Some(AssignOp::Add),
            Tok::Punct("-=") => Some(AssignOp::Sub),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let target = match lhs {
                Expr::Ident(name) => Target::Var(name),
                Expr::Member(obj, prop) => Target::Member(obj, prop),
                Expr::Index(obj, key) => Target::Index(obj, key),
                _ => return self.err("invalid assignment target"),
            };
            let value = self.assignment()?;
            return Ok(Expr::Assign(op, target, Box::new(value)));
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logic_or()?;
        if self.eat("?") {
            let a = self.assignment()?;
            self.expect(":")?;
            let b = self.assignment()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logic_and()?;
        while self.eat("||") {
            let rhs = self.logic_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat("&&") {
            let rhs = self.equality()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("==") | Tok::Punct("===") => BinOp::Eq,
                Tok::Punct("!=") | Tok::Punct("!==") => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("<") => BinOp::Lt,
                Tok::Punct("<=") => BinOp::Le,
                Tok::Punct(">") => BinOp::Gt,
                Tok::Punct(">=") => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        // Unary chains recurse without passing through expression(), so
        // they need their own depth guard (`!!!...!x`).
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return self.err("expression nesting too deep");
        }
        let out = self.unary_inner();
        self.depth -= 1;
        out
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        if self.eat("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.peek().is("++") || self.peek().is("--") {
            // Prefix increment/decrement desugars to compound assignment.
            let inc = self.bump().is("++");
            let e = self.unary()?;
            return self.incdec(e, inc);
        }
        self.postfix()
    }

    fn incdec(&mut self, e: Expr, inc: bool) -> Result<Expr, ParseError> {
        let target = match e {
            Expr::Ident(name) => Target::Var(name),
            Expr::Member(obj, prop) => Target::Member(obj, prop),
            Expr::Index(obj, key) => Target::Index(obj, key),
            _ => return self.err("invalid increment target"),
        };
        let one = Expr::Num(1.0, self.new_lit());
        let op = if inc { AssignOp::Add } else { AssignOp::Sub };
        Ok(Expr::Assign(op, target, Box::new(one)))
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(".") {
                let name = self.ident()?;
                if self.peek().is("(") {
                    let args = self.args()?;
                    e = Expr::MethodCall(Box::new(e), name, args);
                } else {
                    e = Expr::Member(Box::new(e), name);
                }
            } else if self.peek().is("(") {
                let args = self.args()?;
                e = Expr::Call(Box::new(e), args);
            } else if self.eat("[") {
                let key = self.expression()?;
                self.expect("]")?;
                e = Expr::Index(Box::new(e), Box::new(key));
            } else if self.peek().is("++") || self.peek().is("--") {
                let inc = self.bump().is("++");
                let target = match e {
                    Expr::Ident(name) => Target::Var(name),
                    Expr::Member(obj, prop) => Target::Member(obj, prop),
                    Expr::Index(obj, key) => Target::Index(obj, key),
                    _ => return self.err("invalid increment target"),
                };
                e = Expr::PostIncDec {
                    target,
                    inc,
                    one: self.new_lit(),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect("(")?;
        let mut out = Vec::new();
        while !self.peek().is(")") {
            out.push(self.expression()?);
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(out)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n, self.new_lit()))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, self.new_lit()))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expression()?;
                self.expect(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                self.bump();
                let mut items = Vec::new();
                while !self.peek().is("]") {
                    items.push(self.expression()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("]")?;
                Ok(Expr::Array(items))
            }
            Tok::Punct("{") => {
                self.bump();
                let mut props = Vec::new();
                while !self.peek().is("}") {
                    let key = match self.bump() {
                        Tok::Ident(s) => s,
                        Tok::Str(s) => s,
                        t => return self.err(format!("expected property name, found {t}")),
                    };
                    self.expect(":")?;
                    let value = self.expression()?;
                    props.push((key, value));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("}")?;
                Ok(Expr::Object(props))
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Null)
                }
                "undefined" => {
                    self.bump();
                    Ok(Expr::Undefined)
                }
                "function" => {
                    let idx = self.function(false)?;
                    Ok(Expr::Function(idx))
                }
                _ => {
                    self.bump();
                    Ok(Expr::Ident(id))
                }
            },
            t => self.err(format!("unexpected token {t}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_and_arithmetic() {
        let s = parse("var x = 1 + 2 * 3;").unwrap();
        assert_eq!(s.body.len(), 1);
        let Stmt::Decl(name, Some(Expr::Binary(BinOp::Add, _, rhs))) = &s.body[0] else {
            panic!("{:?}", s.body)
        };
        assert_eq!(name, "x");
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn function_declarations_collected() {
        let src = "function add(a, b) { return a + b; } var y = add(1, 2);";
        let s = parse(src).unwrap();
        assert_eq!(s.funcs.len(), 1);
        let f = &s.funcs[0];
        assert_eq!(f.name.as_deref(), Some("add"));
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.src_offset, 0);
        assert!(f.src_len as usize >= "function add(a, b) { return a + b; }".len() - 1);
    }

    #[test]
    fn nested_functions_get_own_literals() {
        let s = parse("function outer() { var a = 1; function inner() { return 2; } }").unwrap();
        assert_eq!(s.funcs.len(), 2);
        let inner = s
            .funcs
            .iter()
            .find(|f| f.name.as_deref() == Some("inner"))
            .unwrap();
        let outer = s
            .funcs
            .iter()
            .find(|f| f.name.as_deref() == Some("outer"))
            .unwrap();
        assert_eq!(inner.literals.len(), 1);
        assert_eq!(outer.literals.len(), 1);
        assert_eq!(s.literal_count, 2);
    }

    #[test]
    fn control_flow() {
        let s = parse("if (a > 1) { b = 2; } else { b = 3; } while (b) { b -= 1; }").unwrap();
        assert!(matches!(s.body[0], Stmt::If(..)));
        assert!(matches!(s.body[1], Stmt::While(..)));
    }

    #[test]
    fn for_loops_desugar() {
        let s = parse("for (var i = 0; i < 10; i++) { work(i); }").unwrap();
        let Stmt::For(Some(init), Some(_), Some(step), body) = &s.body[0] else {
            panic!("{:?}", s.body)
        };
        assert!(matches!(**init, Stmt::Decl(..)));
        assert!(matches!(step, Expr::PostIncDec { inc: true, .. }));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn method_calls_and_members() {
        let s = parse("document.getElementById('x').textContent = 'hi';").unwrap();
        let Stmt::Expr(Expr::Assign(AssignOp::Set, Target::Member(obj, prop), _)) = &s.body[0]
        else {
            panic!("{:?}", s.body)
        };
        assert_eq!(prop, "textContent");
        assert!(matches!(**obj, Expr::MethodCall(..)));
    }

    #[test]
    fn objects_arrays_ternary() {
        let s = parse("var o = { a: 1, 'b': [2, 3] }; var t = o.a ? 1 : 2;").unwrap();
        assert_eq!(s.body.len(), 2);
        let Stmt::Decl(_, Some(Expr::Object(props))) = &s.body[0] else {
            panic!()
        };
        assert_eq!(props.len(), 2);
    }

    #[test]
    fn anonymous_function_expression() {
        let s = parse("el.addEventListener('click', function () { fire(); });").unwrap();
        assert_eq!(s.funcs.len(), 1);
        assert_eq!(s.funcs[0].name, None);
    }

    #[test]
    fn short_circuit_operators_parse() {
        let s = parse("var x = a && b || !c;").unwrap();
        let Stmt::Decl(_, Some(Expr::Or(..))) = &s.body[0] else {
            panic!("{:?}", s.body)
        };
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = parse("var = 3").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("identifier"));
    }

    #[test]
    fn postfix_increment() {
        let s = parse("i++;").unwrap();
        assert!(matches!(
            &s.body[0],
            Stmt::Expr(Expr::PostIncDec { inc: true, .. })
        ));
        let d = parse("i--;").unwrap();
        assert!(matches!(
            &d.body[0],
            Stmt::Expr(Expr::PostIncDec { inc: false, .. })
        ));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let src = format!("var x = {}1{};", "(".repeat(500), ")".repeat(500));
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("too deep"), "{e}");
    }
}
