//! The tree-walking interpreter, with full trace emission.
//!
//! Every evaluation mirrors its dataflow: operands are cells, results are
//! fresh stack cells written by `compute` instructions, conditions drive
//! `branch` instructions, and JS function calls are `call`/`ret` pairs into
//! per-function trace symbols (`v8::JsFunction::<name>`), so the slicer
//! sees JS exactly the way it sees the rest of the engine.

use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{site, AddrRange, Recorder, Region, Syscall};

use crate::ast::{AssignOp, BinOp, Expr, Stmt, Target, UnOp};
use crate::engine::{ev_undefined, JsEngine, PendingBeacon, PendingTimer};
use crate::numbering::StmtNode;
use crate::value::{Ev, FunId, JsError, ObjId, ScopeId, Value};

/// Statement-level control flow.
pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(Ev),
}

const MAX_CALL_DEPTH: usize = 128;

impl JsEngine {
    fn charge(&mut self) -> Result<(), JsError> {
        if self.steps_left == 0 {
            return Err(JsError::new("step budget exceeded"));
        }
        self.steps_left -= 1;
        Ok(())
    }

    /// Executes a block after hoisting its function declarations.
    pub(crate) fn exec_hoisted_block(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        body: &[Stmt],
        nodes: &[StmtNode],
        scope: ScopeId,
    ) -> Result<Flow, JsError> {
        for stmt in body {
            if let Stmt::FuncDecl(name, idx) = stmt {
                let def_idx = self.scripts[unit].fn_base + *idx as usize;
                let fid = self.new_closure(def_idx, scope);
                let code = self.defs[def_idx].code;
                let cell = self.declare(rec, scope, name, Value::Fun(fid));
                // The closure value derives from the compiled code object.
                rec.compute(site!(), &[code], &[cell.into()]);
            }
        }
        self.exec_block(rec, doc, unit, body, nodes, scope)
    }

    fn exec_block(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        body: &[Stmt],
        nodes: &[StmtNode],
        scope: ScopeId,
    ) -> Result<Flow, JsError> {
        for (stmt, node) in body.iter().zip(nodes) {
            match self.exec_stmt(rec, doc, unit, stmt, node, scope)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Witness-wrapped statement dispatch: the enter/exit pair always
    /// balances (even when a `JsError` unwinds through `?` inside), so the
    /// witness's self-span stack mirrors the statement recursion exactly.
    fn exec_stmt(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        stmt: &Stmt,
        node: &StmtNode,
        scope: ScopeId,
    ) -> Result<Flow, JsError> {
        self.wit.enter(unit, node.id, rec.pos().0);
        let result = self.exec_stmt_inner(rec, doc, unit, stmt, node, scope);
        self.wit.exit(rec.pos().0);
        result
    }

    fn exec_stmt_inner(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        stmt: &Stmt,
        node: &StmtNode,
        scope: ScopeId,
    ) -> Result<Flow, JsError> {
        self.charge()?;
        match stmt {
            Stmt::FuncDecl(..) => Ok(Flow::Normal), // hoisted
            Stmt::Decl(name, init) => {
                let ev = match init {
                    Some(e) => self.eval(rec, doc, unit, e, scope)?,
                    None => ev_undefined(rec),
                };
                let cell = self.declare(rec, scope, name, ev.v);
                rec.compute(site!(), &[ev.cell], &[cell.into()]);
                self.wit.store(cell, name);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(rec, doc, unit, e, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                let c = self.eval(rec, doc, unit, cond, scope)?;
                let taken = c.v.truthy();
                rec.branch_mem(site!(), c.cell, taken);
                if taken {
                    self.exec_block(rec, doc, unit, then, &node.blocks[0], scope)
                } else {
                    self.exec_block(rec, doc, unit, els, &node.blocks[1], scope)
                }
            }
            Stmt::While(cond, body) => {
                let head = site!();
                loop {
                    self.charge()?;
                    let c = self.eval(rec, doc, unit, cond, scope)?;
                    let taken = c.v.truthy();
                    rec.branch_mem(head, c.cell, taken);
                    if !taken {
                        break;
                    }
                    match self.exec_block(rec, doc, unit, body, &node.blocks[0], scope)? {
                        Flow::Break => break,
                        Flow::Return(ev) => return Ok(Flow::Return(ev)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.exec_stmt(rec, doc, unit, init, &node.blocks[0][0], scope)?;
                }
                let head = site!();
                loop {
                    self.charge()?;
                    let taken = match cond {
                        Some(c) => {
                            let ev = self.eval(rec, doc, unit, c, scope)?;
                            let t = ev.v.truthy();
                            rec.branch_mem(head, ev.cell, t);
                            t
                        }
                        None => true,
                    };
                    if !taken {
                        break;
                    }
                    match self.exec_block(rec, doc, unit, body, &node.blocks[1], scope)? {
                        Flow::Break => break,
                        Flow::Return(ev) => return Ok(Flow::Return(ev)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(step) = step {
                        self.eval(rec, doc, unit, step, scope)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                let ev = match value {
                    Some(e) => self.eval(rec, doc, unit, e, scope)?,
                    None => ev_undefined(rec),
                };
                Ok(Flow::Return(ev))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    /// Calls a closure with already-evaluated arguments.
    pub(crate) fn call_closure(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        fid: FunId,
        args: Vec<Ev>,
    ) -> Result<Ev, JsError> {
        if self.closures.len() <= fid.0 as usize {
            return Err(JsError::new("call of unknown function"));
        }
        let def_idx = self.closures[fid.0 as usize].def;
        let closure_scope = self.closures[fid.0 as usize].scope;
        self.defs[def_idx].executed = true;
        let unit = self.defs[def_idx].script;
        let trace_fn = self.defs[def_idx].trace_fn;
        let fn_idx = self.defs[def_idx].idx;
        self.wit.call(unit, fn_idx as u32);
        let params = self.scripts[unit].script.funcs[fn_idx].params.clone();
        let body = std::rc::Rc::clone(&self.scripts[unit].script.funcs[fn_idx].body);
        let nodes = std::rc::Rc::clone(&self.scripts[unit].numbering.funcs[fn_idx]);

        if self.call_depth() >= MAX_CALL_DEPTH {
            return Err(JsError::new("maximum call stack size exceeded"));
        }

        // Deferred compilation happens at first call (the paper's proposed
        // optimization; a no-op in the default eager mode).
        self.ensure_compiled(rec, def_idx);
        let code = self.defs[def_idx].code;
        let scope = self.push_scope(closure_scope);
        rec.enter(site!(), trace_fn);
        self.depth_inc();
        // Bind parameters (missing arguments become undefined). The
        // binding reads the compiled code object: executing a function
        // fetches its bytecode, so compilation of *executed* code can
        // enter the slice (V8's interpreter reads bytecode arrays as
        // data).
        for (i, p) in params.iter().enumerate() {
            let ev = args.get(i).cloned();
            let cell = self.declare(
                rec,
                scope,
                p,
                ev.as_ref().map(|e| e.v.clone()).unwrap_or_default(),
            );
            match ev {
                Some(e) => rec.compute(site!(), &[e.cell, code], &[cell.into()]),
                None => rec.compute(site!(), &[code], &[cell.into()]),
            };
        }
        let result = self.exec_hoisted_block(rec, doc, unit, &body, &nodes, scope);
        self.depth_dec();
        rec.leave(site!());
        match result? {
            Flow::Return(ev) => {
                // The produced value flowed through the function's code.
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[ev.cell, code], &[tmp]);
                Ok(Ev { v: ev.v, cell: tmp })
            }
            _ => Ok(ev_undefined(rec)),
        }
    }

    fn call_depth(&self) -> usize {
        self.call_depth
    }
    fn depth_inc(&mut self) {
        self.call_depth += 1;
    }
    fn depth_dec(&mut self) {
        self.call_depth -= 1;
    }

    // ----- expression evaluation ----------------------------------------

    pub(crate) fn eval(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        expr: &Expr,
        scope: ScopeId,
    ) -> Result<Ev, JsError> {
        self.charge()?;
        match expr {
            Expr::Num(n, lit) => {
                let cell = self.scripts[unit].lit_cells[*lit as usize];
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[cell.into()], &[tmp]);
                Ok(Ev {
                    v: Value::Num(*n),
                    cell: tmp,
                })
            }
            Expr::Str(s, lit) => {
                let cell = self.scripts[unit].lit_cells[*lit as usize];
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[cell.into()], &[tmp]);
                Ok(Ev {
                    v: Value::Str(s.as_str().into()),
                    cell: tmp,
                })
            }
            Expr::Bool(b) => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[], &[tmp]);
                Ok(Ev {
                    v: Value::Bool(*b),
                    cell: tmp,
                })
            }
            Expr::Null => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[], &[tmp]);
                Ok(Ev {
                    v: Value::Null,
                    cell: tmp,
                })
            }
            Expr::Undefined => Ok(ev_undefined(rec)),
            Expr::Ident(name) => self.eval_ident(rec, scope, name),
            Expr::Array(items) => {
                let obj = self.new_object(true);
                let identity = rec.alloc_cell(Region::Heap);
                rec.compute(site!(), &[], &[identity.into()]);
                for (i, item) in items.iter().enumerate() {
                    let ev = self.eval(rec, doc, unit, item, scope)?;
                    self.set_prop(rec, obj, &i.to_string(), ev.v, &[ev.cell]);
                }
                self.set_prop(rec, obj, "length", Value::Num(items.len() as f64), &[]);
                Ok(Ev {
                    v: Value::Obj(obj),
                    cell: identity.into(),
                })
            }
            Expr::Object(props) => {
                let obj = self.new_object(false);
                let identity = rec.alloc_cell(Region::Heap);
                rec.compute(site!(), &[], &[identity.into()]);
                for (k, e) in props {
                    let ev = self.eval(rec, doc, unit, e, scope)?;
                    self.set_prop(rec, obj, k, ev.v, &[ev.cell]);
                }
                Ok(Ev {
                    v: Value::Obj(obj),
                    cell: identity.into(),
                })
            }
            Expr::Function(idx) => {
                let def_idx = self.scripts[unit].fn_base + *idx as usize;
                let fid = self.new_closure(def_idx, scope);
                let code = self.defs[def_idx].code;
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[code], &[tmp]);
                Ok(Ev {
                    v: Value::Fun(fid),
                    cell: tmp,
                })
            }
            Expr::Binary(op, a, b) => {
                let l = self.eval(rec, doc, unit, a, scope)?;
                let r = self.eval(rec, doc, unit, b, scope)?;
                let v = binary(*op, &l.v, &r.v);
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[l.cell, r.cell], &[tmp]);
                Ok(Ev { v, cell: tmp })
            }
            Expr::And(a, b) => {
                let l = self.eval(rec, doc, unit, a, scope)?;
                let t = l.v.truthy();
                rec.branch_mem(site!(), l.cell, t);
                if !t {
                    return Ok(l);
                }
                self.eval(rec, doc, unit, b, scope)
            }
            Expr::Or(a, b) => {
                let l = self.eval(rec, doc, unit, a, scope)?;
                let t = l.v.truthy();
                rec.branch_mem(site!(), l.cell, !t);
                if t {
                    return Ok(l);
                }
                self.eval(rec, doc, unit, b, scope)
            }
            Expr::Unary(op, e) => {
                let ev = self.eval(rec, doc, unit, e, scope)?;
                let v = match op {
                    UnOp::Not => Value::Bool(!ev.v.truthy()),
                    UnOp::Neg => Value::Num(-ev.v.as_num()),
                };
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[ev.cell], &[tmp]);
                Ok(Ev { v, cell: tmp })
            }
            Expr::Ternary(c, a, b) => {
                let cond = self.eval(rec, doc, unit, c, scope)?;
                let taken = cond.v.truthy();
                rec.branch_mem(site!(), cond.cell, taken);
                if taken {
                    self.eval(rec, doc, unit, a, scope)
                } else {
                    self.eval(rec, doc, unit, b, scope)
                }
            }
            Expr::Assign(op, target, value) => {
                self.eval_assign(rec, doc, unit, *op, target, value, scope)
            }
            Expr::Call(callee, args) => self.eval_call(rec, doc, unit, callee, args, scope),
            Expr::MethodCall(obj, name, args) => {
                let recv = self.eval(rec, doc, unit, obj, scope)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(rec, doc, unit, a, scope)?);
                }
                self.method_call(rec, doc, recv, name, argv)
            }
            Expr::Member(obj, name) => {
                let recv = self.eval(rec, doc, unit, obj, scope)?;
                self.member_get(rec, doc, recv, name)
            }
            Expr::Index(obj, key) => {
                let recv = self.eval(rec, doc, unit, obj, scope)?;
                let k = self.eval(rec, doc, unit, key, scope)?;
                let name = k.v.as_str();
                match recv.v {
                    Value::Obj(id) => Ok(self.prop_ev(rec, id, &name)),
                    _ => self.member_get(rec, doc, recv, &name),
                }
            }
            Expr::PostIncDec { target, inc, one } => {
                // Evaluate to the old value, then update the target.
                let op = if *inc { AssignOp::Add } else { AssignOp::Sub };
                let one_expr = Expr::Num(1.0, *one);
                // Read the current value first (for Var targets this is a
                // cheap slot read; host/object targets re-evaluate).
                let old = match target {
                    Target::Var(name) => self.eval_ident(rec, scope, name)?,
                    Target::Member(obj, prop) => {
                        let recv = self.eval(rec, doc, unit, obj, scope)?;
                        self.member_get(rec, doc, recv, prop)?
                    }
                    Target::Index(obj, key) => {
                        let recv = self.eval(rec, doc, unit, obj, scope)?;
                        let k = self.eval(rec, doc, unit, key, scope)?;
                        let name = k.v.as_str();
                        match recv.v {
                            Value::Obj(id) => self.prop_ev(rec, id, &name),
                            _ => self.member_get(rec, doc, recv, &name)?,
                        }
                    }
                };
                // Preserve the old value in a fresh cell before the store
                // overwrites the slot.
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[old.cell], &[tmp]);
                let preserved = Ev {
                    v: old.v.clone(),
                    cell: tmp,
                };
                self.eval_assign(rec, doc, unit, op, target, &one_expr, scope)?;
                Ok(preserved)
            }
        }
    }

    fn eval_ident(
        &mut self,
        rec: &mut Recorder,
        scope: ScopeId,
        name: &str,
    ) -> Result<Ev, JsError> {
        if let Some(slot) = self.lookup(scope, name) {
            let (v, cell) = (slot.value.clone(), slot.cell);
            self.wit.read(cell);
            return Ok(Ev {
                v,
                cell: cell.into(),
            });
        }
        let host = match name {
            "document" => Some(Value::Document),
            "window" => Some(Value::Window),
            "console" => Some(Value::Console),
            "Math" => Some(Value::MathObj),
            "performance" => Some(Value::Performance),
            "navigator" => Some(Value::Navigator),
            _ => None,
        };
        match host {
            Some(v) => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[], &[tmp]);
                Ok(Ev { v, cell: tmp })
            }
            None => Err(JsError::new(format!("{name} is not defined"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_assign(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        op: AssignOp,
        target: &Target,
        value: &Expr,
        scope: ScopeId,
    ) -> Result<Ev, JsError> {
        let rhs = self.eval(rec, doc, unit, value, scope)?;
        match target {
            Target::Var(name) => {
                if self.lookup(scope, name).is_none() {
                    // Sloppy-mode implicit global.
                    self.declare(rec, self.global, name, Value::Undefined);
                }
                let (old, cell) = {
                    let slot = self.lookup(scope, name).expect("just declared");
                    (slot.value.clone(), slot.cell)
                };
                let new = apply_assign(op, &old, &rhs.v);
                let reads: Vec<AddrRange> = match op {
                    AssignOp::Set => vec![rhs.cell],
                    _ => {
                        // Compound assignment reads the slot first.
                        self.wit.read(cell);
                        vec![cell.into(), rhs.cell]
                    }
                };
                rec.compute(site!(), &reads, &[cell.into()]);
                self.wit.store(cell, name);
                self.lookup_mut(scope, name).expect("slot exists").value = new.clone();
                Ok(Ev {
                    v: new,
                    cell: cell.into(),
                })
            }
            Target::Member(obj, name) => {
                let recv = self.eval(rec, doc, unit, obj, scope)?;
                self.member_set(rec, doc, recv, name, rhs.clone(), op)?;
                Ok(rhs)
            }
            Target::Index(obj, key) => {
                let recv = self.eval(rec, doc, unit, obj, scope)?;
                let k = self.eval(rec, doc, unit, key, scope)?;
                let name = k.v.as_str();
                match recv.v {
                    Value::Obj(id) => {
                        let old = self.prop_value(id, &name);
                        let new = apply_assign(op, &old, &rhs.v);
                        self.set_prop(rec, id, &name, new, &[rhs.cell, k.cell]);
                        Ok(rhs)
                    }
                    _ => {
                        self.member_set(rec, doc, recv, &name, rhs.clone(), op)?;
                        Ok(rhs)
                    }
                }
            }
        }
    }

    fn eval_call(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        unit: usize,
        callee: &Expr,
        args: &[Expr],
        scope: ScopeId,
    ) -> Result<Ev, JsError> {
        // Global host functions first.
        if let Expr::Ident(name) = callee {
            if matches!(
                name.as_str(),
                "setTimeout" | "requestAnimationFrame" | "parseInt"
            ) && self.lookup(scope, name).is_none()
            {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(rec, doc, unit, a, scope)?);
                }
                return self.global_native(rec, name, argv);
            }
        }
        let f = self.eval(rec, doc, unit, callee, scope)?;
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(rec, doc, unit, a, scope)?);
        }
        match f.v {
            Value::Fun(fid) => self.call_closure(rec, doc, fid, argv),
            other => Err(JsError::new(format!(
                "{} is not a function",
                other.as_str()
            ))),
        }
    }

    fn global_native(
        &mut self,
        rec: &mut Recorder,
        name: &str,
        args: Vec<Ev>,
    ) -> Result<Ev, JsError> {
        match name {
            "setTimeout" | "requestAnimationFrame" => {
                let fun = match args.first().map(|e| &e.v) {
                    Some(Value::Fun(f)) => *f,
                    _ => return Err(JsError::new(format!("{name} needs a function"))),
                };
                let delay = if name == "setTimeout" {
                    args.get(1).map(|e| e.v.as_num()).unwrap_or(0.0)
                } else {
                    16.0
                };
                self.timers.push(PendingTimer {
                    fun,
                    delay_ms: delay,
                });
                let queue_cell = rec.alloc_cell(Region::Heap);
                let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                rec.compute(site!(), &reads, &[queue_cell.into()]);
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[], &[tmp]);
                Ok(Ev {
                    v: Value::Num(self.timers.len() as f64),
                    cell: tmp,
                })
            }
            "parseInt" => {
                let n = args
                    .first()
                    .map(|e| e.v.as_str().trim().parse::<f64>().unwrap_or(f64::NAN))
                    .unwrap_or(f64::NAN);
                let tmp = rec.alloc_stack(8);
                let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                rec.compute(site!(), &reads, &[tmp]);
                Ok(Ev {
                    v: Value::Num(n.trunc()),
                    cell: tmp,
                })
            }
            _ => Err(JsError::new(format!("{name} is not defined"))),
        }
    }

    // ----- property access ------------------------------------------------

    fn prop_value(&self, obj: ObjId, name: &str) -> Value {
        self.heap[obj.0 as usize]
            .props
            .get(name)
            .map(|p| p.value.clone())
            .unwrap_or_default()
    }

    fn prop_ev(&mut self, rec: &mut Recorder, obj: ObjId, name: &str) -> Ev {
        match self.heap[obj.0 as usize].props.get(name) {
            Some(p) => Ev {
                v: p.value.clone(),
                cell: p.cell.into(),
            },
            None => ev_undefined(rec),
        }
    }

    fn member_get(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        recv: Ev,
        name: &str,
    ) -> Result<Ev, JsError> {
        match (&recv.v, name) {
            (Value::Obj(id), _) => Ok(self.prop_ev(rec, *id, name)),
            (Value::Str(s), "length") => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[recv.cell], &[tmp]);
                Ok(Ev {
                    v: Value::Num(s.len() as f64),
                    cell: tmp,
                })
            }
            (Value::Document, "title") => {
                let v = self
                    .pending_title
                    .as_ref()
                    .map(|(t, _)| t.clone())
                    .unwrap_or_default();
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[recv.cell], &[tmp]);
                Ok(Ev {
                    v: Value::Str(v.into()),
                    cell: tmp,
                })
            }
            (Value::Document, "body") => {
                let body = doc.elements_by_tag("body").first().copied();
                match body {
                    Some(n) => Ok(self.node_ev(rec, doc, n, &[recv.cell])),
                    None => Ok(ev_undefined(rec)),
                }
            }
            (Value::Window, "innerWidth") => self.viewport_ev(rec, self.viewport.0),
            (Value::Window, "innerHeight") => self.viewport_ev(rec, self.viewport.1),
            (Value::Node(n), "textContent") => {
                let text = doc.text_content(*n);
                let cell = doc
                    .descendants(*n)
                    .find_map(|d| doc.node(d).text_range())
                    .unwrap_or_else(|| doc.node(*n).cells.meta.into());
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[cell], &[tmp]);
                Ok(Ev {
                    v: Value::Str(text.into()),
                    cell: tmp,
                })
            }
            (Value::Node(n), "parentNode") => match doc.node(*n).parent {
                Some(p) => Ok(self.node_ev(rec, doc, p, &[recv.cell])),
                None => Ok(ev_undefined(rec)),
            },
            (Value::Node(n), "id") => self.attr_ev(rec, doc, *n, "id"),
            (Value::Node(n), "className") => self.attr_ev(rec, doc, *n, "class"),
            (Value::Node(n), "tagName") => {
                let tag = doc.node(*n).tag().unwrap_or("").to_ascii_uppercase();
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[doc.node(*n).cells.meta.into()], &[tmp]);
                Ok(Ev {
                    v: Value::Str(tag.into()),
                    cell: tmp,
                })
            }
            (Value::Node(n), "style") => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[recv.cell], &[tmp]);
                Ok(Ev {
                    v: Value::Style(*n),
                    cell: tmp,
                })
            }
            (Value::Node(n), "classList") => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[recv.cell], &[tmp]);
                Ok(Ev {
                    v: Value::ClassList(*n),
                    cell: tmp,
                })
            }
            (Value::Node(n), "children") => {
                let kids: Vec<NodeId> = doc
                    .node(*n)
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| doc.node(c).is_element())
                    .collect();
                self.node_array(rec, doc, &kids, &[recv.cell])
            }
            _ => Ok(ev_undefined(rec)),
        }
    }

    fn viewport_ev(&mut self, rec: &mut Recorder, v: f64) -> Result<Ev, JsError> {
        let cell = *self
            .viewport_cell
            .get_or_insert_with(|| rec.alloc_cell(Region::Heap));
        let tmp = rec.alloc_stack(8);
        rec.compute(site!(), &[cell.into()], &[tmp]);
        Ok(Ev {
            v: Value::Num(v),
            cell: tmp,
        })
    }

    fn node_ev(
        &mut self,
        rec: &mut Recorder,
        doc: &Document,
        n: NodeId,
        extra: &[AddrRange],
    ) -> Ev {
        let mut reads: Vec<AddrRange> = vec![doc.node(n).cells.meta.into()];
        reads.extend_from_slice(extra);
        let tmp = rec.alloc_stack(8);
        rec.compute(site!(), &reads, &[tmp]);
        Ev {
            v: Value::Node(n),
            cell: tmp,
        }
    }

    fn attr_ev(
        &mut self,
        rec: &mut Recorder,
        doc: &Document,
        n: NodeId,
        attr: &str,
    ) -> Result<Ev, JsError> {
        match doc.node(n).attr(attr) {
            Some(a) => {
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[a.cell.into()], &[tmp]);
                Ok(Ev {
                    v: Value::Str(a.value.as_str().into()),
                    cell: tmp,
                })
            }
            None => Ok(Ev {
                v: Value::Str("".into()),
                cell: doc.node(n).cells.meta.into(),
            }),
        }
    }

    fn node_array(
        &mut self,
        rec: &mut Recorder,
        doc: &Document,
        nodes: &[NodeId],
        extra: &[AddrRange],
    ) -> Result<Ev, JsError> {
        let obj = self.new_object(true);
        let identity = rec.alloc_cell(Region::Heap);
        rec.compute(site!(), extra, &[identity.into()]);
        for (i, &n) in nodes.iter().enumerate() {
            let meta: AddrRange = doc.node(n).cells.meta.into();
            self.set_prop(rec, obj, &i.to_string(), Value::Node(n), &[meta]);
        }
        self.set_prop(rec, obj, "length", Value::Num(nodes.len() as f64), extra);
        Ok(Ev {
            v: Value::Obj(obj),
            cell: identity.into(),
        })
    }

    fn member_set(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        recv: Ev,
        name: &str,
        value: Ev,
        op: AssignOp,
    ) -> Result<(), JsError> {
        match (&recv.v, name) {
            (Value::Obj(id), _) => {
                let old = self.prop_value(*id, name);
                let new = apply_assign(op, &old, &value.v);
                self.set_prop(rec, *id, name, new, &[value.cell]);
                Ok(())
            }
            (Value::Node(n), "textContent") => {
                let n = *n;
                // Compound assignment reads the current content first.
                let old = Value::Str(doc.text_content(n).into());
                let new = apply_assign(op, &old, &value.v);
                // textContent replaces all children with one text node.
                for c in doc.node(n).children.clone() {
                    doc.remove_child(rec, c);
                }
                let t = doc.create_text(rec, &new.as_str(), &[value.cell]);
                doc.append_child(rec, n, t);
                Ok(())
            }
            (Value::Node(n), "className") => {
                let old = Value::Str(doc.node(*n).attr_value("class").unwrap_or("").into());
                let new = apply_assign(op, &old, &value.v);
                doc.set_attribute(rec, *n, "class", &new.as_str(), &[value.cell]);
                Ok(())
            }
            (Value::Node(n), "id") => {
                let old = Value::Str(doc.node(*n).attr_value("id").unwrap_or("").into());
                let new = apply_assign(op, &old, &value.v);
                doc.set_attribute(rec, *n, "id", &new.as_str(), &[value.cell]);
                Ok(())
            }
            (Value::Style(n), prop) => {
                let css_prop = camel_to_kebab(prop);
                let existing = doc.node(*n).attr_value("style").unwrap_or("").to_owned();
                let updated = upsert_style(&existing, &css_prop, &value.v.as_str());
                doc.set_attribute(rec, *n, "style", &updated, &[value.cell]);
                Ok(())
            }
            (Value::Document, "title") => {
                let old = Value::Str(
                    self.pending_title
                        .as_ref()
                        .map(|(t, _)| t.clone())
                        .unwrap_or_default()
                        .into(),
                );
                let new = apply_assign(op, &old, &value.v);
                self.pending_title = Some((new.as_str(), value.cell));
                Ok(())
            }
            _ => Ok(()), // setting unknown host members is silently ignored
        }
    }

    // ----- host methods -----------------------------------------------------

    fn method_call(
        &mut self,
        rec: &mut Recorder,
        doc: &mut Document,
        recv: Ev,
        name: &str,
        args: Vec<Ev>,
    ) -> Result<Ev, JsError> {
        match (&recv.v, name) {
            // --- document ---
            (Value::Document, "getElementById") => {
                let bindings = rec.intern_func("v8::bindings::Document");
                let id = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let found = doc.element_by_id(&id);
                rec.in_func(site!(), bindings, |rec| {
                    let arg_cell = args.first().map(|a| a.cell);
                    match found {
                        Some(n) => {
                            let mut reads = vec![doc.node(n).cells.meta.into()];
                            reads.extend(arg_cell);
                            let tmp = rec.alloc_stack(8);
                            rec.compute(site!(), &reads, &[tmp]);
                            Ok(Ev {
                                v: Value::Node(n),
                                cell: tmp,
                            })
                        }
                        None => {
                            let tmp = rec.alloc_stack(8);
                            let reads: Vec<AddrRange> = arg_cell.into_iter().collect();
                            rec.compute(site!(), &reads, &[tmp]);
                            Ok(Ev {
                                v: Value::Null,
                                cell: tmp,
                            })
                        }
                    }
                })
            }
            (Value::Document, "createElement") => {
                let tag = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let srcs: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                let n = doc.create_element(rec, &tag, &srcs);
                Ok(self.node_ev(rec, doc, n, &[]))
            }
            (Value::Document, "createTextNode") => {
                let text = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let srcs: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                let n = doc.create_text(rec, &text, &srcs);
                Ok(self.node_ev(rec, doc, n, &[]))
            }
            (Value::Document, "querySelector" | "querySelectorAll") => {
                // Full CSS selector matching through the style engine's
                // selector machinery.
                let text = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let Some(sel) = wasteprof_css::Selector::parse(&text) else {
                    return Err(JsError::new(format!("invalid selector {text:?}")));
                };
                let matches: Vec<NodeId> = doc
                    .descendants(doc.root())
                    .filter(|&n| sel.matches(doc, n))
                    .collect();
                let extra: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                if name == "querySelectorAll" {
                    self.node_array(rec, doc, &matches, &extra)
                } else {
                    match matches.first() {
                        Some(&n) => Ok(self.node_ev(rec, doc, n, &extra)),
                        None => {
                            let tmp = rec.alloc_stack(8);
                            rec.compute(site!(), &extra, &[tmp]);
                            Ok(Ev {
                                v: Value::Null,
                                cell: tmp,
                            })
                        }
                    }
                }
            }
            (Value::Document, "getElementsByTagName") => {
                let tag = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let nodes = doc.elements_by_tag(&tag);
                let extra: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                self.node_array(rec, doc, &nodes, &extra)
            }
            (Value::Document, "getElementsByClassName") => {
                let class = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let nodes = doc.elements_by_class(&class);
                let extra: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                self.node_array(rec, doc, &nodes, &extra)
            }
            (Value::Document | Value::Window, "addEventListener") => {
                let event = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let fun = match args.get(1).map(|a| &a.v) {
                    Some(Value::Fun(f)) => *f,
                    _ => return Err(JsError::new("addEventListener needs a function")),
                };
                self.window_handlers.entry(event).or_default().push(fun);
                self.listener_op(rec, &args);
                Ok(ev_undefined(rec))
            }
            (Value::Window, "setTimeout" | "requestAnimationFrame") => {
                self.global_native(rec, name, args)
            }
            // --- nodes ---
            (Value::Node(n), "appendChild") => {
                let n = *n;
                match args.first().map(|a| a.v.clone()) {
                    Some(Value::Node(c)) => {
                        // HierarchyRequestError: the receiver must not be
                        // the child or one of its descendants.
                        let mut cursor = Some(n);
                        while let Some(a) = cursor {
                            if a == c {
                                return Err(JsError::new("appendChild would create a cycle"));
                            }
                            cursor = doc.node(a).parent;
                        }
                        if doc.node(c).parent.is_some() {
                            doc.remove_child(rec, c);
                        }
                        doc.append_child(rec, n, c);
                        Ok(args.into_iter().next().expect("checked"))
                    }
                    _ => Err(JsError::new("appendChild needs a node")),
                }
            }
            (Value::Node(_), "removeChild") | (Value::Node(_), "remove") => {
                let target = if name == "remove" {
                    match recv.v {
                        Value::Node(n) => Some(n),
                        _ => None,
                    }
                } else {
                    match args.first().map(|a| &a.v) {
                        Some(Value::Node(c)) => Some(*c),
                        _ => None,
                    }
                };
                if let Some(c) = target {
                    doc.remove_child(rec, c);
                }
                Ok(ev_undefined(rec))
            }
            (Value::Node(n), "setAttribute") => {
                let attr = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let val = args.get(1).map(|a| a.v.as_str()).unwrap_or_default();
                let srcs: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                doc.set_attribute(rec, *n, &attr, &val, &srcs);
                Ok(ev_undefined(rec))
            }
            (Value::Node(n), "getAttribute") => {
                let attr = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                self.attr_ev(rec, doc, *n, &attr)
            }
            (Value::Node(n), "addEventListener") => {
                let event = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let fun = match args.get(1).map(|a| &a.v) {
                    Some(Value::Fun(f)) => *f,
                    _ => return Err(JsError::new("addEventListener needs a function")),
                };
                self.handlers.entry((*n, event)).or_default().push(fun);
                self.listener_op(rec, &args);
                Ok(ev_undefined(rec))
            }
            // --- classList ---
            (Value::ClassList(n), "add" | "remove" | "toggle" | "contains") => {
                let n = *n;
                let class = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let mut classes: Vec<String> = doc.node(n).classes().map(str::to_owned).collect();
                let has = classes.contains(&class);
                let result = match name {
                    "contains" => {
                        let tmp = rec.alloc_stack(8);
                        let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                        rec.compute(site!(), &reads, &[tmp]);
                        return Ok(Ev {
                            v: Value::Bool(has),
                            cell: tmp,
                        });
                    }
                    "add" if !has => {
                        classes.push(class);
                        true
                    }
                    "remove" if has => {
                        classes.retain(|c| *c != class);
                        true
                    }
                    "toggle" => {
                        if has {
                            classes.retain(|c| *c != class);
                        } else {
                            classes.push(class);
                        }
                        true
                    }
                    _ => false,
                };
                if result {
                    let srcs: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                    doc.set_attribute(rec, n, "class", &classes.join(" "), &srcs);
                }
                Ok(ev_undefined(rec))
            }
            // --- console (Debugging category) ---
            (Value::Console, "log" | "warn" | "error" | "info" | "debug") => {
                let dbg = rec.intern_func("base::debug::ConsoleMessage");
                rec.in_func(site!(), dbg, |rec| {
                    let ring = rec.alloc(Region::DebugRing, 8 * args.len().max(1) as u32);
                    let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                    rec.compute_weighted(site!(), &reads, &[ring], 4);
                });
                Ok(ev_undefined(rec))
            }
            // --- Math ---
            (Value::MathObj, _) => {
                let nums: Vec<f64> = args.iter().map(|a| a.v.as_num()).collect();
                let v = match name {
                    "floor" => nums.first().copied().unwrap_or(f64::NAN).floor(),
                    "ceil" => nums.first().copied().unwrap_or(f64::NAN).ceil(),
                    "round" => nums.first().copied().unwrap_or(f64::NAN).round(),
                    "abs" => nums.first().copied().unwrap_or(f64::NAN).abs(),
                    "sqrt" => nums.first().copied().unwrap_or(f64::NAN).sqrt(),
                    "min" => nums.iter().copied().fold(f64::INFINITY, f64::min),
                    "max" => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    "random" => self.next_random(),
                    _ => return Err(JsError::new(format!("Math.{name} is not a function"))),
                };
                let tmp = rec.alloc_stack(8);
                let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                rec.compute(site!(), &reads, &[tmp]);
                Ok(Ev {
                    v: Value::Num(v),
                    cell: tmp,
                })
            }
            // --- performance ---
            (Value::Performance, "now") => {
                let ts = rec.alloc_stack(16);
                let tscell = rec.alloc_cell(Region::Heap);
                rec.syscall(
                    site!(),
                    Syscall::ClockGettime,
                    &[tscell.into()],
                    vec![],
                    vec![ts],
                );
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[ts], &[tmp]);
                Ok(Ev {
                    v: Value::Num(rec.pos().0 as f64 / 1000.0),
                    cell: tmp,
                })
            }
            // --- navigator ---
            (Value::Navigator, "sendBeacon") => {
                let url = args.first().map(|a| a.v.as_str()).unwrap_or_default();
                let payload = args.get(1).map(|a| a.cell).unwrap_or_else(|| {
                    args.first()
                        .map(|a| a.cell)
                        .unwrap_or_else(|| rec.alloc_stack(8))
                });
                self.beacons.push(PendingBeacon { url, payload });
                let queue = rec.alloc_cell(Region::Heap);
                let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                rec.compute(site!(), &reads, &[queue.into()]);
                let tmp = rec.alloc_stack(8);
                rec.compute(site!(), &[], &[tmp]);
                Ok(Ev {
                    v: Value::Bool(true),
                    cell: tmp,
                })
            }
            // --- arrays / objects ---
            (Value::Obj(id), "push") => {
                let id = *id;
                let len = self.prop_value(id, "length").as_num().max(0.0) as usize;
                for (i, a) in args.iter().enumerate() {
                    self.set_prop(rec, id, &(len + i).to_string(), a.v.clone(), &[a.cell]);
                }
                let new_len = Value::Num((len + args.len()) as f64);
                let cell = self.set_prop(rec, id, "length", new_len.clone(), &[]);
                Ok(Ev {
                    v: new_len,
                    cell: cell.into(),
                })
            }
            (Value::Obj(id), "indexOf") => {
                let id = *id;
                let needle = args.first().map(|a| a.v.clone()).unwrap_or_default();
                let len = self.prop_value(id, "length").as_num().max(0.0) as usize;
                let mut found = -1.0;
                for i in 0..len {
                    if self.prop_value(id, &i.to_string()).loose_eq(&needle) {
                        found = i as f64;
                        break;
                    }
                }
                let tmp = rec.alloc_stack(8);
                let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
                rec.compute(site!(), &reads, &[tmp]);
                Ok(Ev {
                    v: Value::Num(found),
                    cell: tmp,
                })
            }
            (Value::Obj(id), _) => {
                // A stored function property used as a method.
                let id = *id;
                match self.prop_value(id, name) {
                    Value::Fun(fid) => self.call_closure(rec, doc, fid, args),
                    _ => Err(JsError::new(format!("{name} is not a function"))),
                }
            }
            _ => Err(JsError::new(format!(
                "{name} is not a function on this value"
            ))),
        }
    }

    fn listener_op(&mut self, rec: &mut Recorder, args: &[Ev]) {
        let bindings = rec.intern_func("v8::bindings::AddEventListener");
        rec.in_func(site!(), bindings, |rec| {
            let table = rec.alloc_cell(Region::Heap);
            let reads: Vec<AddrRange> = args.iter().map(|a| a.cell).collect();
            rec.compute(site!(), &reads, &[table.into()]);
        });
    }
}

fn binary(op: BinOp, a: &Value, b: &Value) -> Value {
    match op {
        BinOp::Add => match (a, b) {
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                Value::Str(format!("{}{}", a.as_str(), b.as_str()).into())
            }
            _ => Value::Num(a.as_num() + b.as_num()),
        },
        BinOp::Sub => Value::Num(a.as_num() - b.as_num()),
        BinOp::Mul => Value::Num(a.as_num() * b.as_num()),
        BinOp::Div => Value::Num(a.as_num() / b.as_num()),
        BinOp::Mod => Value::Num(a.as_num() % b.as_num()),
        BinOp::Eq => Value::Bool(a.loose_eq(b)),
        BinOp::Ne => Value::Bool(!a.loose_eq(b)),
        BinOp::Lt => Value::Bool(a.as_num() < b.as_num()),
        BinOp::Le => Value::Bool(a.as_num() <= b.as_num()),
        BinOp::Gt => Value::Bool(a.as_num() > b.as_num()),
        BinOp::Ge => Value::Bool(a.as_num() >= b.as_num()),
    }
}

fn apply_assign(op: AssignOp, old: &Value, rhs: &Value) -> Value {
    match op {
        AssignOp::Set => rhs.clone(),
        AssignOp::Add => binary(BinOp::Add, old, rhs),
        AssignOp::Sub => binary(BinOp::Sub, old, rhs),
    }
}

/// `backgroundColor` → `background-color`.
fn camel_to_kebab(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        if c.is_ascii_uppercase() {
            out.push('-');
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Sets `prop: value` within a `style` attribute string, replacing any
/// existing declaration of the same property.
fn upsert_style(existing: &str, prop: &str, value: &str) -> String {
    let mut parts: Vec<String> = existing
        .split(';')
        .filter_map(|d| {
            let d = d.trim();
            if d.is_empty() {
                return None;
            }
            let name = d.split(':').next().unwrap_or("").trim();
            if name == prop {
                None
            } else {
                Some(d.to_owned())
            }
        })
        .collect();
    parts.push(format!("{prop}: {value}"));
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_case_conversion() {
        assert_eq!(camel_to_kebab("backgroundColor"), "background-color");
        assert_eq!(camel_to_kebab("width"), "width");
        assert_eq!(camel_to_kebab("zIndex"), "z-index");
    }

    #[test]
    fn style_upsert() {
        assert_eq!(upsert_style("", "color", "red"), "color: red");
        assert_eq!(
            upsert_style("width: 4px; color: blue", "color", "red"),
            "width: 4px; color: red"
        );
    }

    #[test]
    fn binary_string_concat() {
        let v = binary(BinOp::Add, &Value::from("a"), &Value::Num(1.0));
        assert!(matches!(v, Value::Str(s) if &*s == "a1"));
    }
}
