//! End-to-end tests of the JS engine: parsing, compilation, execution, DOM
//! bindings, events, timers, coverage, and trace dataflow.

use wasteprof_dom::Document;
use wasteprof_js::{JsEngine, Value};
use wasteprof_trace::{InstrKind, Recorder, Region, Syscall, ThreadKind};

struct World {
    rec: Recorder,
    doc: Document,
    js: JsEngine,
}

fn world() -> World {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
    let doc = Document::new(&mut rec);
    World {
        rec,
        doc,
        js: JsEngine::new(),
    }
}

impl World {
    fn run(&mut self, src: &str) {
        let range = self.rec.alloc(Region::Input, src.len().max(1) as u32);
        self.js
            .load_script(&mut self.rec, &mut self.doc, src, range, "test")
            .unwrap_or_else(|e| panic!("script failed: {e}\nsource: {src}"));
    }

    fn global_num(&self, name: &str) -> f64 {
        match &self.js_lookup(name) {
            Value::Num(n) => *n,
            other => panic!("{name} = {other:?}, expected number"),
        }
    }

    fn global_str(&self, name: &str) -> String {
        self.js_lookup(name).as_str()
    }

    fn js_lookup(&self, name: &str) -> Value {
        // Globals land in the engine's global scope.
        self.js
            .lookup_global(name)
            .unwrap_or_else(|| panic!("global {name} not found"))
    }
}

#[test]
fn arithmetic_and_variables() {
    let mut w = world();
    w.run("var a = 2; var b = 3; var c = a * b + 4;");
    assert_eq!(w.global_num("c"), 10.0);
}

#[test]
fn functions_and_recursion() {
    let mut w = world();
    w.run(
        "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } var r = fib(10);",
    );
    assert_eq!(w.global_num("r"), 55.0);
}

#[test]
fn closures_capture_environment() {
    let mut w = world();
    w.run(
        "function counter() { var n = 0; return function () { n += 1; return n; }; }\
         var c = counter(); c(); c(); var out = c();",
    );
    assert_eq!(w.global_num("out"), 3.0);
}

#[test]
fn loops_and_arrays() {
    let mut w = world();
    w.run(
        "var xs = [1, 2, 3, 4]; var sum = 0;\
         for (var i = 0; i < xs.length; i++) { sum += xs[i]; }",
    );
    assert_eq!(w.global_num("sum"), 10.0);
}

#[test]
fn while_with_break_continue() {
    let mut w = world();
    w.run(
        "var n = 0; var i = 0;\
         while (true) { i += 1; if (i > 10) { break; } if (i % 2 == 0) { continue; } n += i; }",
    );
    assert_eq!(w.global_num("n"), 25.0); // 1+3+5+7+9
}

#[test]
fn objects_and_methods() {
    let mut w = world();
    w.run(
        "var o = { x: 7, get: function () { return 42; } };\
         var a = o.x; var b = o.get(); o.y = a + b; var c = o['y'];",
    );
    assert_eq!(w.global_num("c"), 49.0);
}

#[test]
fn string_operations() {
    let mut w = world();
    w.run("var s = 'a' + 'b' + 1; var l = s.length;");
    assert_eq!(w.global_str("s"), "ab1");
    assert_eq!(w.global_num("l"), 3.0);
}

#[test]
fn ternary_and_logic() {
    let mut w = world();
    w.run("var x = 1 < 2 ? 'yes' : 'no'; var y = null || 5; var z = 0 && 9;");
    assert_eq!(w.global_str("x"), "yes");
    assert_eq!(w.global_num("y"), 5.0);
    assert_eq!(w.global_num("z"), 0.0);
}

#[test]
fn append_child_cycle_raises_js_error() {
    let mut w = world();
    // a.appendChild(b) then b.appendChild(a) must fail, not build a cycle.
    let src = "var a = document.createElement('div');\
         var b = document.createElement('div');\
         a.appendChild(b);\
         b.appendChild(a);";
    let range = w.rec.alloc(Region::Input, src.len() as u32);
    let err =
        w.js.load_script(&mut w.rec, &mut w.doc, src, range, "cycle")
            .expect_err("cyclic appendChild must error");
    assert!(err.to_string().contains("cycle"), "unexpected error: {err}");
}

#[test]
fn dom_mutation_via_bindings() {
    let mut w = world();
    let body = w.doc.create_element(&mut w.rec, "body", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, body);
    w.doc.set_attribute(&mut w.rec, body, "id", "main", &[]);
    w.run(
        "var el = document.getElementById('main');\
         el.setAttribute('data-ready', '1');\
         var d = document.createElement('div');\
         d.className = 'card';\
         d.textContent = 'hello';\
         el.appendChild(d);",
    );
    let div = w.doc.elements_by_class("card");
    assert_eq!(div.len(), 1);
    assert_eq!(w.doc.text_content(div[0]), "hello");
    assert_eq!(w.doc.node(body).attr_value("data-ready"), Some("1"));
}

#[test]
fn style_assignment_updates_style_attribute() {
    let mut w = world();
    let el = w.doc.create_element(&mut w.rec, "div", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, el);
    w.doc.set_attribute(&mut w.rec, el, "id", "x", &[]);
    w.run("document.getElementById('x').style.backgroundColor = 'red';");
    assert_eq!(
        w.doc.node(el).attr_value("style"),
        Some("background-color: red")
    );
}

#[test]
fn class_list_operations() {
    let mut w = world();
    let el = w.doc.create_element(&mut w.rec, "div", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, el);
    w.doc.set_attribute(&mut w.rec, el, "id", "x", &[]);
    w.run(
        "var el = document.getElementById('x');\
         el.classList.add('open'); el.classList.add('hot');\
         el.classList.remove('open'); el.classList.toggle('warm');\
         var has = el.classList.contains('hot');",
    );
    assert!(w.doc.node(el).has_class("hot"));
    assert!(w.doc.node(el).has_class("warm"));
    assert!(!w.doc.node(el).has_class("open"));
    assert!(matches!(w.js_lookup("has"), Value::Bool(true)));
}

#[test]
fn event_handlers_fire_with_bubbling() {
    let mut w = world();
    let outer = w.doc.create_element(&mut w.rec, "div", &[]);
    let inner = w.doc.create_element(&mut w.rec, "button", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, outer);
    w.doc.append_child(&mut w.rec, outer, inner);
    w.doc.set_attribute(&mut w.rec, outer, "id", "outer", &[]);
    w.doc.set_attribute(&mut w.rec, inner, "id", "inner", &[]);
    w.run(
        "var count = 0;\
         document.getElementById('outer').addEventListener('click', function () { count += 10; });\
         document.getElementById('inner').addEventListener('click', function () { count += 1; });",
    );
    assert!(w.js.has_handler(&w.doc, inner, "click"));
    let ran = w.js.dispatch_event(&mut w.rec, &mut w.doc, inner, "click");
    assert!(ran);
    assert_eq!(w.global_num("count"), 11.0); // inner + bubbled outer
    assert!(!w.js.dispatch_event(&mut w.rec, &mut w.doc, root, "keydown"));
}

#[test]
fn timers_are_queued_and_fire() {
    let mut w = world();
    w.run("var fired = 0; setTimeout(function () { fired = 1; }, 50);");
    assert_eq!(w.global_num("fired"), 0.0);
    let timers = w.js.take_timers();
    assert_eq!(timers.len(), 1);
    assert_eq!(timers[0].delay_ms, 50.0);
    w.js.fire_timer(&mut w.rec, &mut w.doc, timers[0]);
    assert_eq!(w.global_num("fired"), 1.0);
}

#[test]
fn beacons_are_queued() {
    let mut w = world();
    w.run("navigator.sendBeacon('https://a.example/t', 'payload');");
    let beacons = w.js.take_beacons();
    assert_eq!(beacons.len(), 1);
    assert_eq!(beacons[0].url, "https://a.example/t");
}

#[test]
fn console_log_writes_debug_ring() {
    let mut w = world();
    w.run("console.log('x', 1, 2);");
    let trace = w.rec.finish();
    let wrote_debug = trace.iter().any(|i| {
        i.mem_writes()
            .iter()
            .any(|r| r.start().region() == Some(Region::DebugRing))
    });
    assert!(wrote_debug);
}

#[test]
fn performance_now_issues_clock_syscall() {
    let mut w = world();
    w.run("var t = performance.now();");
    let trace = w.rec.finish();
    assert!(trace.iter().any(|i| matches!(
        i.kind,
        InstrKind::Syscall {
            nr: Syscall::ClockGettime
        }
    )));
}

#[test]
fn math_functions() {
    let mut w = world();
    w.run(
        "var a = Math.floor(3.9); var b = Math.max(1, 7, 3);\
         var c = Math.abs(0 - 5); var d = Math.min(2, 8);",
    );
    assert_eq!(w.global_num("a"), 3.0);
    assert_eq!(w.global_num("b"), 7.0);
    assert_eq!(w.global_num("c"), 5.0);
    assert_eq!(w.global_num("d"), 2.0);
}

#[test]
fn math_random_is_seeded_and_deterministic() {
    let mut a = world();
    a.js.seed_random(42);
    a.run("var r = Math.random();");
    let mut b = world();
    b.js.seed_random(42);
    b.run("var r = Math.random();");
    assert_eq!(a.global_num("r"), b.global_num("r"));
    assert!(a.global_num("r") >= 0.0 && a.global_num("r") < 1.0);
}

#[test]
fn coverage_counts_unexecuted_functions() {
    let mut w = world();
    w.run(
        "function used() { return 1; }\
         function unused1() { var x = 'lots of dead code here'; return x; }\
         function unused2() { return 'more dead code in this one'; }\
         used();",
    );
    let cov = w.js.coverage();
    assert_eq!(w.js.def_count(), 3);
    assert_eq!(w.js.executed_count(), 1);
    assert!(
        cov.unused_fraction() > 0.4,
        "unused = {}",
        cov.unused_fraction()
    );
    assert!(cov.used_bytes > 0);
}

#[test]
fn nested_function_coverage_is_exact() {
    let mut w = world();
    w.run("function outer() { function inner() { return 1; } return 2; } outer();");
    let cov = w.js.coverage();
    // outer executed, inner did not: inner's bytes are unused, outer's own
    // bytes (excluding inner) plus top-level are used.
    assert!(cov.unused_bytes() > 0);
    assert!(cov.used_bytes > cov.unused_bytes());
}

#[test]
fn runtime_errors_are_recorded_not_fatal() {
    let mut w = world();
    let src = "missingFunction();";
    let range = w.rec.alloc(Region::Input, src.len() as u32);
    let result = w.js.load_script(&mut w.rec, &mut w.doc, src, range, "bad");
    assert!(result.is_err());
    assert_eq!(w.js.errors().len(), 1);
    // Engine still works.
    w.run("var ok = 1;");
    assert_eq!(w.global_num("ok"), 1.0);
}

#[test]
fn infinite_loop_hits_step_budget() {
    let mut w = world();
    w.js.set_step_budget(10_000);
    let src = "while (true) { var x = 1; }";
    let range = w.rec.alloc(Region::Input, src.len() as u32);
    let result = w.js.load_script(&mut w.rec, &mut w.doc, src, range, "spin");
    assert!(result.is_err());
    assert!(result.unwrap_err().message.contains("budget"));
}

#[test]
fn deep_recursion_hits_call_depth_limit() {
    let mut w = world();
    let src = "function f() { return f(); } f();";
    let range = w.rec.alloc(Region::Input, src.len() as u32);
    let result = w.js.load_script(&mut w.rec, &mut w.doc, src, range, "deep");
    assert!(result.is_err());
}

#[test]
fn trace_remains_structurally_valid() {
    let mut w = world();
    let body = w.doc.create_element(&mut w.rec, "body", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, body);
    w.doc.set_attribute(&mut w.rec, body, "id", "b", &[]);
    w.run(
        "function render(n) { var el = document.createElement('p'); el.textContent = 'i' + n;\
          document.getElementById('b').appendChild(el); }\
         for (var i = 0; i < 5; i++) { render(i); }",
    );
    assert_eq!(w.doc.elements_by_tag("p").len(), 5);
    let trace = w.rec.finish();
    assert_eq!(trace.validate(), Ok(()));
    // JS work is attributed to v8:: symbols.
    let has_v8 = trace
        .functions()
        .iter()
        .any(|(_, f)| f.name().starts_with("v8::JsFunction::render"));
    assert!(has_v8);
}

#[test]
fn literal_dataflow_links_compile_to_execution() {
    let mut w = world();
    let body = w.doc.create_element(&mut w.rec, "body", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, body);
    w.doc.set_attribute(&mut w.rec, body, "id", "b", &[]);
    w.run("document.getElementById('b').textContent = 'from-literal';");
    let trace = w.rec.finish();
    // Some instruction reads a Code-region cell (the literal) — that is
    // the compile→execute dependence that can pull compilation into the
    // slice.
    assert!(trace.iter().any(|i| i
        .mem_reads()
        .iter()
        .any(|r| r.start().region() == Some(Region::Code))));
}

#[test]
fn window_dimensions_and_handlers() {
    let mut w = world();
    w.js.set_viewport(&mut w.rec, 360.0, 640.0);
    w.run(
        "var narrow = window.innerWidth < 700;\
         var scrolls = 0;\
         window.addEventListener('scroll', function () { scrolls += 1; });",
    );
    assert!(matches!(w.js_lookup("narrow"), Value::Bool(true)));
    w.js.dispatch_window_event(&mut w.rec, &mut w.doc, "scroll");
    w.js.dispatch_window_event(&mut w.rec, &mut w.doc, "scroll");
    assert_eq!(w.global_num("scrolls"), 2.0);
}

#[test]
fn document_title_is_queued_for_ipc() {
    let mut w = world();
    w.run("document.title = 'New Title';");
    let (title, _) = w.js.take_title().expect("title set");
    assert_eq!(title, "New Title");
}

#[test]
fn array_push_and_index_of() {
    let mut w = world();
    w.run(
        "var xs = []; xs.push(5); xs.push(7, 9);\
         var n = xs.length; var i = xs.indexOf(7); var m = xs.indexOf(99);",
    );
    assert_eq!(w.global_num("n"), 3.0);
    assert_eq!(w.global_num("i"), 1.0);
    assert_eq!(w.global_num("m"), -1.0);
}

#[test]
fn query_selector_uses_full_css_matching() {
    let mut w = world();
    let body = w.doc.create_element(&mut w.rec, "body", &[]);
    let root = w.doc.root();
    w.doc.append_child(&mut w.rec, root, body);
    let nav = w.doc.create_element(&mut w.rec, "nav", &[]);
    w.doc.append_child(&mut w.rec, body, nav);
    for i in 0..3 {
        let li = w.doc.create_element(&mut w.rec, "li", &[]);
        if i == 1 {
            w.doc.set_attribute(&mut w.rec, li, "class", "active", &[]);
        }
        w.doc.append_child(&mut w.rec, nav, li);
    }
    w.run(
        "var el = document.querySelector('nav li.active');\
         el.textContent = 'found';\
         var all = document.querySelectorAll('nav li');\
         var n = all.length;\
         var missing = document.querySelector('.nope');",
    );
    assert_eq!(w.global_num("n"), 3.0);
    assert!(matches!(w.js_lookup("missing"), Value::Null));
    let active = w.doc.elements_by_class("active")[0];
    assert_eq!(w.doc.text_content(active), "found");
}

#[test]
fn postfix_increment_evaluates_to_old_value() {
    let mut w = world();
    w.run(
        "var i = 5; var old = i++; var j = 3; var olddec = j--;\
         var pre = 10; var newv = ++pre;",
    );
    assert_eq!(w.global_num("old"), 5.0);
    assert_eq!(w.global_num("i"), 6.0);
    assert_eq!(w.global_num("olddec"), 3.0);
    assert_eq!(w.global_num("j"), 2.0);
    assert_eq!(w.global_num("newv"), 11.0); // prefix gives the new value
}
