//! Parser robustness: pathological nesting must return a parse error, not
//! overflow the stack.

#[test]
fn paren_overflow_rejected() {
    let src = "(".repeat(100_000) + "1" + &")".repeat(100_000);
    assert!(wasteprof_js::parse(&src).is_err());
}

#[test]
fn unary_overflow_rejected() {
    let src = "!".repeat(200_000) + "1";
    assert!(wasteprof_js::parse(&src).is_err());
}
