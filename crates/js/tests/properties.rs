//! Property-based tests for the JS engine: the interpreter agrees with a
//! Rust reference evaluator on arithmetic programs, and the front end
//! never panics on junk.

use proptest::prelude::*;
use wasteprof_dom::Document;
use wasteprof_js::{lex, parse, JsEngine, Value};
use wasteprof_trace::{Recorder, Region, ThreadKind};

// ---------------------------------------------------------------------
// Reference-checked arithmetic
// ---------------------------------------------------------------------

/// A tiny arithmetic AST we can render to JS and evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    Num(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (0..50i32).prop_map(E::Num);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| { E::Ternary(c.into(), a.into(), b.into()) }),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Num(n) => n.to_string(),
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Ternary(c, a, b) => format!("({} ? {} : {})", render(c), render(a), render(b)),
    }
}

fn eval(e: &E) -> f64 {
    match e {
        E::Num(n) => *n as f64,
        E::Add(a, b) => eval(a) + eval(b),
        E::Sub(a, b) => eval(a) - eval(b),
        E::Mul(a, b) => eval(a) * eval(b),
        E::Ternary(c, a, b) => {
            if eval(c) != 0.0 {
                eval(a)
            } else {
                eval(b)
            }
        }
    }
}

fn run_js(src: &str) -> (JsEngine, Recorder) {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "m");
    let mut doc = Document::new(&mut rec);
    let mut js = JsEngine::new();
    let range = rec.alloc(Region::Input, src.len().max(1) as u32);
    js.load_script(&mut rec, &mut doc, src, range, "prop")
        .expect("script runs");
    (js, rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpreter_agrees_with_reference(e in arb_expr()) {
        let src = format!("var result = {};", render(&e));
        let (js, _rec) = run_js(&src);
        let expected = eval(&e);
        match js.lookup_global("result") {
            Some(Value::Num(n)) => prop_assert!(
                (n - expected).abs() < 1e-9,
                "{} => {n}, expected {expected}", render(&e)
            ),
            other => prop_assert!(false, "result = {other:?}"),
        }
    }

    #[test]
    fn loop_sums_match_reference(n in 0u32..40, step in 1u32..5) {
        let src = format!(
            "var s = 0; for (var i = 0; i < {n}; i += {step}) {{ s += i; }}"
        );
        let (js, _rec) = run_js(&src);
        let mut expected = 0u64;
        let mut i = 0;
        while i < n {
            expected += i as u64;
            i += step;
        }
        match js.lookup_global("s") {
            Some(Value::Num(v)) => prop_assert_eq!(v as u64, expected),
            other => prop_assert!(false, "s = {other:?}"),
        }
    }

    #[test]
    fn lexer_never_panics(text in "[ -~\\n\\t]{0,80}") {
        let _ = lex(&text);
    }

    #[test]
    fn parser_never_panics(text in "[ -~\\n]{0,120}") {
        let _ = parse(&text);
    }

    #[test]
    fn interpreter_never_panics_on_parsed_junk(text in "[a-z0-9 +*(){};=<>.]{0,60}") {
        // Whatever parses must run (or error) without panicking.
        if parse(&text).is_ok() {
            let mut rec = Recorder::new();
            rec.spawn_thread(ThreadKind::Main, "m");
            let mut doc = Document::new(&mut rec);
            let mut js = JsEngine::new();
            js.set_step_budget(20_000);
            let range = rec.alloc(Region::Input, text.len().max(1) as u32);
            let _ = js.load_script(&mut rec, &mut doc, &text, range, "junk");
        }
    }

    #[test]
    fn traces_from_random_programs_are_valid(e in arb_expr()) {
        let src = format!("var x = {};", render(&e));
        let (_js, rec) = run_js(&src);
        let trace = rec.finish();
        prop_assert_eq!(trace.validate(), Ok(()));
    }
}
