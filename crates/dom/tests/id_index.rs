//! Property test: the id index behind `element_by_id` always agrees with
//! a brute-force document-order scan, across random sequences of
//! attach/detach/re-id mutations.

use proptest::prelude::*;
use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{Recorder, ThreadKind};

#[derive(Debug, Clone)]
enum Op {
    /// Create an element and give it one of a small pool of ids.
    Create(u8),
    /// Attach node `n mod created` under node `p mod (created+1)` (root
    /// allowed), skipping illegal attaches.
    Attach(u8, u8),
    /// Detach node `n mod created`.
    Detach(u8),
    /// Re-id node `n mod created` to pool id `i`.
    ReId(u8, u8),
}

fn id_name(i: u8) -> String {
    format!("id{}", i % 4)
}

fn brute_force(doc: &Document, needle: &str) -> Option<NodeId> {
    doc.descendants(doc.root())
        .find(|&n| doc.node(n).id() == Some(needle))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn element_by_id_matches_document_order_scan(ops in prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Create),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Attach(a, b)),
            any::<u8>().prop_map(Op::Detach),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::ReId(a, b)),
        ],
        1..60,
    )) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut doc = Document::new(&mut rec);
        let mut created: Vec<NodeId> = Vec::new();

        for op in ops {
            match op {
                Op::Create(i) => {
                    let n = doc.create_element(&mut rec, "div", &[]);
                    doc.set_attribute(&mut rec, n, "id", &id_name(i), &[]);
                    created.push(n);
                }
                Op::Attach(ni, pi) => {
                    if created.is_empty() {
                        continue;
                    }
                    let n = created[ni as usize % created.len()];
                    let parent = if pi as usize % (created.len() + 1) == created.len() {
                        doc.root()
                    } else {
                        created[pi as usize % created.len()]
                    };
                    // Skip attaches the API rejects (already attached, or
                    // a would-be cycle).
                    let already = doc.node(n).parent.is_some();
                    let cyclic = doc.descendants(n).any(|d| d == parent);
                    if !already && !cyclic {
                        doc.append_child(&mut rec, parent, n);
                    }
                }
                Op::Detach(ni) => {
                    if created.is_empty() {
                        continue;
                    }
                    let n = created[ni as usize % created.len()];
                    doc.remove_child(&mut rec, n);
                }
                Op::ReId(ni, i) => {
                    if created.is_empty() {
                        continue;
                    }
                    let n = created[ni as usize % created.len()];
                    doc.set_attribute(&mut rec, n, "id", &id_name(i), &[]);
                }
            }
            for i in 0..4 {
                let needle = id_name(i);
                prop_assert_eq!(
                    doc.element_by_id(&needle),
                    brute_force(&doc, &needle),
                    "id index diverged for {}",
                    needle
                );
            }
        }
    }
}
