#![forbid(unsafe_code)]

//! DOM tree substrate for the wasteprof browser engine.
//!
//! The Document Object Model is the first artifact of the rendering
//! pipeline (paper §II-A, Figure 1): the HTML parser produces it, JS
//! mutates it, the style system annotates it, and layout consumes it.
//! Every mutation mirrors its dataflow into the instruction trace through
//! per-node virtual-memory cells, so the backward slicer can track pixels
//! all the way back to the network bytes a node was parsed from.

#![warn(missing_docs)]

mod document;
mod node;

pub use document::{Descendants, Document};
pub use node::{Attr, Node, NodeCells, NodeData, NodeId};
