//! The document: an arena-allocated DOM tree whose mutations are mirrored
//! into the instruction trace.

use std::collections::{HashMap, HashSet};

use wasteprof_trace::{site, AddrRange, Recorder, Region};

use crate::node::{Attr, Node, NodeCells, NodeData, NodeId};

/// A DOM tree.
///
/// Every mutating method takes the [`Recorder`] and a *provenance* operand
/// set (`src`): the trace instruction that updates the node's cells reads
/// `src`, so the slicer sees where DOM state came from (input bytes, token
/// cells, JS values, ...).
///
/// # Examples
///
/// ```
/// use wasteprof_dom::Document;
/// use wasteprof_trace::{Recorder, ThreadKind};
///
/// let mut rec = Recorder::new();
/// rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
/// let mut doc = Document::new(&mut rec);
/// let body = doc.create_element(&mut rec, "body", &[]);
/// doc.append_child(&mut rec, doc.root(), body);
/// let t = doc.create_text(&mut rec, "hello", &[]);
/// doc.append_child(&mut rec, body, t);
/// assert_eq!(doc.text_content(body), "hello");
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
    dirty: HashSet<NodeId>,
    /// Nodes per `id` attribute value — `element_by_id` runs per input
    /// event and per JS `getElementById`, so a full-tree scan there would
    /// dominate interactive sessions.
    id_index: HashMap<String, Vec<NodeId>>,
}

impl Document {
    /// Creates a document with an empty root.
    pub fn new(rec: &mut Recorder) -> Self {
        let cells = NodeCells {
            meta: rec.alloc_cell(Region::Heap),
            structure: rec.alloc_cell(Region::Heap),
        };
        let root = Node {
            parent: None,
            children: Vec::new(),
            data: NodeData::Document,
            cells,
        };
        Document {
            nodes: vec![root],
            root: NodeId(0),
            dirty: HashSet::new(),
            id_index: HashMap::new(),
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes ever created (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    fn alloc_node(&mut self, rec: &mut Recorder, data: NodeData) -> NodeId {
        let cells = NodeCells {
            meta: rec.alloc_cell(Region::Heap),
            structure: rec.alloc_cell(Region::Heap),
        };
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: None,
            children: Vec::new(),
            data,
            cells,
        });
        id
    }

    /// Creates a detached element. The trace write of the node's identity
    /// reads `src` (e.g. the token cell it was parsed from).
    pub fn create_element(&mut self, rec: &mut Recorder, tag: &str, src: &[AddrRange]) -> NodeId {
        let id = self.alloc_node(
            rec,
            NodeData::Element {
                tag: tag.to_ascii_lowercase(),
                attrs: Vec::new(),
            },
        );
        let meta = self.nodes[id.index()].cells.meta;
        rec.compute(site!(), src, &[meta.into()]);
        self.dirty.insert(id);
        id
    }

    /// Creates a detached text node holding `text`.
    ///
    /// The text gets one trace cell per 8 bytes of content (at least one),
    /// so longer text is proportionally more data.
    pub fn create_text(&mut self, rec: &mut Recorder, text: &str, src: &[AddrRange]) -> NodeId {
        let len = (text.len() as u32).max(1);
        let range = rec.alloc(Region::Heap, len);
        let id = self.alloc_node(
            rec,
            NodeData::Text {
                text: text.to_owned(),
                range,
            },
        );
        rec.compute(site!(), src, &[range]);
        let meta = self.nodes[id.index()].cells.meta;
        rec.compute(site!(), src, &[meta.into()]);
        self.dirty.insert(id);
        id
    }

    /// Appends `child` as the last child of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent, or if `parent` is `child` or
    /// a descendant of it (a cycle would hang every tree traversal).
    pub fn append_child(&mut self, rec: &mut Recorder, parent: NodeId, child: NodeId) {
        assert!(
            self.nodes[child.index()].parent.is_none(),
            "{child:?} already attached"
        );
        let mut cursor = Some(parent);
        while let Some(n) = cursor {
            assert!(
                n != child,
                "appending {child:?} under its own descendant {parent:?}"
            );
            cursor = self.nodes[n.index()].parent;
        }
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
        let child_meta = self.nodes[child.index()].cells.meta;
        let parent_struct = self.nodes[parent.index()].cells.structure;
        let child_struct = self.nodes[child.index()].cells.structure;
        rec.compute(
            site!(),
            &[child_meta.into()],
            &[parent_struct.into(), child_struct.into()],
        );
        self.dirty.insert(parent);
    }

    /// Detaches `child` from its parent.
    pub fn remove_child(&mut self, rec: &mut Recorder, child: NodeId) {
        if let Some(parent) = self.nodes[child.index()].parent.take() {
            self.nodes[parent.index()].children.retain(|&c| c != child);
            let parent_struct = self.nodes[parent.index()].cells.structure;
            let child_meta = self.nodes[child.index()].cells.meta;
            rec.compute(site!(), &[child_meta.into()], &[parent_struct.into()]);
            self.dirty.insert(parent);
        }
    }

    /// Sets (or replaces) an attribute; the value cell is written reading
    /// `src`.
    pub fn set_attribute(
        &mut self,
        rec: &mut Recorder,
        id: NodeId,
        name: &str,
        value: &str,
        src: &[AddrRange],
    ) {
        let name_lc = name.to_ascii_lowercase();
        let mut old_id: Option<String> = None;
        let cell = match &mut self.nodes[id.index()].data {
            NodeData::Element { attrs, .. } => {
                if let Some(a) = attrs.iter_mut().find(|a| a.name == name_lc) {
                    if name_lc == "id" {
                        old_id = Some(std::mem::take(&mut a.value));
                    }
                    a.value = value.to_owned();
                    a.cell
                } else {
                    let cell = rec.alloc_cell(Region::Heap);
                    attrs.push(Attr {
                        name: name_lc.clone(),
                        value: value.to_owned(),
                        cell,
                    });
                    cell
                }
            }
            _ => panic!("set_attribute on a non-element"),
        };
        if name_lc == "id" {
            if let Some(old) = old_id {
                if let Some(v) = self.id_index.get_mut(&old) {
                    v.retain(|&n| n != id);
                }
            }
            self.id_index.entry(value.to_owned()).or_default().push(id);
        }
        rec.compute(site!(), src, &[cell.into()]);
        self.dirty.insert(id);
    }

    /// Replaces the content of a text node; the text cells are rewritten
    /// reading `src`.
    pub fn set_text(&mut self, rec: &mut Recorder, id: NodeId, text: &str, src: &[AddrRange]) {
        match &mut self.nodes[id.index()].data {
            NodeData::Text { text: t, range } => {
                *t = text.to_owned();
                let range = *range;
                rec.compute(site!(), src, &[range]);
            }
            _ => panic!("set_text on a non-text node"),
        }
        self.dirty.insert(id);
    }

    // ----- queries -----------------------------------------------------

    /// Iterates over all node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `id` and all its descendants, depth-first, in document
    /// order.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// The first element (in document order) whose `id` attribute is
    /// `needle`.
    pub fn element_by_id(&self, needle: &str) -> Option<NodeId> {
        let cands = self.id_index.get(needle)?;
        // The index holds every node ever given this id; only attached
        // ones count, first in document order if several.
        let mut attached = cands.iter().copied().filter(|&n| self.is_attached(n));
        let first = attached.next()?;
        match attached.next() {
            None => Some(first),
            Some(_) => self
                .descendants(self.root)
                .find(|n| cands.contains(n) && self.node(*n).id() == Some(needle)),
        }
    }

    /// True if `node` is connected to the document root.
    fn is_attached(&self, node: NodeId) -> bool {
        let mut cur = node;
        loop {
            if cur == self.root {
                return true;
            }
            match self.nodes[cur.index()].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All elements with the given tag, in document order.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.descendants(self.root)
            .filter(|&n| self.node(n).tag() == Some(tag))
            .collect()
    }

    /// All elements carrying the given class, in document order.
    pub fn elements_by_class(&self, class: &str) -> Vec<NodeId> {
        self.descendants(self.root)
            .filter(|&n| self.node(n).is_element() && self.node(n).has_class(class))
            .collect()
    }

    /// Concatenated text of `id`'s descendants.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let Some(t) = self.node(n).text() {
                out.push_str(t);
            }
        }
        out
    }

    /// Ancestor chain of `id`, nearest first, excluding `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.node(p).parent;
        }
        out
    }

    // ----- dirtiness (partial re-rendering) ----------------------------

    /// Marks a node as needing restyle/relayout.
    pub fn mark_dirty(&mut self, id: NodeId) {
        self.dirty.insert(id);
    }

    /// Takes the set of dirty nodes, clearing it.
    pub fn take_dirty(&mut self) -> HashSet<NodeId> {
        std::mem::take(&mut self.dirty)
    }

    /// True if anything is dirty.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }
}

/// Depth-first iterator over a subtree. Created by
/// [`Document::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = self.doc.node(id);
        self.stack.extend(node.children.iter().rev());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::ThreadKind;

    fn setup() -> (Recorder, Document) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
        let doc = Document::new(&mut rec);
        (rec, doc)
    }

    #[test]
    fn build_small_tree() {
        let (mut rec, mut doc) = setup();
        let html = doc.create_element(&mut rec, "HTML", &[]);
        let body = doc.create_element(&mut rec, "body", &[]);
        doc.append_child(&mut rec, doc.root(), html);
        doc.append_child(&mut rec, html, body);
        assert_eq!(doc.node(html).tag(), Some("html")); // lowercased
        assert_eq!(doc.node(body).parent, Some(html));
        assert_eq!(doc.node(html).children, vec![body]);
    }

    #[test]
    #[should_panic(expected = "own descendant")]
    fn append_child_rejects_cycles() {
        let (mut rec, mut doc) = setup();
        let a = doc.create_element(&mut rec, "div", &[]);
        let b = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, a, b);
        // Re-parenting a under its own descendant b must panic.
        doc.remove_child(&mut rec, a);
        doc.append_child(&mut rec, b, a);
    }

    #[test]
    fn attributes_and_classes() {
        let (mut rec, mut doc) = setup();
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.set_attribute(&mut rec, el, "id", "hero", &[]);
        doc.set_attribute(&mut rec, el, "class", "card wide", &[]);
        assert_eq!(doc.node(el).id(), Some("hero"));
        assert!(doc.node(el).has_class("card"));
        assert!(doc.node(el).has_class("wide"));
        assert!(!doc.node(el).has_class("narrow"));
        // Overwrite keeps the same cell.
        let cell_before = doc.node(el).attr("id").unwrap().cell;
        doc.set_attribute(&mut rec, el, "id", "hero2", &[]);
        assert_eq!(doc.node(el).attr("id").unwrap().cell, cell_before);
        assert_eq!(doc.node(el).id(), Some("hero2"));
    }

    #[test]
    fn queries_by_id_tag_class() {
        let (mut rec, mut doc) = setup();
        let a = doc.create_element(&mut rec, "div", &[]);
        let b = doc.create_element(&mut rec, "span", &[]);
        let c = doc.create_element(&mut rec, "div", &[]);
        doc.set_attribute(&mut rec, b, "id", "x", &[]);
        doc.set_attribute(&mut rec, c, "class", "hot", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, a, b);
        doc.append_child(&mut rec, a, c);
        assert_eq!(doc.element_by_id("x"), Some(b));
        assert_eq!(doc.element_by_id("nope"), None);
        assert_eq!(doc.elements_by_tag("div"), vec![a, c]);
        assert_eq!(doc.elements_by_class("hot"), vec![c]);
    }

    #[test]
    fn text_content_concatenates_in_order() {
        let (mut rec, mut doc) = setup();
        let p = doc.create_element(&mut rec, "p", &[]);
        let t1 = doc.create_text(&mut rec, "hello ", &[]);
        let t2 = doc.create_text(&mut rec, "world", &[]);
        doc.append_child(&mut rec, doc.root(), p);
        doc.append_child(&mut rec, p, t1);
        doc.append_child(&mut rec, p, t2);
        assert_eq!(doc.text_content(p), "hello world");
    }

    #[test]
    fn remove_child_detaches() {
        let (mut rec, mut doc) = setup();
        let a = doc.create_element(&mut rec, "div", &[]);
        let b = doc.create_element(&mut rec, "span", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, a, b);
        doc.remove_child(&mut rec, b);
        assert_eq!(doc.node(b).parent, None);
        assert!(doc.node(a).children.is_empty());
        // Detached node can be re-appended.
        doc.append_child(&mut rec, a, b);
        assert_eq!(doc.node(b).parent, Some(a));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_append_panics() {
        let (mut rec, mut doc) = setup();
        let a = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, doc.root(), a);
    }

    #[test]
    fn mutations_emit_trace_instructions_with_provenance() {
        let (mut rec, mut doc) = setup();
        let src = rec.alloc(Region::Input, 16);
        let before = rec.pos();
        let el = doc.create_element(&mut rec, "div", &[src]);
        assert!(rec.pos().0 > before.0, "creation emitted nothing");
        let trace_cell = doc.node(el).cells.meta;
        let trace = rec.finish();
        // Some instruction reads the provenance and some writes the cell.
        assert!(trace.iter().any(|i| i.mem_reads().contains(&src)));
        assert!(trace
            .iter()
            .any(|i| i.mem_writes().iter().any(|w| w.contains(trace_cell))));
    }

    #[test]
    fn dirty_tracking() {
        let (mut rec, mut doc) = setup();
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        assert!(doc.has_dirty());
        let dirty = doc.take_dirty();
        assert!(dirty.contains(&el));
        assert!(!doc.has_dirty());
        doc.set_attribute(&mut rec, el, "class", "x", &[]);
        assert!(doc.take_dirty().contains(&el));
    }

    #[test]
    fn ancestors_nearest_first() {
        let (mut rec, mut doc) = setup();
        let a = doc.create_element(&mut rec, "div", &[]);
        let b = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, a, b);
        assert_eq!(doc.ancestors(b), vec![a, doc.root()]);
        assert_eq!(doc.ancestors(doc.root()), vec![]);
    }

    #[test]
    fn descendants_document_order() {
        let (mut rec, mut doc) = setup();
        let a = doc.create_element(&mut rec, "a", &[]);
        let b = doc.create_element(&mut rec, "b", &[]);
        let c = doc.create_element(&mut rec, "c", &[]);
        let d = doc.create_element(&mut rec, "d", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, a, b);
        doc.append_child(&mut rec, b, c);
        doc.append_child(&mut rec, a, d);
        let order: Vec<NodeId> = doc.descendants(doc.root()).collect();
        assert_eq!(order, vec![doc.root(), a, b, c, d]);
    }
}
