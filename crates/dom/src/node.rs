//! DOM node types.

use std::fmt;

use wasteprof_trace::{Addr, AddrRange};

/// Identifier of a node within one [`crate::Document`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index into the document's node arena.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Virtual-memory cells mirroring a node's state for the trace.
///
/// Writing DOM state writes these cells (with provenance reads), so the
/// slicer sees the real dataflow: input bytes → tokens → nodes → styles →
/// layout → pixels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCells {
    /// Identity and tag of the node.
    pub meta: Addr,
    /// Tree linkage (parent/child relationships).
    pub structure: Addr,
}

/// One attribute of an element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name, lowercase.
    pub name: String,
    /// Attribute value.
    pub value: String,
    /// Cell holding the value for the trace.
    pub cell: Addr,
}

/// Payload of a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeData {
    /// The document root.
    Document,
    /// An element with a tag name and attributes.
    Element {
        /// Tag name, lowercase.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<Attr>,
    },
    /// A text node.
    Text {
        /// The text content.
        text: String,
        /// Range of cells holding the text for the trace.
        range: AddrRange,
    },
}

/// One node of the DOM tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Parent node, if any.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Node payload.
    pub data: NodeData,
    /// Trace cells of the node.
    pub cells: NodeCells,
}

impl Node {
    /// The element tag name, if this node is an element.
    pub fn tag(&self) -> Option<&str> {
        match &self.data {
            NodeData::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// The text content, if this node is a text node.
    pub fn text(&self) -> Option<&str> {
        match &self.data {
            NodeData::Text { text, .. } => Some(text),
            _ => None,
        }
    }

    /// The cell range of the text content, if this node is a text node.
    pub fn text_range(&self) -> Option<AddrRange> {
        match &self.data {
            NodeData::Text { range, .. } => Some(*range),
            _ => None,
        }
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&Attr> {
        match &self.data {
            NodeData::Element { attrs, .. } => attrs.iter().find(|a| a.name == name),
            _ => None,
        }
    }

    /// The value of an attribute, if present.
    pub fn attr_value(&self, name: &str) -> Option<&str> {
        self.attr(name).map(|a| a.value.as_str())
    }

    /// The element's `id` attribute.
    pub fn id(&self) -> Option<&str> {
        self.attr_value("id")
    }

    /// The element's class list (whitespace-split `class` attribute).
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.attr_value("class").unwrap_or("").split_whitespace()
    }

    /// True if the element carries the given class.
    pub fn has_class(&self, class: &str) -> bool {
        self.classes().any(|c| c == class)
    }

    /// True for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self.data, NodeData::Element { .. })
    }

    /// True for text nodes.
    pub fn is_text(&self) -> bool {
        matches!(self.data, NodeData::Text { .. })
    }
}
