//! Developer probe: per-benchmark trace sizes, per-thread slice
//! percentages, and coverage — the quick feedback loop used to tune the
//! workloads against Table II.
//!
//! ```sh
//! cargo run --release -p wasteprof-workloads --example probe
//! ```
use wasteprof_slicer::{pixel_criteria, slice, ForwardPass, SliceOptions};
use wasteprof_trace::ThreadKind;
use wasteprof_workloads::Benchmark;

fn main() {
    for b in Benchmark::ALL {
        let t0 = std::time::Instant::now();
        let session = b.run();
        let gen_t = t0.elapsed();
        let trace = &session.trace;
        let t1 = std::time::Instant::now();
        let fwd = ForwardPass::build(trace);
        let result = slice(
            trace,
            &fwd,
            &pixel_criteria(trace),
            &SliceOptions::default(),
        );
        let slice_t = t1.elapsed();
        println!("== {} ==", b.label());
        println!(
            "  total instrs: {}  (gen {:.1?} slice {:.1?})",
            trace.len(),
            gen_t,
            slice_t
        );
        println!("  overall slice: {:.1}%", result.fraction() * 100.0);
        let threads = trace.threads();
        for info in threads.iter() {
            let (s, n) = result.thread_stats(info.id());
            if n > 0 {
                println!(
                    "  {:<14} slice {:>5.1}%  total {:>9}",
                    info.name(),
                    s as f64 / n as f64 * 100.0,
                    n
                );
            }
        }
        let _ = ThreadKind::Main;
        println!(
            "  markers: {}  frames: {}",
            trace.markers().len(),
            session.frames
        );
        println!(
            "  JS unused: load {:.0}% end {:.0}%  CSS unused: load {:.0}% end {:.0}%",
            session.js_coverage_at_load.unused_fraction() * 100.0,
            session.js_coverage.unused_fraction() * 100.0,
            session.css_coverage_at_load.unused_fraction() * 100.0,
            session.css_coverage.unused_fraction() * 100.0
        );
        println!(
            "  bytes: load {} total {}",
            session.bytes_at_load, session.bytes_total
        );
    }
}
