//! Developer probe: per-function slice percentages for one benchmark —
//! which engine subsystems' work reaches the pixels.
//!
//! ```sh
//! cargo run --release -p wasteprof-workloads --example funcprobe
//! ```
use wasteprof_slicer::{pixel_criteria, slice, ForwardPass, SliceOptions};
use wasteprof_workloads::Benchmark;

fn main() {
    let b = Benchmark::Bing;
    let session = b.run();
    let trace = &session.trace;
    let fwd = ForwardPass::build(trace);
    let r = slice(
        trace,
        &fwd,
        &pixel_criteria(trace),
        &SliceOptions::default(),
    );
    let mut rows: Vec<(String, u64, u64)> = r
        .per_func()
        .map(|(f, s, n)| (trace.functions().name(f).to_owned(), s, n))
        .collect();
    rows.sort_by_key(|(_, _, n)| std::cmp::Reverse(*n));
    println!("{:<62} {:>9} {:>8}", "function", "total", "slice%");
    for (name, s, n) in rows.iter().take(40) {
        println!(
            "{:<62} {:>9} {:>7.1}%",
            name,
            n,
            *s as f64 / *n as f64 * 100.0
        );
    }
}
