#![forbid(unsafe_code)]

//! Synthetic website workloads reproducing the paper's four benchmarks
//! (§IV-B): Amazon in desktop and emulated mobile views, Google Maps, and
//! Bing with its scripted browse session.
//!
//! Live commercial websites are not available to a reproduction, so each
//! benchmark is a parameterized synthetic site whose *measured*
//! characteristics are tuned to the paper's: unused JS/CSS fractions
//! (Table I), above/below-the-fold content split, compositing layer
//! structure, and interaction handlers. See DESIGN.md §2 for the
//! substitution argument.

#![warn(missing_docs)]

mod frames;
mod generator;
mod sites;

pub use frames::{bing_frames, FrameSession};
pub use generator::{build_site, DeferredResource, SiteSpec};
pub use sites::{amazon_browse, bing_browse, maps_browse, Benchmark};
