//! The four paper benchmarks (§IV-B) as synthetic-site specifications,
//! plus their scripted browse sessions.
//!
//! * **Amazon (desktop view): Load** — a heavy storefront, 3 rasterizers.
//! * **Amazon (mobile view): Load** — the same site on the emulated
//!   360×640 display; the first view is much simpler.
//! * **Google Maps: Load** — viewport-sized app, JS-heavy, little
//!   scrollable content.
//! * **Bing: Load + Browse** — lighter page plus a scripted session:
//!   opening and closing the top-right menu, rolling the news pane, and
//!   typing a search term.

use wasteprof_browser::{BrowserConfig, ResourceKind, Session, Site, Tab};
use wasteprof_gfx::CompositorConfig;

use crate::generator::{build_site, DeferredResource, SiteSpec};

/// The paper's four benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Amazon in desktop view (load only; 3 rasterizer threads).
    AmazonDesktop,
    /// Amazon in emulated mobile view (load only).
    AmazonMobile,
    /// Google Maps (load only).
    GoogleMaps,
    /// Bing (load + browse session).
    Bing,
}

impl Benchmark {
    /// All four, in the paper's column order (Table II).
    pub const ALL: [Benchmark; 4] = [
        Benchmark::AmazonDesktop,
        Benchmark::AmazonMobile,
        Benchmark::GoogleMaps,
        Benchmark::Bing,
    ];

    /// Table II column label.
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::AmazonDesktop => "Amazon (desktop view): Load",
            Benchmark::AmazonMobile => "Amazon (mobile view): Load",
            Benchmark::GoogleMaps => "Google Maps: Load",
            Benchmark::Bing => "Bing: Load + Browse",
        }
    }

    /// Short name for file outputs.
    pub fn short_name(&self) -> &'static str {
        match self {
            Benchmark::AmazonDesktop => "amazon_desktop",
            Benchmark::AmazonMobile => "amazon_mobile",
            Benchmark::GoogleMaps => "maps",
            Benchmark::Bing => "bing",
        }
    }

    /// The site served to the tab.
    pub fn spec(&self) -> SiteSpec {
        match self {
            // Amazon serves a heavier desktop page and a lighter page to
            // the emulated mobile view (as the real site does by user
            // agent); both share the brand structure.
            Benchmark::AmazonDesktop => SiteSpec {
                url: "https://www.amazon.test/".into(),
                title: "Amazon".into(),
                seed: 0xA11A,
                nav_items: 10,
                sections: 3,
                items_per_section: 12,
                words_per_item: 7,
                images: 14,
                hidden_overlays: 3,
                css_used_bytes: 22_000,
                css_unused_bytes: 34_000,
                js_used_fns: 60,
                js_unused_fns: 72,
                js_fn_loop: 24,
                warm_fns: 60,
                js_built_cards: 10,
                js_canvas_tiles: 0,
                price_limit: 24,
                js_speculative_loop: 650,
                analytics: true,
                callback_widgets: 6,
                deferred: vec![DeferredResource {
                    url: "recs.js".into(),
                    kind: ResourceKind::Js,
                    bytes: 7_000,
                    used_fraction: 0.8,
                }],
            },
            Benchmark::AmazonMobile => SiteSpec {
                url: "https://www.amazon.test/".into(),
                title: "Amazon".into(),
                seed: 0xA11A,
                nav_items: 6,
                sections: 2,
                items_per_section: 12,
                words_per_item: 5,
                images: 8,
                hidden_overlays: 2,
                css_used_bytes: 9_000,
                css_unused_bytes: 14_000,
                js_used_fns: 24,
                js_unused_fns: 26,
                js_fn_loop: 24,
                warm_fns: 24,
                js_built_cards: 4,
                js_canvas_tiles: 0,
                price_limit: 24,
                js_speculative_loop: 150,
                analytics: true,
                callback_widgets: 3,
                deferred: vec![DeferredResource {
                    url: "recs.js".into(),
                    kind: ResourceKind::Js,
                    bytes: 5_000,
                    used_fraction: 0.8,
                }],
            },
            Benchmark::GoogleMaps => SiteSpec {
                url: "https://maps.google.test/".into(),
                title: "Google Maps".into(),
                seed: 0x3A95,
                nav_items: 4,
                // A maps page is one screen of tiles plus a side panel —
                // little below-the-fold content.
                sections: 2,
                items_per_section: 12,
                words_per_item: 5,
                images: 12,
                hidden_overlays: 2,
                css_used_bytes: 26_000,
                css_unused_bytes: 26_000,
                js_used_fns: 110,
                js_unused_fns: 115,
                js_fn_loop: 12,
                warm_fns: 110,
                js_built_cards: 0,
                js_canvas_tiles: 42,
                price_limit: 9999,
                js_speculative_loop: 400,
                analytics: true,
                callback_widgets: 4,
                deferred: vec![
                    DeferredResource {
                        url: "tiles2.js".into(),
                        kind: ResourceKind::Js,
                        bytes: 40_000,
                        used_fraction: 0.85,
                    },
                    DeferredResource {
                        url: "panorama.css".into(),
                        kind: ResourceKind::Css,
                        bytes: 9_000,
                        used_fraction: 0.4,
                    },
                ],
            },
            Benchmark::Bing => SiteSpec {
                url: "https://www.bing.test/".into(),
                title: "Bing".into(),
                seed: 0xB139,
                nav_items: 6,
                sections: 2,
                items_per_section: 8,
                words_per_item: 6,
                images: 6,
                hidden_overlays: 2,
                css_used_bytes: 3_200,
                css_unused_bytes: 3_600,
                js_used_fns: 22,
                js_unused_fns: 24,
                js_fn_loop: 8,
                warm_fns: 22,
                js_built_cards: 3,
                js_canvas_tiles: 0,
                price_limit: 9999,
                js_speculative_loop: 450,
                analytics: true,
                callback_widgets: 4,
                deferred: vec![DeferredResource {
                    url: "suggest.js".into(),
                    kind: ResourceKind::Js,
                    bytes: 4_500,
                    used_fraction: 0.9,
                }],
            },
        }
    }

    /// Builds the synthetic site.
    pub fn site(&self) -> Site {
        build_site(&self.spec())
    }

    /// Every JavaScript source the site serves, as `(url, source)` pairs
    /// in resource order (including deferred scripts fetched during
    /// browse interactions).
    ///
    /// This is the public enumeration the static analyzer and tests use;
    /// the URLs are the same origin strings the trace and the execution
    /// witness record, so static findings can be joined against dynamic
    /// ground truth without duplicating site definitions.
    pub fn scripts(&self) -> Vec<(String, String)> {
        self.site()
            .resources
            .into_iter()
            .filter(|r| r.kind == ResourceKind::Js)
            .map(|r| (r.url, r.content))
            .collect()
    }

    /// Browser configuration: the paper observed 3 rasterizer threads for
    /// Amazon desktop and 2 everywhere else; mobile uses the emulated
    /// 360×640 display.
    pub fn browser_config(&self) -> BrowserConfig {
        match self {
            Benchmark::AmazonDesktop => BrowserConfig {
                raster_threads: 3,
                compositor: CompositorConfig {
                    prepaint_margin: 1024.0,
                    raster_task_overhead: 20,
                    raster_cost_divisor: 128,
                    ..CompositorConfig::desktop()
                },
                ..BrowserConfig::desktop()
            },
            // The emulated 360x640 display: raster commands process the
            // same display lists but produce very few useful pixels.
            Benchmark::AmazonMobile => BrowserConfig {
                compositor: CompositorConfig {
                    raster_task_overhead: 260,
                    raster_cost_divisor: 2048,
                    ..CompositorConfig::mobile()
                },
                ..BrowserConfig::mobile()
            },
            // Maps rasterizes dense imagery that is almost all on screen.
            Benchmark::GoogleMaps => BrowserConfig {
                compositor: CompositorConfig {
                    prepaint_margin: 256.0,
                    raster_task_overhead: 10,
                    raster_cost_divisor: 64,
                    ..CompositorConfig::desktop()
                },
                ..BrowserConfig::desktop()
            },
            Benchmark::Bing => BrowserConfig {
                compositor: CompositorConfig {
                    prepaint_margin: 512.0,
                    raster_task_overhead: 10,
                    raster_cost_divisor: 128,
                    ..CompositorConfig::desktop()
                },
                ..BrowserConfig::desktop()
            },
        }
    }

    /// Extra compositor vsync ticks pumped after load (the 60 Hz
    /// BeginFrame stream over the load's network-bound wall time).
    fn load_vsync_ticks(&self) -> u32 {
        match self {
            Benchmark::AmazonDesktop => 260,
            Benchmark::AmazonMobile => 240,
            Benchmark::GoogleMaps => 220,
            Benchmark::Bing => 200,
        }
    }

    /// Background-maintenance chunks on the utility worker (GC, cache
    /// sweeps) — the unlisted-thread mass of Table II.
    fn utility_chunks(&self) -> u32 {
        match self {
            Benchmark::AmazonDesktop => 140,
            Benchmark::AmazonMobile => 40,
            Benchmark::GoogleMaps => 330,
            Benchmark::Bing => 240,
        }
    }

    /// Runs the benchmark exactly as Table II defines it: load for the
    /// first three, load + browse for Bing.
    pub fn run(&self) -> Session {
        self.run_with_config(self.browser_config())
    }

    /// Like [`Benchmark::run`], with a custom browser configuration
    /// (ablations: deferred compilation, paint-cache off, different
    /// prepaint margins, ...).
    pub fn run_with_config(&self, config: BrowserConfig) -> Session {
        let mut tab = self.loaded_tab(config);
        if matches!(self, Benchmark::Bing) {
            bing_browse(&mut tab);
        }
        tab.finish()
    }

    /// Loads the page and plays the shared post-load timeline: the vsync
    /// stream before and after the hero carousel starts, background
    /// utility work, and pending timers.
    fn loaded_tab(&self, config: BrowserConfig) -> Tab {
        let mut tab = Tab::new(config);
        tab.load(self.site());
        // Post-load vsync stream: the first stretch before the carousel
        // starts is pure bookkeeping.
        tab.pump_vsync(self.load_vsync_ticks() / 3);
        tab.set_animation("photo", true); // the hero carousel starts
        tab.pump_vsync(self.load_vsync_ticks());
        tab.pump_utility(self.utility_chunks());
        tab.run_timers();
        tab
    }

    /// Runs a load-plus-browse session (the Table I "Load and Browse"
    /// rows; for Bing this equals [`Benchmark::run`]).
    pub fn run_with_browse(&self) -> Session {
        let mut tab = self.loaded_tab(self.browser_config());
        match self {
            Benchmark::AmazonDesktop | Benchmark::AmazonMobile => amazon_browse(&mut tab),
            Benchmark::GoogleMaps => maps_browse(&mut tab),
            Benchmark::Bing => bing_browse(&mut tab),
        }
        tab.finish()
    }
}

/// The Amazon browsing session of Figure 2: "the user scrolls down and up
/// a little bit, clicks to see the next two photos in a photo roll, and
/// finally opens a menu" — with think-time gaps between actions.
pub fn amazon_browse(tab: &mut Tab) {
    tab.idle(120_000);
    tab.scroll(500.0);
    tab.pump_vsync(8);
    tab.idle(90_000);
    tab.scroll(300.0);
    tab.idle(60_000);
    tab.scroll(-800.0);
    tab.pump_vsync(8);
    tab.idle(150_000);
    tab.click("photo-next");
    tab.idle(80_000);
    tab.click("photo-next");
    tab.idle(120_000);
    tab.click("menu-btn");
    tab.pump_vsync(8);
    tab.idle(100_000);
    tab.fetch_extra("recs.js");
    tab.run_timers();
}

/// The Bing session of §IV-B: open and close the top-right menu, roll the
/// news pane, type a term in the search bar.
pub fn bing_browse(tab: &mut Tab) {
    tab.idle(100_000);
    tab.click("menu-btn"); // open
    tab.pump_vsync(48);
    tab.idle(60_000);
    tab.click("menu-btn"); // close
    tab.pump_vsync(48);
    tab.idle(80_000);
    tab.click("news-roll"); // roll the news pane
    tab.pump_vsync(48);
    tab.idle(90_000);
    tab.click("news-roll");
    tab.pump_vsync(48);
    tab.idle(70_000);
    tab.click("menu-btn"); // peek at the menu once more
    tab.pump_vsync(32);
    tab.click("menu-btn");
    tab.idle(50_000);
    tab.fetch_extra("suggest.js"); // typing pulls the suggestion module
    tab.type_text("search", "weather today in rio");
    tab.pump_vsync(48);
    tab.idle(60_000);
    tab.click("news-roll");
    tab.pump_vsync(32);
    tab.idle(50_000);
    tab.pump_utility(80);
    tab.run_timers();
}

/// A Maps session: pan (scroll), zoom (click), and the deferred tile/style
/// downloads that make its byte count grow while browsing (Table I).
pub fn maps_browse(tab: &mut Tab) {
    tab.idle(90_000);
    tab.scroll(200.0);
    tab.pump_vsync(8);
    tab.idle(70_000);
    tab.click("photo-next"); // pan control
    tab.idle(60_000);
    tab.fetch_extra("tiles2.js");
    tab.fetch_extra("panorama.css");
    tab.pump_vsync(10);
    tab.idle(80_000);
    tab.click("menu-btn");
    tab.run_timers();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_build() {
        for b in Benchmark::ALL {
            let site = b.site();
            assert!(site.total_bytes() > 10_000, "{b:?} suspiciously small");
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            Benchmark::AmazonDesktop.label(),
            "Amazon (desktop view): Load"
        );
        assert_eq!(Benchmark::Bing.label(), "Bing: Load + Browse");
    }

    #[test]
    fn amazon_mobile_is_a_lighter_page_on_a_smaller_viewport() {
        let d = Benchmark::AmazonDesktop.site();
        let m = Benchmark::AmazonMobile.site();
        assert!(m.total_bytes() < d.total_bytes());
        let dc = Benchmark::AmazonDesktop.browser_config();
        let mc = Benchmark::AmazonMobile.browser_config();
        assert!(mc.compositor.viewport_w < dc.compositor.viewport_w);
        assert_eq!(dc.raster_threads, 3);
        assert_eq!(mc.raster_threads, 2);
    }

    #[test]
    fn scripts_enumerates_js_sources_by_origin_url() {
        for b in Benchmark::ALL {
            let scripts = b.scripts();
            assert!(scripts.len() >= 3, "{b:?} serves lib/app/analytics");
            for (url, src) in &scripts {
                assert!(url.ends_with(".js"), "{url} is a script URL");
                assert!(!src.is_empty());
                assert!(
                    wasteprof_js::parse(src).is_ok(),
                    "{b:?} {url} must parse for the static analyzer"
                );
            }
            // URLs are unique: they key the join with the dynamic witness.
            let mut urls: Vec<_> = scripts.iter().map(|(u, _)| u.clone()).collect();
            urls.sort();
            urls.dedup();
            assert_eq!(urls.len(), scripts.len());
        }
    }

    #[test]
    fn bing_session_runs_and_browses() {
        let session = Benchmark::Bing.run();
        assert_eq!(session.trace.validate(), Ok(()));
        assert!(session.load_end.0 > 0);
        assert!(
            session.trace.len() as u64 > session.load_end.0,
            "browse work exists"
        );
        assert!(session
            .interactions
            .iter()
            .any(|(l, _)| l.starts_with("click:menu-btn")));
        assert!(session
            .interactions
            .iter()
            .any(|(l, _)| l.starts_with("type:search")));
        // Browsing downloaded more bytes (Table I).
        assert!(session.bytes_total > session.bytes_at_load);
        // Browsing used more of the code.
        assert!(
            session.js_coverage.unused_fraction() < session.js_coverage_at_load.unused_fraction()
        );
    }
}
