//! Parameterized synthetic-site generation.
//!
//! The paper's benchmarks are four live commercial websites; the
//! reproduction's are synthetic sites generated from explicit knobs that
//! control exactly the characteristics the study measures: how much
//! JS/CSS is imported vs. actually used (Table I), how much content is
//! above vs. below the fold, how many compositing layers exist and how
//! many of those are occluded or invisible (§II-B), and how much work
//! interaction handlers do.

use std::fmt::Write as _;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wasteprof_browser::{ResourceKind, Site};

/// Knobs describing a synthetic site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site URL.
    pub url: String,
    /// Page title.
    pub title: String,
    /// Determinism seed.
    pub seed: u64,
    /// Top-level navigation entries in the header.
    pub nav_items: usize,
    /// Content sections (vertically stacked; later ones are below the
    /// fold).
    pub sections: usize,
    /// Cards per section.
    pub items_per_section: usize,
    /// Words of text per card.
    pub words_per_item: usize,
    /// Images on the page (hero + cards).
    pub images: usize,
    /// Hidden fixed-position overlays (invisible layers that still get
    /// backing stores).
    pub hidden_overlays: usize,
    /// Target bytes of *used* CSS rules.
    pub css_used_bytes: usize,
    /// Target bytes of *unused* CSS rules (never-matching selectors,
    /// `:hover` variants, inactive media queries).
    pub css_unused_bytes: usize,
    /// JS library functions that the page actually calls.
    pub js_used_fns: usize,
    /// JS library functions that are imported but never called.
    pub js_unused_fns: usize,
    /// Loop iterations inside each used library function (execution
    /// weight).
    pub js_fn_loop: usize,
    /// Library functions the boot code "warms" (calls without using the
    /// results — speculative initialization that rarely pays off).
    pub warm_fns: usize,
    /// Cards the app builds dynamically at boot (client-side rendered
    /// recommendations — JS work that directly feeds visible pixels).
    pub js_built_cards: usize,
    /// Map-canvas tiles the app positions at boot (the Maps profile:
    /// almost all JS work feeds the on-screen canvas).
    pub js_canvas_tiles: usize,
    /// How many cards the desktop boot initializes prices for (lazy
    /// initialization boundary); mobile always initializes 24.
    pub price_limit: usize,
    /// Iterations of the speculative precompute a boot timer schedules:
    /// work done eagerly "in case the user needs it" whose output is never
    /// shown — the paper's headline deferral opportunity.
    pub js_speculative_loop: usize,
    /// Whether the page ships an analytics module (timers + beacon +
    /// console noise).
    pub analytics: bool,
    /// Widget handlers in the higher-order callback module
    /// (`callbacks.js`): functions flow through variables, object
    /// properties, parameters, closures, and timers before they run —
    /// even-numbered widgets are dispatched through a registry, odd ones
    /// are registered but never invoked. 0 disables the module.
    pub callback_widgets: usize,
    /// Extra resources fetched during browsing: `(url, kind, bytes,
    /// used)`; `used == true` generates JS whose functions all run.
    pub deferred: Vec<DeferredResource>,
}

/// A resource only fetched during browsing (Bing/Maps keep downloading —
/// Table I's "Load and Browse" rows).
#[derive(Debug, Clone)]
pub struct DeferredResource {
    /// URL the browse script fetches.
    pub url: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Approximate payload size.
    pub bytes: usize,
    /// For JS: fraction of its functions the page calls after loading it.
    pub used_fraction: f64,
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec {
            url: "https://example.test".into(),
            title: "Example".into(),
            seed: 1,
            nav_items: 6,
            sections: 4,
            items_per_section: 10,
            words_per_item: 8,
            images: 4,
            hidden_overlays: 2,
            css_used_bytes: 4_000,
            css_unused_bytes: 4_000,
            js_used_fns: 10,
            js_unused_fns: 10,
            js_fn_loop: 6,
            warm_fns: 6,
            js_built_cards: 2,
            js_canvas_tiles: 0,
            price_limit: 9999,
            js_speculative_loop: 120,
            analytics: true,
            callback_widgets: 2,
            deferred: Vec::new(),
        }
    }
}

const WORDS: &[&str] = &[
    "fast", "shipping", "deal", "today", "classic", "modern", "wireless", "premium", "daily",
    "save", "new", "top", "rated", "choice", "original", "compact", "pro", "ultra", "family",
    "travel", "home", "garden", "sport", "basic",
];

fn words(rng: &mut SmallRng, n: usize) -> String {
    (0..n)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Builds the [`Site`] described by a spec.
pub fn build_site(spec: &SiteSpec) -> Site {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let html = build_html(spec, &mut rng);
    let css = build_css(spec, &mut rng);
    let lib = build_library_js(spec);
    let app = build_app_js(spec);

    let mut site = Site::new(spec.url.clone(), html)
        .with_resource("main.css", ResourceKind::Css, css)
        .with_resource("lib.js", ResourceKind::Js, lib)
        .with_resource("app.js", ResourceKind::Js, app);
    if spec.analytics {
        site = site.with_resource("analytics.js", ResourceKind::Js, build_analytics_js());
    }
    if spec.callback_widgets > 0 {
        site = site.with_resource("callbacks.js", ResourceKind::Js, build_callbacks_js(spec));
    }
    for (i, _) in (0..spec.images).enumerate() {
        site = site.with_resource(
            format!("img{i}.png"),
            ResourceKind::Image,
            "IMG0".repeat(64 + (i % 5) * 32),
        );
    }
    for d in &spec.deferred {
        let content = match d.kind {
            ResourceKind::Js => build_deferred_js(d),
            ResourceKind::Css => build_deferred_css(d),
            _ => "D".repeat(d.bytes),
        };
        site = site.with_resource(d.url.clone(), d.kind, content);
    }
    site
}

fn build_html(spec: &SiteSpec, rng: &mut SmallRng) -> String {
    let mut h = String::with_capacity(16 * 1024);
    let _ = write!(
        h,
        "<html><head><title>{}</title><link rel=\"stylesheet\" href=\"main.css\"></head><body>",
        spec.title
    );

    // Header with nav and a hidden dropdown menu (opened by interaction).
    h.push_str("<div id=\"header\" class=\"header bar\">");
    let _ = write!(h, "<span class=\"logo\">{}</span>", spec.title);
    // Widget status readout, inside the fixed-height header so it is
    // above the fold without shifting any layout (the callbacks module
    // writes into it; a below-the-fold or layout-shifting placement would
    // turn unrelated displayed paint into dynamic waste).
    if spec.callback_widgets > 0 {
        h.push_str("<span id=\"w-status\" class=\"w-status\">widgets</span>");
    }
    for i in 0..spec.nav_items {
        let _ = write!(
            h,
            "<a class=\"nav-link\" id=\"nav{i}\">{}</a>",
            words(rng, 1)
        );
    }
    h.push_str("<button id=\"menu-btn\" class=\"menu-btn\">=</button>");
    h.push_str("<div id=\"menu\" class=\"menu panel\" style=\"display: none\">");
    for i in 0..8 {
        let _ = write!(
            h,
            "<a class=\"menu-item\" id=\"mi{i}\">{}</a>",
            words(rng, 2)
        );
    }
    h.push_str("</div></div>");

    // Hero with the photo roll the Amazon session flips through.
    h.push_str("<div id=\"hero\" class=\"hero\">");
    h.push_str("<img id=\"photo\" src=\"img0.png\" class=\"photo\">");
    h.push_str("<button id=\"photo-next\" class=\"roll-btn\">&gt;</button>");
    let _ = write!(h, "<h1 id=\"headline\">{}</h1>", words(rng, 6));
    h.push_str("<input id=\"search\" class=\"search-box\" value=\"\">");
    h.push_str("<div id=\"suggestions\" class=\"suggest-panel\" style=\"display: none\"></div>");
    h.push_str("</div>");

    // Hosts for client-side-rendered content: a recommendations strip and
    // (for app-like sites) an absolutely positioned canvas.
    h.push_str("<div id=\"recs\" class=\"section recs\"></div>");
    h.push_str("<div id=\"canvas\" class=\"canvas\"></div>");

    // Content sections with cards.
    for s in 0..spec.sections {
        let _ = write!(h, "<div class=\"section s{s}\" id=\"sec{s}\">");
        let _ = write!(h, "<h2>{}</h2>", words(rng, 3));
        for i in 0..spec.items_per_section {
            let _ = write!(h, "<div class=\"item card c{}\">", i % 4);
            if (s * spec.items_per_section + i) < spec.images.saturating_sub(1) {
                let _ = write!(
                    h,
                    "<img src=\"img{}.png\" class=\"thumb\">",
                    s * spec.items_per_section + i + 1
                );
            }
            let _ = write!(
                h,
                "<span class=\"title\">{}</span>",
                words(rng, spec.words_per_item)
            );
            let _ = write!(h, "<span class=\"price\" id=\"p{s}_{i}\"></span>");
            h.push_str("<button class=\"buy\">Add</button></div>");
        }
        h.push_str("</div>");
    }

    // News pane (Bing's bottom roll) and its roll button.
    h.push_str("<div id=\"news\" class=\"news-pane\">");
    h.push_str("<button id=\"news-roll\" class=\"roll-btn\">&gt;</button>");
    for i in 0..6 {
        let _ = write!(
            h,
            "<p class=\"news-item\" id=\"news{i}\">{}</p>",
            words(rng, 10)
        );
    }
    h.push_str("</div>");

    // Invisible overlays: layers with backing stores nobody ever sees.
    for i in 0..spec.hidden_overlays {
        let _ = write!(
            h,
            "<div class=\"overlay\" id=\"ov{i}\" style=\"position: fixed; top: 0; left: 0; \
             z-index: {}; visibility: hidden; width: 100%; height: 200px\">{}</div>",
            20 + i,
            words(rng, 12)
        );
    }

    let _ = write!(
        h,
        "<div id=\"footer\" class=\"footer bar\">{}</div>",
        words(rng, 8)
    );
    h.push_str("<script src=\"lib.js\"></script><script src=\"app.js\"></script>");
    if spec.analytics {
        h.push_str("<script src=\"analytics.js\"></script>");
    }
    if spec.callback_widgets > 0 {
        h.push_str("<script src=\"callbacks.js\"></script>");
    }
    h.push_str("</body></html>");
    h
}

fn build_css(spec: &SiteSpec, rng: &mut SmallRng) -> String {
    let mut css = String::with_capacity(spec.css_used_bytes + spec.css_unused_bytes);

    // Rules that actually match the generated markup.
    let palette = [
        "#222", "#333", "#08f", "#f80", "#eee", "#fff", "#c00", "#4a4",
    ];
    let used_selectors: Vec<String> = {
        let mut v: Vec<String> = vec![
            ".bar".into(),
            ".header".into(),
            ".footer".into(),
            ".logo".into(),
            ".nav-link".into(),
            ".menu-btn".into(),
            ".menu".into(),
            ".panel".into(),
            ".hero".into(),
            ".photo".into(),
            ".roll-btn".into(),
            ".search-box".into(),
            ".item".into(),
            ".card".into(),
            ".title".into(),
            ".price".into(),
            ".buy".into(),
            ".thumb".into(),
            ".news-pane".into(),
            ".news-item".into(),
            ".overlay".into(),
            "h1".into(),
            "h2".into(),
            "p".into(),
        ];
        for s in 0..spec.sections {
            v.push(format!(".s{s}"));
        }
        for c in 0..4 {
            v.push(format!(".c{c}"));
        }
        v
    };
    // Structural base rules.
    css.push_str(".bar { height: 48px; background: #232f3e; color: white; }\n");
    css.push_str(".header { position: fixed; top: 0; left: 0; width: 100%; z-index: 10; }\n");
    css.push_str(".menu { position: fixed; top: 48px; right: 0; width: 240px; z-index: 12; background: white; border: 1px solid #999; }\n");
    css.push_str(".hero { height: 320px; background: #eee; padding: 8px; }\n");
    css.push_str(".photo { width: 300px; height: 260px; will-change: transform; }\n");
    css.push_str(".item { width: 23%; height: 100px; margin: 4px; padding: 6px; background: white; border: 1px solid #ddd; display: inline-block; }\n");
    css.push_str(".featured { border: 2px solid #f80; }\n");
    // The news pane sits at the bottom of the first view (a fixed strip),
    // and the search suggestions drop down over the page content.
    css.push_str(".news-pane { position: fixed; bottom: 0; left: 0; width: 100%; height: 140px; z-index: 8; background: #f5f5f5; padding: 4px; }\n");
    css.push_str(".suggest-panel { position: absolute; top: 430px; left: 8px; width: 420px; z-index: 15; background: white; border: 1px solid #888; }\n");
    css.push_str(".search-box { width: 420px; height: 28px; border: 1px solid #888; }\n");
    if spec.js_canvas_tiles > 0 {
        css.push_str("#canvas { position: relative; height: 560px; background: #dde; }\n");
        css.push_str(".map-tile { position: absolute; width: 170px; height: 170px; background: #9c9; border: 1px solid #7a7; }\n");
    }
    let mut i = 0;
    while css.len() < spec.css_used_bytes {
        let sel = &used_selectors[i % used_selectors.len()];
        let _ = writeln!(
            css,
            "{sel} {{ color: {}; margin-top: {}px; padding-left: {}px; font-size: {}px; }}",
            palette[rng.gen_range(0..palette.len())],
            rng.gen_range(0..12),
            rng.gen_range(0..16),
            12 + rng.gen_range(0..9),
        );
        i += 1;
    }

    // Library残: rules that can never match (imported framework bulk),
    // hover variants, and an inactive media block (desktop gets the mobile
    // block and vice versa — the generator does not know the viewport, so
    // it ships both and one side is dead weight).
    let unused_start = css.len();
    let mut j = 0;
    // The mobile experience is a lighter page: compact cards, a short
    // hero, and only the first section rendered (the rest are hidden).
    css.push_str("@media (max-width: 700px) { .item { width: 46%; height: 90px } .hero { height: 180px } .photo { width: 160px; height: 140px } .search-box { width: 200px } }\n");
    {
        let mut hidden = String::new();
        for sct in 1..spec.sections {
            if sct > 1 {
                hidden.push_str(", ");
            }
            let _ = write!(hidden, ".s{sct}");
        }
        if !hidden.is_empty() {
            let _ = writeln!(
                css,
                "@media (max-width: 700px) {{ {hidden} {{ display: none }} }}"
            );
        }
    }
    while css.len() - unused_start < spec.css_unused_bytes {
        match j % 3 {
            0 => {
                let _ = writeln!(
                    css,
                    ".fw-module-{j} .fw-inner {{ display: inline-block; width: {}px; border: 1px solid {}; margin: {}px; padding: {}px; }}",
                    rng.gen_range(40..240),
                    palette[rng.gen_range(0..palette.len())],
                    rng.gen_range(0..9),
                    rng.gen_range(0..9),
                );
            }
            1 => {
                let _ = writeln!(
                    css,
                    ".item:hover .variant-{j} {{ background: {}; opacity: 0.9; z-index: {}; }}",
                    palette[rng.gen_range(0..palette.len())],
                    rng.gen_range(1..40),
                );
            }
            _ => {
                let _ = writeln!(
                    css,
                    ".legacy-grid-{j} {{ width: {}%; height: {}px; color: {}; text-align: center; }}",
                    rng.gen_range(10..90),
                    rng.gen_range(20..200),
                    palette[rng.gen_range(0..palette.len())],
                );
            }
        }
        j += 1;
    }
    css
}

fn build_library_js(spec: &SiteSpec) -> String {
    let mut js = String::with_capacity((spec.js_used_fns + spec.js_unused_fns) * 160);
    js.push_str("// synthetic vendor bundle\n");
    for i in 0..spec.js_used_fns {
        let _ = writeln!(
            js,
            "function lib_used{i}(a, b) {{ var acc = 0; for (var k = 0; k < {}; k++) {{ acc = acc + (a + k) * (b + 1) - (acc % 7); }} return acc; }}",
            spec.js_fn_loop
        );
    }
    for i in 0..spec.js_unused_fns {
        let _ = writeln!(
            js,
            "function lib_unused{i}(data, opts) {{ var out = []; var n = 0; \
             for (var k = 0; k < 64; k++) {{ n = n + k * {i}; out.push(n); }} \
             if (opts > 0) {{ return out; }} return n + data; }}",
        );
    }
    js
}

fn build_app_js(spec: &SiteSpec) -> String {
    let mut js = String::with_capacity(4096);
    js.push_str(concat!(
        "var wpState = { menuOpen: 0, photo: 0, news: 0, scrolls: 0, typed: '' };\n",
        "var wpMobile = window.innerWidth < 700;\n",
        "function initPrices(limit) {\n",
        "  var prices = document.getElementsByClassName('price');\n",
        "  var n = prices.length < limit ? prices.length : limit;\n",
        "  for (var i = 0; i < n; i++) {\n",
    ));
    let _ = writeln!(
        js,
        "    prices[i].textContent = '$' + lib_used0(i, {});",
        spec.js_fn_loop
    );
    js.push_str(concat!(
        "  }\n",
        "}\n",
        "function decorateCards() {\n",
        "  var cards = document.getElementsByClassName('card');\n",
        "  for (var i = 0; i < cards.length; i++) {\n",
        "    if (i % 3 == 0) { cards[i].classList.add('featured'); }\n",
        "  }\n",
        "}\n",
        "function toggleMenu() {\n",
        "  var m = document.getElementById('menu');\n",
        "  if (wpState.menuOpen == 1) { m.style.display = 'none'; wpState.menuOpen = 0; }\n",
        "  else { m.style.display = 'block'; wpState.menuOpen = 1; }\n",
        "}\n",
        "function nextPhoto() {\n",
        "  wpState.photo += 1;\n",
        "  var p = document.getElementById('photo');\n",
        "  p.setAttribute('src', 'img' + (wpState.photo % 4) + '.png');\n",
        "}\n",
        "function rollNews() {\n",
        "  wpState.news += 1;\n",
        "  var pane = document.getElementById('news0');\n",
        "  pane.textContent = 'story ' + wpState.news + ' ' + lib_used1(wpState.news, 2);\n",
        "}\n",
        "function onSearchInput() {\n",
        "  var q = document.getElementById('search').getAttribute('value');\n",
        "  var s = document.getElementById('suggestions');\n",
        "  s.style.display = 'block';\n",
        "  var list = '';\n",
        "  for (var i = 0; i < 5; i++) {\n",
        "    list = list + ' ' + q + lib_used1(q.length + i, 3) + '|' + lib_used2(i, 4);\n",
        "  }\n",
        "  s.textContent = q + ' suggestions:' + list;\n",
        "}\n",
    ));
    // Warm a handful of library functions at boot (their results go
    // nowhere — speculative initialization).
    js.push_str("function warmLibraries() {\n  var sum = 0;\n");
    for i in 0..spec.warm_fns.min(spec.js_used_fns) {
        let _ = writeln!(js, "  sum += lib_used{i}({}, {});", i % 7, i % 5);
    }
    js.push_str("  return sum;\n}\n");
    // Client-side rendered recommendation cards (visible, right below the
    // hero): JS work that ends up on screen.
    js.push_str(concat!(
        "function buildRecs(n) {\n",
        "  var host = document.getElementById('recs');\n",
        "  for (var i = 0; i < n; i++) {\n",
        "    var card = document.createElement('div');\n",
        "    card.className = 'item card';\n",
        "    var t = document.createElement('span');\n",
        "    t.className = 'title';\n",
        "    t.textContent = 'Rec ' + lib_used1(i, 3);\n",
        "    card.appendChild(t);\n",
        "    var p = document.createElement('span');\n",
        "    p.className = 'price';\n",
        "    p.textContent = '$' + lib_used2(i, 5);\n",
        "    card.appendChild(p);\n",
        "    host.appendChild(card);\n",
        "  }\n",
        "}\n",
        "function buildCanvas(n) {\n",
        "  var host = document.getElementById('canvas');\n",
        "  var cols = 8;\n",
        "  for (var i = 0; i < n; i++) {\n",
        "    var tile = document.createElement('div');\n",
        "    tile.className = 'map-tile';\n",
        "    var xx = (i % cols) * 170;\n",
        "    var yy = Math.floor(i / cols) * 170;\n",
        "    tile.style.left = xx + 'px';\n",
        "    tile.style.top = yy + 'px';\n",
        "    tile.textContent = 'T' + lib_used0(i, 2);\n",
        "    host.appendChild(tile);\n",
        "  }\n",
        "}\n",
    ));
    // Adaptive boot: the mobile experience initializes only the first
    // screen of cards and skips the library warm-up (lighter bundles).
    let _ = writeln!(
        js,
        "if (wpMobile) {{ initPrices(24); }} else {{ initPrices({}); }}",
        spec.price_limit
    );
    let _ = writeln!(js, "buildRecs({});", spec.js_built_cards);
    if spec.js_canvas_tiles > 0 {
        let _ = writeln!(js, "buildCanvas({});", spec.js_canvas_tiles);
    }
    // Speculative precompute: ranking models, prefetch scoring — runs on
    // a timer after load, its results never reach the screen.
    let _ = write!(
        js,
        concat!(
            "function speculativePrecompute() {{\n",
            "  var model = [];\n",
            "  var score = 0;\n",
            "  for (var i = 0; i < {n}; i++) {{\n",
            "    score = score + (i * 31) % 97 - (score % 5);\n",
            "    if (i % 8 == 0) {{ model.push(score); }}\n",
            "  }}\n",
            "  wpState.model = model;\n",
            "  return score;\n",
            "}}\n",
            "setTimeout(function () {{ speculativePrecompute(); }}, 300);\n",
        ),
        n = spec.js_speculative_loop
    );
    js.push_str(concat!(
        "decorateCards();\n",
        // The warm-up checksum lands in the visible headline (computed
        // deal counters and the like), so library execution feeds pixels.
        "var warm = warmLibraries();\n",
        "document.getElementById('headline').textContent = 'Deals ' + warm;\n",
        "document.getElementById('menu-btn').addEventListener('click', function () { toggleMenu(); });\n",
        "document.getElementById('photo-next').addEventListener('click', function () { nextPhoto(); });\n",
        "document.getElementById('news-roll').addEventListener('click', function () { rollNews(); });\n",
        "document.getElementById('search').addEventListener('input', function () { onSearchInput(); });\n",
        "window.addEventListener('scroll', function () { wpState.scrolls += 1; });\n",
        "setTimeout(function () { decorateCards(); }, 120);\n",
    ));
    js
}

/// The higher-order callback module: every function value flows through
/// at least one indirection (variable, object property, parameter,
/// closure return, or timer registration) before it runs, exercising the
/// static analyzer's call graph end to end. Even-numbered widgets are
/// dispatched through the registry and paint the widget bar; odd ones
/// are registered but never invoked (uncallable-at-runtime ground
/// truth). The module also ships pure calls whose results are discarded
/// (useless-call ground truth) and a closure-captured counter mutated
/// from a timer.
fn build_callbacks_js(spec: &SiteSpec) -> String {
    let n = spec.callback_widgets;
    let mut js = String::with_capacity(1024 + n * 200);
    js.push_str(concat!(
        "var wpWidgets = { count: 0 };\n",
        "function widgetScore(seed) {\n",
        "  var s = 0;\n",
        "  for (var k = 0; k < 16; k++) { s = s + (seed + k) % 13; }\n",
        "  return s;\n",
        "}\n",
        "function formatLabel(n) { return 'w' + n; }\n",
        "function makeCounter(step) {\n",
        "  var total = 0;\n",
        "  return function (x) { total = total + step + x; return total; };\n",
        "}\n",
        "var wpTally = makeCounter(2);\n",
        "function applyEach(list, fn) {\n",
        "  for (var i = 0; i < list.length; i++) { fn(list[i]); }\n",
        "}\n",
        "var wpAcc = [];\n",
        "applyEach([1, 2, 3], function (v) { wpAcc.push(wpTally(v)); });\n",
    ));
    for i in 0..n {
        let _ = writeln!(
            js,
            "function widget{i}(x) {{ return widgetScore(x + {i}) + {i}; }}"
        );
    }
    js.push_str("var wpRegistry = {");
    for i in 0..n {
        if i > 0 {
            js.push_str(", ");
        }
        let _ = write!(js, " w{i}: widget{i}");
    }
    js.push_str(" };\n");
    js.push_str("var wpWidgetSum = 0;\n");
    for i in (0..n).step_by(2) {
        let _ = writeln!(js, "wpWidgetSum = wpWidgetSum + wpRegistry.w{i}({i});");
    }
    js.push_str(concat!(
        "function foldRange(i, acc) {\n",
        "  if (i <= 0) { return acc; }\n",
        "  return foldRange(i - 1, acc + (i % 7));\n",
        "}\n",
        // The widget bar shows work that flowed through every
        // indirection: dispatched widgets, the closure tally, recursion.
        "var wpStatus = document.getElementById('w-status');\n",
        "wpStatus.textContent = formatLabel(wpWidgetSum) + ':' + wpTally(0) + ':' + ",
        "foldRange(9, 0) + ':' + wpAcc.length;\n",
        // Pure results computed and discarded: statically useless calls.
        "widgetScore(41);\n",
        "formatLabel(7);\n",
        // Stored-but-never-called plugins: uncallable ground truth.
        "function orphanHandler(e) { return widgetScore(e) + 1; }\n",
        "var wpUnusedPlugin = function (cfg) { return cfg + widgetScore(3); };\n",
        // A timer mutates the closure counter after load, then repaints
        // the readout with the updated count.
        "setTimeout(function () {\n",
        "  wpWidgets.count = wpTally(1);\n",
        "  wpStatus.textContent = 'widgets ' + wpWidgets.count;\n",
        "}, 180);\n",
    ));
    js
}

fn build_analytics_js() -> String {
    concat!(
        "var wpPerf = { t0: performance.now(), events: [] };\n",
        "function trackEvent(name, value) {\n",
        "  wpPerf.events.push(name);\n",
        "  console.log('track', name, value);\n",
        "}\n",
        "function flushBeacon() {\n",
        "  var dt = performance.now() - wpPerf.t0;\n",
        "  navigator.sendBeacon('https://telemetry.test/collect', 'load=' + dt + ';n=' + wpPerf.events.length);\n",
        "}\n",
        "trackEvent('pageview', 1);\n",
        "trackEvent('timing', wpPerf.t0);\n",
        "setTimeout(function () { flushBeacon(); }, 250);\n",
    )
    .to_owned()
}

fn build_deferred_js(d: &DeferredResource) -> String {
    let fn_count = (d.bytes / 150).max(1);
    let used = ((fn_count as f64) * d.used_fraction).round() as usize;
    let mut js = String::with_capacity(d.bytes + 256);
    for i in 0..fn_count {
        let _ = writeln!(
            js,
            "function deferred_{name}_{i}(x) {{ var v = 0; for (var k = 0; k < 24; k++) {{ v = v + x * k + {i}; }} return v; }}",
            name = sanitize(&d.url),
        );
    }
    // Top-level code runs the "used" prefix immediately on load.
    let _ = writeln!(js, "var deferredSum_{} = 0;", sanitize(&d.url));
    for i in 0..used {
        let _ = writeln!(
            js,
            "deferredSum_{name} += deferred_{name}_{i}({i});",
            name = sanitize(&d.url)
        );
    }
    js
}

fn build_deferred_css(d: &DeferredResource) -> String {
    let mut css = String::with_capacity(d.bytes + 64);
    // Deferred CSS applies to existing markup for the "used" share.
    let mut i = 0;
    while css.len() < (d.bytes as f64 * d.used_fraction) as usize {
        let _ = writeln!(css, ".item {{ border-width: {}px; }}", i % 3);
        i += 1;
    }
    while css.len() < d.bytes {
        let _ = writeln!(css, ".deferred-unused-{i} {{ width: {}px; }}", i);
        i += 1;
    }
    css
}

fn sanitize(url: &str) -> String {
    url.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let spec = SiteSpec::default();
        let a = build_site(&spec);
        let b = build_site(&spec);
        assert_eq!(a.html, b.html);
        assert_eq!(a.resources.len(), b.resources.len());
        for (ra, rb) in a.resources.iter().zip(&b.resources) {
            assert_eq!(ra.content, rb.content);
        }
    }

    #[test]
    fn css_byte_targets_are_respected() {
        let spec = SiteSpec {
            css_used_bytes: 6_000,
            css_unused_bytes: 9_000,
            ..Default::default()
        };
        let site = build_site(&spec);
        let css = &site.resource("main.css").unwrap().content;
        let total = css.len();
        assert!((14_000..=16_500).contains(&total), "css total {total}");
    }

    #[test]
    fn library_has_used_and_unused_functions() {
        let spec = SiteSpec {
            js_used_fns: 7,
            js_unused_fns: 13,
            ..Default::default()
        };
        let site = build_site(&spec);
        let lib = &site.resource("lib.js").unwrap().content;
        assert_eq!(lib.matches("function lib_used").count(), 7);
        assert_eq!(lib.matches("function lib_unused").count(), 13);
    }

    #[test]
    fn callback_module_dispatches_even_widgets_only() {
        let spec = SiteSpec {
            callback_widgets: 4,
            ..Default::default()
        };
        let site = build_site(&spec);
        let js = &site.resource("callbacks.js").unwrap().content;
        wasteprof_js::parse(js).expect("callbacks.js parses");
        assert!(js.contains("wpRegistry.w0(0)"));
        assert!(js.contains("wpRegistry.w2(2)"));
        assert!(!js.contains("wpRegistry.w1("), "odd widgets never invoked");
        assert!(js.contains("w3: widget3"), "odd widgets still registered");
    }

    #[test]
    fn generated_js_parses() {
        let spec = SiteSpec::default();
        let site = build_site(&spec);
        for r in &site.resources {
            if r.kind == ResourceKind::Js {
                wasteprof_js::parse(&r.content)
                    .unwrap_or_else(|e| panic!("{} does not parse: {e}", r.url));
            }
        }
    }

    #[test]
    fn generated_html_parses_and_references_resources() {
        let spec = SiteSpec::default();
        let site = build_site(&spec);
        let mut rec = wasteprof_trace::Recorder::new();
        rec.spawn_thread(wasteprof_trace::ThreadKind::Main, "t");
        let mut doc = wasteprof_dom::Document::new(&mut rec);
        let range = rec.alloc(wasteprof_trace::Region::Input, site.html.len() as u32);
        let out = wasteprof_html::parse_into(&mut rec, &mut doc, &site.html, range);
        assert!(out.resources.len() >= 3); // css + lib + app (+ analytics)
        assert!(doc.element_by_id("menu-btn").is_some());
        assert!(doc.element_by_id("search").is_some());
        assert!(!doc.elements_by_class("item").is_empty());
    }

    #[test]
    fn deferred_js_respects_used_fraction() {
        let d = DeferredResource {
            url: "late.js".into(),
            kind: ResourceKind::Js,
            bytes: 1500,
            used_fraction: 0.5,
        };
        let js = build_deferred_js(&d);
        let total = js.matches("function deferred_").count();
        let called = js.matches("deferredSum_late_js += ").count();
        assert!(total >= 10);
        assert_eq!(called, total / 2);
        wasteprof_js::parse(&js).expect("deferred js parses");
    }
}
