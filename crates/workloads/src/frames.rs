//! Multi-frame browse sessions: one recorded Bing session cut into an
//! increasing sequence of frames, the input the incremental slicer
//! ([`wasteprof_slicer::SummaryCache`]) is built for.
//!
//! A "frame" here is a *session snapshot*: the trace as it stood after
//! the page load (frame 0) and after each subsequent scripted
//! interaction block. Frame `k + 1`'s trace is frame `k`'s trace with
//! rows appended — exactly the prefix structure
//! [`wasteprof_trace::Trace::prefix`] materializes — so a frame sequence
//! exercises the cache's append path the way a live profiler attached to
//! a browser would: re-slice after every user action, paying only for
//! the new tail.
//!
//! Each interaction block varies with the frame index (which control is
//! poked, how many vsyncs follow, when background work runs), so
//! consecutive frames differ by realistic, *small* amounts rather than a
//! fixed repeated suffix.

use wasteprof_browser::{Session, Tab};
use wasteprof_trace::Trace;

use crate::sites::Benchmark;

/// A recorded browse session plus the trace positions where each frame
/// (session snapshot) ends.
#[derive(Debug)]
pub struct FrameSession {
    /// The finished session of the final frame.
    pub session: Session,
    /// Trace length at the end of each frame, strictly increasing; the
    /// last entry equals the full trace length.
    pub frame_ends: Vec<usize>,
}

impl FrameSession {
    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.frame_ends.len()
    }

    /// Materializes frame `k`'s trace (a prefix of the session trace).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn frame_trace(&self, k: usize) -> Trace {
        self.session.trace.prefix(self.frame_ends[k])
    }
}

/// Records a Bing load-and-browse session as `n_frames` session
/// snapshots: frame 0 is the loaded page, every further frame appends
/// one scripted interaction block (menu pokes, news-pane rolls, scrolls,
/// incremental search typing) whose shape varies with the frame index.
///
/// # Panics
///
/// Panics if `n_frames` is zero.
pub fn bing_frames(n_frames: usize) -> FrameSession {
    assert!(n_frames > 0, "a session needs at least one frame");
    let bench = Benchmark::Bing;
    let mut tab = Tab::new(bench.browser_config());
    tab.load(bench.site());
    // The shared post-load timeline of `Benchmark::run`: vsync stream,
    // hero carousel, background utility work, pending timers.
    tab.pump_vsync(66);
    tab.set_animation("photo", true);
    tab.pump_vsync(200);
    tab.pump_utility(240);
    tab.run_timers();

    let mut frame_ends = vec![tab.trace_len() as usize];
    for k in 1..n_frames {
        interaction_block(&mut tab, k);
        frame_ends.push(tab.trace_len() as usize);
    }
    let session = tab.finish();
    // The recorder may close the session with a few trailing rows; fold
    // them into the final frame so it covers the whole trace.
    *frame_ends.last_mut().expect("at least one frame") = session.trace.len();
    FrameSession {
        session,
        frame_ends,
    }
}

/// One per-frame interaction block. The mix cycles through the Bing
/// browse repertoire with frame-indexed variation so every appended
/// suffix is distinct.
fn interaction_block(tab: &mut Tab, k: usize) {
    tab.idle(40_000 + (k as u64 % 5) * 7_000);
    match k % 4 {
        0 => {
            tab.click("menu-btn");
            tab.pump_vsync(24 + (k % 3) as u32 * 8);
            tab.click("menu-btn");
        }
        1 => {
            tab.click("news-roll");
            tab.pump_vsync(32);
        }
        2 => {
            tab.scroll(if k % 8 < 4 { 240.0 } else { -180.0 });
            tab.pump_vsync(16);
        }
        _ => {
            if k == 3 {
                // The first typed character pulls the suggestion module.
                tab.fetch_extra("suggest.js");
            }
            let terms = ["weather today", "news near me", "flight status"];
            tab.type_text("search", terms[(k / 4) % terms.len()]);
            tab.pump_vsync(16);
        }
    }
    if k.is_multiple_of(5) {
        tab.pump_utility(40);
    }
    tab.run_timers();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_strictly_increasing_prefixes() {
        let fs = bing_frames(4);
        assert_eq!(fs.frames(), 4);
        for w in fs.frame_ends.windows(2) {
            assert!(w[0] < w[1], "frame ends must strictly increase");
        }
        assert_eq!(
            *fs.frame_ends.last().unwrap(),
            fs.session.trace.len(),
            "final frame covers the whole session"
        );
        // A frame trace is the row-exact prefix of the next one.
        let a = fs.frame_trace(1);
        let b = fs.frame_trace(2);
        assert!(a.len() < b.len());
        assert_eq!(b.prefix(a.len()).len(), a.len());
    }
}
