//! HTML tree construction.
//!
//! Consumes the tokenizer's output and builds the DOM, in the spirit of
//! Blink's `HTMLTreeBuilder`: a stack of open elements, void elements,
//! simple auto-closing (`<p>`, `<li>`), and collection of the subresources
//! (`<link rel=stylesheet>`, `<script src>`, inline `<style>`/`<script>`)
//! that the rest of the rendering pipeline must fetch, parse, and execute.

use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{site, AddrRange, Recorder};

use crate::tokenizer::{tokenize, SpannedToken, Token};

/// Elements that never have children.
const VOID: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "source", "wbr",
];

/// A subresource discovered during parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resource {
    /// `<link rel="stylesheet" href="...">`.
    ExternalCss {
        /// The stylesheet URL.
        href: String,
        /// The `<link>` element.
        node: NodeId,
    },
    /// `<style>...</style>`.
    InlineCss {
        /// The stylesheet text.
        text: String,
        /// The `<style>` element.
        node: NodeId,
        /// Source span of the inline text (provenance + byte accounting).
        span: AddrRange,
    },
    /// `<script src="...">`.
    ExternalJs {
        /// The script URL.
        src: String,
        /// The `<script>` element.
        node: NodeId,
    },
    /// `<script>...</script>`.
    InlineJs {
        /// The script text.
        text: String,
        /// The `<script>` element.
        node: NodeId,
        /// Source span of the inline text.
        span: AddrRange,
    },
}

/// Result of parsing a document.
#[derive(Debug, Clone, Default)]
pub struct ParseOutput {
    /// Stylesheets and scripts in discovery order.
    pub resources: Vec<Resource>,
    /// Content of `<title>`, if present.
    pub title: Option<String>,
}

/// Builds DOM nodes from tokens into `doc`, attached under its root.
pub fn build_tree(rec: &mut Recorder, doc: &mut Document, tokens: &[SpannedToken]) -> ParseOutput {
    let func = rec.intern_func("blink::html::HtmlTreeBuilder::ProcessToken");
    rec.in_func(site!(), func, |rec| {
        let mut out = ParseOutput::default();
        let mut stack: Vec<NodeId> = vec![doc.root()];
        let mut in_title = false;

        for st in tokens {
            let parent = *stack.last().expect("root never popped");
            match &st.token {
                Token::Doctype | Token::Comment => {}
                Token::Text { text } => {
                    if in_title {
                        out.title = Some(text.trim().to_owned());
                        continue;
                    }
                    if text.trim().is_empty() {
                        continue;
                    }
                    let node = doc.create_text(rec, text, &[st.cell.into()]);
                    doc.append_child(rec, parent, node);
                }
                Token::EndTag { name } => {
                    if name == "title" {
                        in_title = false;
                    }
                    // Pop up to and including the matching element, if any.
                    if let Some(pos) = stack.iter().rposition(|&n| doc.node(n).tag() == Some(name))
                    {
                        if pos > 0 {
                            stack.truncate(pos);
                        }
                    }
                }
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => {
                    // Auto-close elements that cannot nest. Only the
                    // *currently open* same-tag element closes — popping a
                    // deeper ancestor would tear down intervening
                    // containers (`<div><p><div><p>` must not close the
                    // inner div).
                    if matches!(name.as_str(), "p" | "li" | "tr" | "td" | "option")
                        && stack.len() > 1
                        && doc.node(*stack.last().expect("root")).tag() == Some(name)
                    {
                        stack.pop();
                    }
                    let parent = *stack.last().expect("root never popped");
                    let node = doc.create_element(rec, name, &[st.cell.into()]);
                    let mut inline_text: Option<String> = None;
                    for (an, av) in attrs {
                        if an == "#text" {
                            inline_text = Some(av.clone());
                            continue;
                        }
                        doc.set_attribute(rec, node, an, av, &[st.cell.into()]);
                    }
                    doc.append_child(rec, parent, node);

                    match name.as_str() {
                        "title" => in_title = true,
                        "link" => {
                            let rel = doc.node(node).attr_value("rel").unwrap_or("");
                            let href = doc.node(node).attr_value("href").unwrap_or("");
                            if rel == "stylesheet" && !href.is_empty() {
                                out.resources.push(Resource::ExternalCss {
                                    href: href.to_owned(),
                                    node,
                                });
                            }
                        }
                        "style" => {
                            if let Some(text) = &inline_text {
                                out.resources.push(Resource::InlineCss {
                                    text: text.clone(),
                                    node,
                                    span: st.span,
                                });
                            }
                        }
                        "script" => {
                            let src = doc.node(node).attr_value("src").unwrap_or("").to_owned();
                            if !src.is_empty() {
                                out.resources.push(Resource::ExternalJs { src, node });
                            } else if let Some(text) = &inline_text {
                                out.resources.push(Resource::InlineJs {
                                    text: text.clone(),
                                    node,
                                    span: st.span,
                                });
                            }
                        }
                        _ => {}
                    }

                    let is_void = VOID.contains(&name.as_str()) || *self_closing;
                    // script/style raw text was swallowed by the tokenizer,
                    // so they never stay open.
                    let is_raw = matches!(name.as_str(), "script" | "style");
                    if !is_void && !is_raw {
                        stack.push(node);
                    }
                }
            }
        }
        out
    })
}

/// Convenience: tokenize and build in one step.
///
/// `input_range` must be the network-input cells holding the document
/// bytes.
pub fn parse_into(
    rec: &mut Recorder,
    doc: &mut Document,
    input: &str,
    input_range: AddrRange,
) -> ParseOutput {
    let tokens = tokenize(rec, input, input_range);
    build_tree(rec, doc, &tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::{Region, ThreadKind};

    fn parse(input: &str) -> (Document, ParseOutput) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let range = rec.alloc(Region::Input, input.len().max(1) as u32);
        let mut doc = Document::new(&mut rec);
        let out = parse_into(&mut rec, &mut doc, input, range);
        (doc, out)
    }

    #[test]
    fn nested_structure() {
        let (doc, _) = parse("<html><body><div id=a><p>x</p><p>y</p></div></body></html>");
        let a = doc.element_by_id("a").unwrap();
        let ps = doc.elements_by_tag("p");
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.node(ps[0]).parent, Some(a));
        assert_eq!(doc.text_content(a), "xy");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let (doc, _) = parse("<div><img src=a><span>t</span></div>");
        let img = doc.elements_by_tag("img")[0];
        let span = doc.elements_by_tag("span")[0];
        assert!(doc.node(img).children.is_empty());
        // span is a sibling of img, not its child.
        assert_eq!(doc.node(span).parent, doc.node(img).parent);
    }

    #[test]
    fn paragraphs_auto_close() {
        let (doc, _) = parse("<p>one<p>two");
        let ps = doc.elements_by_tag("p");
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.node(ps[1]).parent, doc.node(ps[0]).parent);
    }

    #[test]
    fn list_items_auto_close() {
        let (doc, _) = parse("<ul><li>a<li>b<li>c</ul>");
        let lis = doc.elements_by_tag("li");
        assert_eq!(lis.len(), 3);
        let ul = doc.elements_by_tag("ul")[0];
        assert!(lis.iter().all(|&li| doc.node(li).parent == Some(ul)));
    }

    #[test]
    fn resources_discovered_in_order() {
        let html = concat!(
            r#"<link rel="stylesheet" href="main.css">"#,
            "<style>.x{color:red}</style>",
            r#"<script src="app.js"></script>"#,
            "<script>var a = 1;</script>",
        );
        let (_, out) = parse(html);
        assert_eq!(out.resources.len(), 4);
        assert!(
            matches!(&out.resources[0], Resource::ExternalCss { href, .. } if href == "main.css")
        );
        assert!(
            matches!(&out.resources[1], Resource::InlineCss { text, .. } if text == ".x{color:red}")
        );
        assert!(matches!(&out.resources[2], Resource::ExternalJs { src, .. } if src == "app.js"));
        assert!(
            matches!(&out.resources[3], Resource::InlineJs { text, .. } if text == "var a = 1;")
        );
    }

    #[test]
    fn title_extracted() {
        let (_, out) = parse("<head><title> Hello World </title></head>");
        assert_eq!(out.title.as_deref(), Some("Hello World"));
    }

    #[test]
    fn whitespace_only_text_skipped() {
        let (doc, _) = parse("<div>\n  \n<span>x</span>\n</div>");
        let div = doc.elements_by_tag("div")[0];
        // div's children: only the span (whitespace dropped).
        assert_eq!(doc.node(div).children.len(), 1);
    }

    #[test]
    fn stray_end_tags_ignored() {
        let (doc, _) = parse("</div><p>ok</p></section>");
        assert_eq!(doc.elements_by_tag("p").len(), 1);
    }

    #[test]
    fn link_without_stylesheet_rel_ignored() {
        let (_, out) = parse(r#"<link rel="icon" href="favicon.ico">"#);
        assert!(out.resources.is_empty());
    }
}
