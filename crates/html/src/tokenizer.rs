//! HTML tokenizer.
//!
//! A hand-rolled state machine over the raw document bytes, in the spirit
//! of Blink's `HTMLTokenizer`: it recognizes start/end tags with
//! attributes, text, comments, doctype, and the raw-text content models of
//! `<script>` and `<style>`. Each produced token emits trace instructions
//! that read the token's source span (network input cells) and write the
//! token's cell — the first link in the input-bytes → pixels dataflow
//! chain.

use wasteprof_trace::{site, Addr, AddrRange, Recorder, Region};

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>`; `self_closing` for `<br/>`-style tags.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order (lowercased names).
        attrs: Vec<(String, String)>,
        /// True for `<tag ... />`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// A run of character data (entity-decoded for the few common
    /// entities).
    Text {
        /// The decoded text.
        text: String,
    },
    /// `<!-- ... -->` (content discarded).
    Comment,
    /// `<!doctype ...>`.
    Doctype,
}

impl Token {
    /// Tag name for start/end tags.
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            Token::StartTag { name, .. } | Token::EndTag { name } => Some(name),
            _ => None,
        }
    }
}

/// A token plus its source span and trace cell.
#[derive(Debug, Clone)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the token in the document.
    pub offset: u32,
    /// Byte length of the token in the document.
    pub len: u32,
    /// The span of network-input cells the token was scanned from.
    pub span: AddrRange,
    /// The heap cell the tokenizer wrote the token into.
    pub cell: Addr,
}

/// Tokenizes `input`, emitting tokenization work into the trace.
///
/// `input_range` must be the virtual-memory range holding the document
/// bytes (one byte per cell byte), as produced by the network layer.
///
/// # Panics
///
/// Panics if `input_range` is shorter than `input`.
pub fn tokenize(rec: &mut Recorder, input: &str, input_range: AddrRange) -> Vec<SpannedToken> {
    assert!(
        input_range.len() as usize >= input.len().max(1),
        "input range too short"
    );
    let func = rec.intern_func("blink::html::HtmlTokenizer::NextToken");
    rec.in_func(site!(), func, |rec| {
        let mut out = Vec::new();
        let mut lexer = Lexer {
            bytes: input.as_bytes(),
            pos: 0,
        };
        loop {
            let start = lexer.pos;
            let Some(token) = lexer.next_token() else {
                break;
            };
            let end = lexer.pos;
            let len = ((end - start) as u32).max(1);
            let span = input_range.slice(start as u32, len);
            let cell = rec.alloc_cell(Region::Heap);
            // Scanning cost scales with the bytes consumed.
            rec.compute_weighted(site!(), &[span], &[cell.into()], len / 16);
            out.push(SpannedToken {
                token,
                offset: start as u32,
                len,
                span,
                cell,
            });
        }
        out
    })
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat_whitespace(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn starts_with_ci(&self, s: &str) -> bool {
        self.bytes[self.pos..]
            .iter()
            .zip(s.as_bytes())
            .filter(|(a, b)| a.eq_ignore_ascii_case(b))
            .count()
            == s.len()
            && self.bytes.len() - self.pos >= s.len()
    }

    fn next_token(&mut self) -> Option<Token> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        if self.peek() == Some(b'<') {
            if self.starts_with_ci("<!--") {
                return Some(self.comment());
            }
            if self.starts_with_ci("<!doctype") {
                while let Some(b) = self.bump() {
                    if b == b'>' {
                        break;
                    }
                }
                return Some(Token::Doctype);
            }
            if self.bytes.get(self.pos + 1) == Some(&b'/') {
                return Some(self.end_tag());
            }
            if matches!(self.bytes.get(self.pos + 1), Some(b) if b.is_ascii_alphabetic()) {
                return Some(self.start_tag());
            }
            // Literal '<' in text.
        }
        Some(self.text())
    }

    fn comment(&mut self) -> Token {
        self.pos += 4; // "<!--"
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(b"-->") {
                self.pos += 3;
                break;
            }
            self.pos += 1;
        }
        Token::Comment
    }

    fn name(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).to_ascii_lowercase()
    }

    fn end_tag(&mut self) -> Token {
        self.pos += 2; // "</"
        let name = self.name();
        while let Some(b) = self.bump() {
            if b == b'>' {
                break;
            }
        }
        Token::EndTag { name }
    }

    fn start_tag(&mut self) -> Token {
        self.pos += 1; // "<"
        let name = self.name();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.eat_whitespace();
            match self.peek() {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self_closing = true;
                }
                _ => {
                    let attr_name = self.name();
                    if attr_name.is_empty() {
                        // Malformed byte; skip it to guarantee progress.
                        self.pos += 1;
                        continue;
                    }
                    self.eat_whitespace();
                    let value = if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.eat_whitespace();
                        self.attr_value()
                    } else {
                        String::new()
                    };
                    attrs.push((attr_name, value));
                }
            }
        }
        // Raw-text content models: script and style swallow everything up
        // to their closing tag as a single text token handled by the tree
        // builder; we implement that by leaving the content to the `text`
        // scanner with a guard (see raw_text below).
        if (name == "script" || name == "style") && !self_closing {
            let text = self.raw_text(&name);
            if !text.is_empty() {
                // Splice the raw text as the tag's pseudo-attribute so the
                // tree builder can attach it without a second token. A
                // dedicated Text token keeps spans simpler instead:
                return Token::StartTag {
                    name,
                    attrs: {
                        let mut a = attrs;
                        a.push(("#text".to_owned(), text));
                        a
                    },
                    self_closing,
                };
            }
        }
        Token::StartTag {
            name,
            attrs,
            self_closing,
        }
    }

    fn attr_value(&mut self) -> String {
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b != q) {
                    self.pos += 1;
                }
                let v = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                if self.peek() == Some(q) {
                    self.pos += 1; // closing quote (absent if input ends)
                }
                v
            }
            _ => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if !b.is_ascii_whitespace() && b != b'>') {
                    self.pos += 1;
                }
                String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
            }
        }
    }

    /// Consumes raw text up to (but not including) `</tag`, then the
    /// closing tag itself.
    fn raw_text(&mut self, tag: &str) -> String {
        let close = format!("</{tag}");
        let start = self.pos;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' && self.starts_with_ci(&close) {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        // Consume the end tag.
        if self.pos < self.bytes.len() {
            while let Some(b) = self.bump() {
                if b == b'>' {
                    break;
                }
            }
        }
        text
    }

    fn text(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b'<') {
            self.pos += 1;
        }
        if self.pos == start {
            // A lone '<' that did not form a tag.
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        Token::Text {
            text: decode_entities(&raw),
        }
    }
}

/// Decodes the handful of entities real pages use constantly.
fn decode_entities(s: &str) -> String {
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&nbsp;", " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::ThreadKind;

    fn toks(input: &str) -> Vec<Token> {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let range = rec.alloc(Region::Input, input.len().max(1) as u32);
        tokenize(&mut rec, input, range)
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn simple_tags_and_text() {
        let t = toks("<p>hello</p>");
        assert_eq!(
            t,
            vec![
                Token::StartTag {
                    name: "p".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Token::Text {
                    text: "hello".into()
                },
                Token::EndTag { name: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let t = toks(r#"<div id="a" class='b c' data-x=7 hidden>"#);
        let Token::StartTag { name, attrs, .. } = &t[0] else {
            panic!("{t:?}")
        };
        assert_eq!(name, "div");
        assert_eq!(
            attrs,
            &vec![
                ("id".to_owned(), "a".to_owned()),
                ("class".to_owned(), "b c".to_owned()),
                ("data-x".to_owned(), "7".to_owned()),
                ("hidden".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn self_closing() {
        let t = toks("<br/><img src=x />");
        assert!(matches!(
            &t[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(
            &t[1],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_doctype() {
        let t = toks("<!doctype html><!-- hi --><b></b>");
        assert_eq!(t[0], Token::Doctype);
        assert_eq!(t[1], Token::Comment);
        assert!(matches!(&t[2], Token::StartTag { .. }));
    }

    #[test]
    fn script_raw_text_is_not_parsed_as_markup() {
        let t = toks("<script>if (a < b) { x = '<div>'; }</script><p></p>");
        let Token::StartTag { name, attrs, .. } = &t[0] else {
            panic!("{t:?}")
        };
        assert_eq!(name, "script");
        let text = &attrs.iter().find(|(n, _)| n == "#text").unwrap().1;
        assert_eq!(text, "if (a < b) { x = '<div>'; }");
        assert!(matches!(&t[1], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn style_raw_text() {
        let t = toks("<style>a > b { color: red }</style>");
        let Token::StartTag { name, attrs, .. } = &t[0] else {
            panic!("{t:?}")
        };
        assert_eq!(name, "style");
        assert_eq!(attrs[0].1, "a > b { color: red }");
    }

    #[test]
    fn entities_decoded() {
        let t = toks("a &amp; b &lt;3");
        assert_eq!(
            t,
            vec![Token::Text {
                text: "a & b <3".into()
            }]
        );
    }

    #[test]
    fn tokens_carry_spans_within_input_range() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let input = "<p>hi</p>";
        let range = rec.alloc(Region::Input, input.len() as u32);
        let toks = tokenize(&mut rec, input, range);
        for t in &toks {
            assert!(t.span.start() >= range.start());
            assert!(t.span.end() <= range.end());
        }
        // Tokenization emitted trace instructions that read the spans.
        let trace = rec.finish();
        assert!(trace.iter().any(|i| !i.mem_reads().is_empty()));
    }

    #[test]
    fn malformed_input_terminates() {
        // Fuzz-ish safety: never hang or panic on junk.
        for junk in ["<", "<<>>", "<a b=", "</", "<!doctype", "<!--", "<a 'x'>"] {
            let _ = toks(junk);
        }
    }
}
