#![forbid(unsafe_code)]

//! HTML parsing for the wasteprof browser engine: tokenizer and tree
//! builder (the first stage of the rendering pipeline, paper §II-A).
//!
//! Parsing reads network-input cells and writes token and DOM-node cells,
//! establishing the head of the dataflow chain the backward slicer follows
//! from pixels back to bytes.

#![warn(missing_docs)]

mod tokenizer;
mod tree_builder;

pub use tokenizer::{tokenize, SpannedToken, Token};
pub use tree_builder::{build_tree, parse_into, ParseOutput, Resource};
