//! Property-based tests for the HTML front end.

use proptest::prelude::*;
use wasteprof_dom::Document;
use wasteprof_html::{parse_into, tokenize, Token};
use wasteprof_trace::{Recorder, Region, ThreadKind};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}".prop_map(|s| s)
}

/// A small well-formed document generator.
#[derive(Debug, Clone)]
enum Node {
    Text(String),
    El {
        tag: String,
        id: Option<String>,
        children: Vec<Node>,
    },
}

fn arb_node() -> impl Strategy<Value = Node> {
    let text = "[a-z ]{1,12}".prop_map(Node::Text);
    text.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            "[a-z ]{1,12}".prop_map(Node::Text),
            (
                ident(),
                proptest::option::of(ident()),
                proptest::collection::vec(inner, 0..4)
            )
                .prop_map(|(tag, id, children)| Node::El { tag, id, children }),
        ]
    })
}

fn render(n: &Node, out: &mut String) {
    match n {
        Node::Text(t) => out.push_str(t),
        Node::El { tag, id, children } => {
            out.push('<');
            out.push_str(tag);
            if let Some(id) = id {
                out.push_str(&format!(" id=\"{id}\""));
            }
            out.push('>');
            for c in children {
                render(c, out);
            }
            out.push_str(&format!("</{tag}>"));
        }
    }
}

fn count_elements(n: &Node) -> usize {
    match n {
        Node::Text(_) => 0,
        Node::El { children, .. } => 1 + children.iter().map(count_elements).sum::<usize>(),
    }
}

fn visible_text(n: &Node, out: &mut String) {
    match n {
        // The tree builder drops whitespace-only text runs; kept runs are
        // stored verbatim.
        Node::Text(t) => {
            if !t.trim().is_empty() {
                out.push_str(t);
            }
        }
        Node::El { children, .. } => {
            for c in children {
                visible_text(c, out);
            }
        }
    }
}

/// Merges consecutive text siblings (the tokenizer coalesces adjacent
/// character data into one token).
fn coalesce(nodes: Vec<Node>) -> Vec<Node> {
    let mut out: Vec<Node> = Vec::new();
    for n in nodes {
        let n = match n {
            Node::El { tag, id, children } => Node::El {
                tag,
                id,
                children: coalesce(children),
            },
            t => t,
        };
        match (out.last_mut(), n) {
            (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
            (_, n) => out.push(n),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn wellformed_documents_roundtrip_structure(nodes in proptest::collection::vec(arb_node(), 1..4)) {
        // Avoid generated tags that trigger special content models.
        let special = ["script", "style", "title", "p", "li", "tr", "td", "option",
                       "br", "img", "input", "meta", "link", "hr", "area", "base",
                       "col", "embed", "source", "wbr", "head", "html", "body"];
        fn uses_special(n: &Node, special: &[&str]) -> bool {
            match n {
                Node::Text(_) => false,
                Node::El { tag, children, .. } =>
                    special.contains(&tag.as_str())
                        || children.iter().any(|c| uses_special(c, special)),
            }
        }
        if nodes.iter().any(|n| uses_special(n, &special)) {
            return Ok(());
        }

        let nodes = coalesce(nodes);
        let mut html = String::new();
        for n in &nodes {
            render(n, &mut html);
        }
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "m");
        let range = rec.alloc(Region::Input, html.len().max(1) as u32);
        let mut doc = Document::new(&mut rec);
        parse_into(&mut rec, &mut doc, &html, range);

        // Element count matches.
        let expected_elements: usize = nodes.iter().map(count_elements).sum();
        let parsed_elements =
            doc.descendants(doc.root()).filter(|&n| doc.node(n).is_element()).count();
        prop_assert_eq!(parsed_elements, expected_elements, "html: {}", html);

        // Concatenated text content matches (modulo whitespace-only runs,
        // which the tree builder drops).
        let mut expected_text = String::new();
        for n in &nodes {
            visible_text(n, &mut expected_text);
        }
        let got = doc.text_content(doc.root());
        prop_assert_eq!(&got, &expected_text, "html: {}", html);

        // The trace is structurally valid.
        prop_assert_eq!(rec.finish().validate(), Ok(()));
    }

    #[test]
    fn tokenizer_never_panics_and_consumes_input(text in "[ -~]{0,200}") {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "m");
        let range = rec.alloc(Region::Input, text.len().max(1) as u32);
        let tokens = tokenize(&mut rec, &text, range);
        // Every token's span stays inside the input.
        for t in &tokens {
            prop_assert!(t.offset as usize <= text.len());
            prop_assert!((t.offset + t.len) as usize <= text.len().max(1));
        }
    }

    #[test]
    fn tokenizer_text_tokens_cover_plain_text(text in "[a-z ]{1,60}") {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "m");
        let range = rec.alloc(Region::Input, text.len() as u32);
        let tokens = tokenize(&mut rec, &text, range);
        prop_assert_eq!(tokens.len(), 1);
        match &tokens[0].token {
            Token::Text { text: t } => prop_assert_eq!(t, &text),
            other => prop_assert!(false, "{other:?}"),
        }
    }
}
