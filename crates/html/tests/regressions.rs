//! Deterministic replays of the failure cases recorded in
//! `properties.proptest-regressions`. The offline proptest shim does not
//! read regression files, so the historical counterexamples are pinned
//! here as plain unit tests.

use wasteprof_dom::Document;
use wasteprof_html::{parse_into, tokenize};
use wasteprof_trace::{Recorder, Region, ThreadKind};

/// `text = "<A A='"` — an unterminated single-quoted attribute at end of
/// input must not produce a token span past the end of the input.
#[test]
fn unterminated_quoted_attribute_spans_stay_in_bounds() {
    let text = "<A A='";
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "m");
    let range = rec.alloc(Region::Input, text.len() as u32);
    let tokens = tokenize(&mut rec, text, range);
    for t in &tokens {
        assert!(t.offset as usize <= text.len(), "{t:?}");
        assert!((t.offset + t.len) as usize <= text.len(), "{t:?}");
    }
}

fn parse(html: &str) -> (Document, usize) {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "m");
    let range = rec.alloc(Region::Input, html.len().max(1) as u32);
    let mut doc = Document::new(&mut rec);
    parse_into(&mut rec, &mut doc, html, range);
    let elements = doc
        .descendants(doc.root())
        .filter(|&n| doc.node(n).is_element())
        .count();
    (doc, elements)
}

/// `nodes = [Text("a"), El { tag: "a", children: [El { children:
/// [Text(" ")] }, Text("a")] }]` — a whitespace-only text run nested in
/// an element must be dropped without disturbing sibling text.
#[test]
fn nested_whitespace_only_text_run_is_dropped() {
    let (doc, elements) = parse("a<a><a> </a>a</a>");
    assert_eq!(elements, 2);
    assert_eq!(doc.text_content(doc.root()), "aa");
}

/// `nodes = [El { tag: "a", children: [Text(" "), Text("a")] }]` — after
/// tokenizer coalescing this is one text run `" a"`, which is not
/// whitespace-only and must be kept verbatim (no trimming).
#[test]
fn leading_whitespace_in_kept_text_run_is_preserved() {
    let (doc, elements) = parse("<a> a</a>");
    assert_eq!(elements, 1);
    assert_eq!(doc.text_content(doc.root()), " a");
}
