//! Generic worklist dataflow solver over a scope CFG.
//!
//! An analysis implements [`DataflowAnalysis`]: it names its direction,
//! lattice bottom, boundary fact, join, and per-block transfer. The
//! solver iterates a worklist to the (unique, by monotonicity on a
//! finite lattice) fixpoint and returns each block's *pre-transfer* fact
//! — the fact at block entry for a forward analysis, at block exit for a
//! backward one — which is what clients need to then walk the block's
//! ops themselves.

use crate::cfg::Cfg;

/// Direction a dataflow analysis propagates facts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow along CFG edges (e.g. reaching definitions).
    Forward,
    /// Facts flow against CFG edges (e.g. liveness, demand).
    Backward,
}

/// A join-lattice dataflow problem over one CFG.
pub trait DataflowAnalysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// Least element; the initial fact at every non-boundary block.
    fn bottom(&self) -> Self::Fact;

    /// Fact at the boundary (entry block for forward, exit for backward).
    fn boundary(&self) -> Self::Fact;

    /// Least upper bound; must be monotone and idempotent.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Transfer of one whole block (in evaluation order for forward
    /// analyses, reverse order for backward ones).
    fn transfer(&self, cfg: &Cfg, block: usize, fact: &Self::Fact) -> Self::Fact;
}

/// Runs `analysis` over `cfg` to fixpoint; `result[b]` is block `b`'s
/// pre-transfer fact.
pub fn solve<A: DataflowAnalysis>(analysis: &A, cfg: &Cfg) -> Vec<A::Fact> {
    let n = cfg.blocks.len();
    let preds = cfg.preds();
    let forward = analysis.direction() == Direction::Forward;
    let boundary_block = if forward { cfg.entry } else { cfg.exit };
    // One bottom construction, cloned per block: for must-analyses
    // `bottom()` is `BitSet::full(nvars)`, and building it once instead
    // of per block keeps solver setup linear in the CFG size.
    let bottom = analysis.bottom();
    let mut facts: Vec<A::Fact> = (0..n).map(|_| bottom.clone()).collect();
    facts[boundary_block] = analysis.boundary();
    // Every block seeds the worklist so isolated blocks still stabilize.
    let mut work: std::collections::VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let out = analysis.transfer(cfg, b, &facts[b]);
        // Push the post-transfer fact into each dependent block.
        let deps: &[usize] = if forward {
            &cfg.blocks[b].succs
        } else {
            &preds[b]
        };
        for &d in deps {
            let joined = analysis.join(&facts[d], &out);
            if joined != facts[d] {
                facts[d] = joined;
                if !queued[d] {
                    queued[d] = true;
                    work.push_back(d);
                }
            }
        }
    }
    facts
}

/// A dense bitset over a fixed universe, the usual dataflow fact.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns true if it was newly added.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// The full set over a universe of `n` elements (for must-analyses,
    /// whose lattice order runs downward by intersection). Filled a word
    /// at a time; the last word masks off bits past `n` so `full(n)`
    /// equals `n` inserts representation-exactly.
    pub fn full(n: usize) -> Self {
        let mut s = BitSet::new(n);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        if !n.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        s
    }

    /// Intersects `other` into `self`, keeping `self`'s word length so
    /// equal sets stay representation-equal across joins.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Unions `other` into `self`; returns true if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = false;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            grew |= next != *w;
            *w = next;
        }
        grew
    }

    /// Iterates set members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }

    /// True when no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_per_bit_construction() {
        for n in [0, 1, 63, 64, 65, 128, 130] {
            let mut by_insert = BitSet::new(n);
            for i in 0..n {
                by_insert.insert(i);
            }
            assert_eq!(BitSet::full(n), by_insert, "n = {n}");
        }
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(70)); // beyond initial sizing
        assert!(s.contains(3) && s.contains(70) && !s.contains(4));
        let mut t = BitSet::new(0);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![3, 70]);
        t.remove(3);
        assert!(!t.contains(3));
    }
}
