//! The static-vs-dynamic referee: scores static predictions against the
//! interpreter's execution witness and the dynamic pixel slice.
//!
//! For each canonical session the engine hands the referee three things:
//! the [`ProgramAnalysis`] of the session's scripts, the
//! [`wasteprof_js::JsWitness`] those same scripts produced when the
//! session actually ran, and a membership test for the dynamic
//! backward-slice ground truth. The referee then checks, per analysis:
//!
//! * **unreachable (WP0103)** — a statement the analyzer calls
//!   unreachable that *executed* is a soundness violation; precision over
//!   executed claims must be 1.0. Recall is measured against every
//!   statement that never ran (which includes statements a richer input
//!   would have reached, so static recall is honestly partial).
//! * **dead stores (WP0102)** — a claimed site that executed and was
//!   read back is a soundness violation; ground truth is every witnessed
//!   site whose stores were never read back. Claims the session never
//!   executed are excluded from the precision denominator. Missed ground
//!   truth is split into two classes: sites the analyzer *modeled and
//!   proved live* ([`UnitReport::live_stores`]) are **fundamental**
//!   misses — a sound flow-insensitive-heap analysis must keep them
//!   (e.g. a read in a branch the dynamic run skipped) — while sites the
//!   analyzer never modeled are implementation **weaknesses**.
//! * **static waste (WP0104 ∪ WP0105)** — no soundness class on the
//!   metric itself: precision is the fraction of executed claims whose
//!   self instructions stay entirely outside the dynamic slice, recall
//!   the fraction of dynamically wasted statements the analyzer found.
//!   Useless-call claims join the prediction set — both codes assert the
//!   same thing at the same statement granularity, that the statement's
//!   execution was unnecessary.
//! * **useless calls (WP0105)** — additionally scored on its own
//!   soundness channel: a claimed call statement that executed with any
//!   self instruction *inside* the pixel slice is a soundness violation,
//!   because the analyzer promised the callees were effect-free and
//!   every result discarded. No standalone recall channel — the claims
//!   fold into the waste recall above.
//! * **uncallable functions (WP0106)** — a claimed-uncallable function
//!   the witness counted even one invocation of (any entry path: direct
//!   call, stored closure, timer, handler) is a soundness violation.
//!   Recall is against every declared function the run never invoked.
//!
//! Beyond the per-analysis aggregates the referee emits a per-function
//! breakdown ([`FuncRow`]): for every declared function, its
//! reachability/purity verdicts, its witnessed invocation count, and the
//! WP0104 waste metric restricted to the function's own statements — the
//! table behind `results/static_vs_dynamic.txt`.
//!
//! Only units present in both the analysis and the witness are compared,
//! and every aggregate is computed in deterministic order.

use wasteprof_js::JsWitness;

use crate::analyses::ProgramAnalysis;

/// Counters for one analysis on one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metric {
    /// Statically predicted findings (in compared units).
    pub predicted: u64,
    /// Predictions the dynamic run actually exercised (the precision
    /// denominator).
    pub observed: u64,
    /// Predictions the dynamic ground truth confirms.
    pub tp: u64,
    /// Dynamic ground-truth findings (the recall denominator).
    pub gt: u64,
    /// Soundness violations: predictions the dynamic run refutes.
    pub violations: u64,
}

impl Metric {
    /// `tp / observed`; `None` when nothing was observed.
    #[must_use]
    pub fn precision(&self) -> Option<f64> {
        (self.observed > 0).then(|| self.tp as f64 / self.observed as f64)
    }

    /// `tp / gt`; `None` when the ground truth is empty.
    #[must_use]
    pub fn recall(&self) -> Option<f64> {
        (self.gt > 0).then(|| self.tp as f64 / self.gt as f64)
    }

    /// Accumulates another metric (used for cross-session totals).
    pub fn merge(&mut self, other: &Metric) {
        self.predicted += other.predicted;
        self.observed += other.observed;
        self.tp += other.tp;
        self.gt += other.gt;
        self.violations += other.violations;
    }
}

/// Per-function referee row: static verdicts next to dynamic truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncRow {
    /// The unit (script origin) declaring the function.
    pub origin: String,
    /// Function name (`<anon>` for unnamed function expressions).
    pub name: String,
    /// Function index into the unit's function table.
    pub idx: u32,
    /// Call-graph verdict: reachable from an entry point or callback.
    pub reachable: bool,
    /// Summary verdict: transitively effect-free.
    pub pure: bool,
    /// Witnessed invocation count across every entry path.
    pub calls: u64,
    /// WP0104 waste metric restricted to the function's own statements.
    pub waste: Metric,
}

/// One session's static-vs-dynamic comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefereeReport {
    /// WP0103 unreachable-code metrics.
    pub unreachable: Metric,
    /// WP0102 dead-store metrics.
    pub dead_stores: Metric,
    /// WP0104 static-waste metrics.
    pub wasted: Metric,
    /// WP0105 useless-call metrics (no recall channel: `gt` stays 0).
    pub useless_calls: Metric,
    /// WP0106 uncallable-function metrics.
    pub uncallable: Metric,
    /// WP0101 predictions (counts only; undefined reads have no dynamic
    /// ground-truth channel in the witness).
    pub maybe_undef: u64,
    /// Missed dead-store ground truth the analyzer modeled and proved
    /// live — inherent to a sound static model, not a bug.
    pub misses_fundamental: u64,
    /// Missed dead-store ground truth the analyzer never modeled.
    pub misses_weakness: u64,
    /// Per-function breakdown across every compared unit, in unit order
    /// then function-table order.
    pub per_function: Vec<FuncRow>,
    /// Units present in both the analysis and the witness.
    pub units_compared: usize,
}

impl RefereeReport {
    /// Total soundness violations (must be zero for a sound analyzer).
    #[must_use]
    pub fn soundness_violations(&self) -> u64 {
        self.unreachable.violations
            + self.dead_stores.violations
            + self.useless_calls.violations
            + self.uncallable.violations
    }

    /// Accumulates another report's aggregate metrics and function rows
    /// (used for cross-session totals).
    pub fn merge(&mut self, other: &RefereeReport) {
        self.unreachable.merge(&other.unreachable);
        self.dead_stores.merge(&other.dead_stores);
        self.wasted.merge(&other.wasted);
        self.useless_calls.merge(&other.useless_calls);
        self.uncallable.merge(&other.uncallable);
        self.maybe_undef += other.maybe_undef;
        self.misses_fundamental += other.misses_fundamental;
        self.misses_weakness += other.misses_weakness;
        self.per_function.extend(other.per_function.iter().cloned());
        self.units_compared += other.units_compared;
    }
}

/// Scores `analysis` against the witness of an actual run. `in_slice`
/// answers whether a trace position belongs to the dynamic pixel slice
/// (the ground truth for WP0104/WP0105).
pub fn compare(
    analysis: &ProgramAnalysis,
    witness: &JsWitness,
    in_slice: &dyn Fn(u64) -> bool,
) -> RefereeReport {
    let mut r = RefereeReport::default();
    for unit in &analysis.units {
        let Some(w) = witness.unit(&unit.origin) else {
            continue;
        };
        r.units_compared += 1;
        r.maybe_undef += unit.maybe_undef.len() as u64;

        // Shared oracle: did `stmt`'s own instructions stay out of the
        // pixel slice? None when unmeasurable (never ran / no self work).
        let dyn_wasted = |s: u32| -> Option<bool> {
            if w.exec_count(s) == 0 {
                return None;
            }
            let spans = w.self_spans.get(&s)?;
            if spans.iter().all(|(a, b)| a == b) {
                return None;
            }
            Some(spans.iter().all(|&(a, b)| (a..b).all(|p| !in_slice(p))))
        };

        // WP0103: predicted-unreachable vs execution counts.
        for &s in &unit.unreachable {
            r.unreachable.predicted += 1;
            r.unreachable.observed += 1;
            if w.exec_count(s) > 0 {
                r.unreachable.violations += 1;
            } else {
                r.unreachable.tp += 1;
            }
        }
        for s in 0..unit.stmt_count {
            if w.exec_count(s) == 0 {
                r.unreachable.gt += 1;
            }
        }

        // WP0102: predicted-dead stores vs store fates.
        for key in &unit.dead_stores {
            r.dead_stores.predicted += 1;
            let Some(f) = w.stores.get(key) else {
                continue; // site never executed: unmeasurable
            };
            if f.stores == 0 {
                continue;
            }
            r.dead_stores.observed += 1;
            if f.read_back > 0 {
                r.dead_stores.violations += 1;
            } else {
                r.dead_stores.tp += 1;
            }
        }
        let mut gt_sites: Vec<_> = w
            .stores
            .iter()
            .filter(|(_, f)| f.stores > 0 && f.read_back == 0)
            .collect();
        gt_sites.sort_by_key(|(k, _)| (*k).clone());
        r.dead_stores.gt += gt_sites.len() as u64;
        for (key, _) in &gt_sites {
            if !unit.dead_stores.contains(key) {
                if unit.live_stores.contains(key) {
                    r.misses_fundamental += 1;
                } else {
                    r.misses_weakness += 1;
                }
            }
        }

        // WP0104 ∪ WP0105: predicted-wasted vs the dynamic slice over
        // self spans. A useless-call claim (WP0105) is a waste claim at
        // the same statement granularity — the call runs but its work is
        // unnecessary — so it joins the waste prediction set here; its
        // soundness channel is scored separately below.
        for &s in unit.wasted.union(&unit.useless_calls) {
            r.wasted.predicted += 1;
            let Some(is_wasted) = dyn_wasted(s) else {
                continue; // never executed, or no self instructions
            };
            r.wasted.observed += 1;
            if is_wasted {
                r.wasted.tp += 1;
            }
        }
        for s in 0..unit.stmt_count {
            if dyn_wasted(s) == Some(true) {
                r.wasted.gt += 1;
            }
        }

        // WP0105: a claimed useless call that fed pixels refutes the
        // effect-free promise — a soundness violation, not precision loss.
        for &s in &unit.useless_calls {
            r.useless_calls.predicted += 1;
            let Some(is_wasted) = dyn_wasted(s) else {
                continue;
            };
            r.useless_calls.observed += 1;
            if is_wasted {
                r.useless_calls.tp += 1;
            } else {
                r.useless_calls.violations += 1;
            }
        }

        // WP0106: claimed-uncallable vs witnessed invocation counts.
        for &f in &unit.uncallable {
            r.uncallable.predicted += 1;
            r.uncallable.observed += 1;
            if w.call_count(f) > 0 {
                r.uncallable.violations += 1;
            } else {
                r.uncallable.tp += 1;
            }
        }
        for func in &unit.funcs {
            if w.call_count(func.idx) == 0 {
                r.uncallable.gt += 1;
            }
        }

        // Per-function breakdown: waste metric over each function's own
        // statements, next to its static verdicts and dynamic call count.
        for func in &unit.funcs {
            let mut row = FuncRow {
                origin: unit.origin.clone(),
                name: func.name.clone(),
                idx: func.idx,
                reachable: func.reachable,
                pure: func.pure,
                calls: w.call_count(func.idx),
                waste: Metric::default(),
            };
            for &s in &func.stmts {
                let claimed = unit.wasted.contains(&s);
                if claimed {
                    row.waste.predicted += 1;
                }
                match dyn_wasted(s) {
                    Some(true) => {
                        row.waste.gt += 1;
                        if claimed {
                            row.waste.observed += 1;
                            row.waste.tp += 1;
                        }
                    }
                    Some(false) if claimed => {
                        row.waste.observed += 1;
                    }
                    _ => {}
                }
            }
            r.per_function.push(row);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use wasteprof_js::{JsWitness, StoreFate, UnitWitness};

    use super::*;
    use crate::analyses::{FuncReport, ProgramAnalysis, UnitReport};

    fn unit_report() -> UnitReport {
        UnitReport {
            origin: "a.js".to_owned(),
            stmt_count: 4,
            unreachable: BTreeSet::from([2]),
            dead_stores: BTreeSet::from([(0, "x".to_owned()), (3, "y".to_owned())]),
            wasted: BTreeSet::from([1]),
            maybe_undef: BTreeSet::new(),
            useless_calls: BTreeSet::new(),
            uncallable: BTreeSet::new(),
            live_stores: BTreeSet::new(),
            funcs: Vec::new(),
        }
    }

    fn witness(exec2: u64, read_back: u64) -> JsWitness {
        let mut w = UnitWitness {
            origin: "a.js".to_owned(),
            ..UnitWitness::default()
        };
        w.exec.insert(0, 1);
        w.exec.insert(1, 1);
        if exec2 > 0 {
            w.exec.insert(2, exec2);
        }
        w.stores.insert(
            (0, "x".to_owned()),
            StoreFate {
                stores: 1,
                read_back,
                dead: 1 - read_back,
            },
        );
        // Stmt 1 ran its own instructions at positions 10..12; stmt 3
        // (the second dead-store claim) never executed.
        w.self_spans.insert(1, vec![(10, 12)]);
        JsWitness { units: vec![w] }
    }

    #[test]
    fn clean_run_scores_perfect_precision() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        let w = witness(0, 0);
        let r = compare(&analysis, &w, &|p| p < 5);
        assert_eq!(r.units_compared, 1);
        assert_eq!(r.soundness_violations(), 0);
        assert_eq!(r.unreachable.tp, 1);
        assert_eq!(r.unreachable.precision(), Some(1.0));
        // gt: stmts 2 and 3 never ran.
        assert_eq!(r.unreachable.gt, 2);
        // The (3, y) claim never executed: excluded from the denominator.
        assert_eq!(r.dead_stores.predicted, 2);
        assert_eq!(r.dead_stores.observed, 1);
        assert_eq!(r.dead_stores.precision(), Some(1.0));
        assert_eq!(r.dead_stores.gt, 1);
        // Every ground-truth site was predicted: no misses to classify.
        assert_eq!((r.misses_fundamental, r.misses_weakness), (0, 0));
        // Stmt 1's spans (10..12) are outside the slice (p < 5).
        assert_eq!(r.wasted.observed, 1);
        assert_eq!(r.wasted.tp, 1);
        assert_eq!(r.wasted.recall(), Some(1.0));
    }

    #[test]
    fn refuted_claims_count_as_violations() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        // Stmt 2 executed despite the unreachable claim; the store at
        // stmt 0 was read back despite the dead-store claim.
        let w = witness(3, 1);
        let r = compare(&analysis, &w, &|p| p >= 10);
        assert_eq!(r.unreachable.violations, 1);
        assert_eq!(r.dead_stores.violations, 1);
        assert_eq!(r.soundness_violations(), 2);
        // Stmt 1's spans now overlap the slice: predicted wasted but
        // dynamically useful — precision loss, not a violation.
        assert_eq!(r.wasted.observed, 1);
        assert_eq!(r.wasted.tp, 0);
        assert_eq!(r.wasted.precision(), Some(0.0));
    }

    #[test]
    fn units_missing_from_witness_are_skipped() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        let w = JsWitness { units: Vec::new() };
        let r = compare(&analysis, &w, &|_| false);
        assert_eq!(r.units_compared, 0);
        assert_eq!(r, RefereeReport::default());
    }

    #[test]
    fn useless_call_feeding_pixels_is_a_violation() {
        let mut u = unit_report();
        u.useless_calls = BTreeSet::from([1]);
        let analysis = ProgramAnalysis {
            units: vec![u],
            diags: Vec::new(),
        };
        let w = witness(0, 0);
        // Out of slice (p < 5 in-slice; spans 10..12): confirmed.
        let r = compare(&analysis, &w, &|p| p < 5);
        assert_eq!(r.useless_calls.tp, 1);
        assert_eq!(r.useless_calls.violations, 0);
        // In slice: the "effect-free" promise is refuted — soundness.
        let r = compare(&analysis, &w, &|p| p >= 10);
        assert_eq!(r.useless_calls.violations, 1);
        assert_eq!(r.soundness_violations(), 1);
    }

    #[test]
    fn useless_calls_join_the_waste_prediction_set() {
        let mut u = unit_report();
        u.wasted = BTreeSet::from([1]);
        u.useless_calls = BTreeSet::from([2]);
        let analysis = ProgramAnalysis {
            units: vec![u],
            diags: Vec::new(),
        };
        let w = witness(0, 0);
        let r = compare(&analysis, &w, &|p| p < 5);
        // Both the WP0104 claim and the WP0105 claim count as waste
        // predictions; an id claimed by both would count once.
        assert_eq!(r.wasted.predicted, 2);
    }

    #[test]
    fn uncallable_claims_score_against_call_counts() {
        let mut u = unit_report();
        u.uncallable = BTreeSet::from([0, 1]);
        u.funcs = vec![
            FuncReport {
                idx: 0,
                name: "orphan".into(),
                stmts: vec![],
                reachable: false,
                pure: true,
            },
            FuncReport {
                idx: 1,
                name: "hot".into(),
                stmts: vec![],
                reachable: false,
                pure: false,
            },
            FuncReport {
                idx: 2,
                name: "cold".into(),
                stmts: vec![],
                reachable: true,
                pure: false,
            },
        ];
        let analysis = ProgramAnalysis {
            units: vec![u],
            diags: Vec::new(),
        };
        let mut w = witness(0, 0);
        w.units[0].calls.insert(1, 2); // `hot` actually ran: refuted
        let r = compare(&analysis, &w, &|_| false);
        assert_eq!(r.uncallable.predicted, 2);
        assert_eq!(r.uncallable.tp, 1, "orphan confirmed");
        assert_eq!(r.uncallable.violations, 1, "hot refuted");
        // gt: orphan and cold never ran (2 of 3 declared functions).
        assert_eq!(r.uncallable.gt, 2);
        assert_eq!(r.soundness_violations(), 1);
    }

    #[test]
    fn missed_dead_stores_split_into_fundamental_and_weakness() {
        let mut u = unit_report();
        // The analyzer claims neither ground-truth site; it proved
        // (0, x) live (fundamental) and never modeled (2, z).
        u.dead_stores = BTreeSet::new();
        u.live_stores = BTreeSet::from([(0, "x".to_owned())]);
        let analysis = ProgramAnalysis {
            units: vec![u],
            diags: Vec::new(),
        };
        let mut w = witness(0, 0);
        w.units[0].stores.insert(
            (2, "z".to_owned()),
            StoreFate {
                stores: 1,
                read_back: 0,
                dead: 1,
            },
        );
        let r = compare(&analysis, &w, &|_| false);
        assert_eq!(r.dead_stores.gt, 2);
        assert_eq!(r.misses_fundamental, 1);
        assert_eq!(r.misses_weakness, 1);
    }

    #[test]
    fn per_function_rows_carry_verdicts_calls_and_waste() {
        let mut u = unit_report();
        u.funcs = vec![FuncReport {
            idx: 0,
            name: "helper".into(),
            stmts: vec![1, 2],
            reachable: true,
            pure: true,
        }];
        let analysis = ProgramAnalysis {
            units: vec![u],
            diags: Vec::new(),
        };
        let mut w = witness(0, 0);
        w.units[0].calls.insert(0, 4);
        let r = compare(&analysis, &w, &|p| p < 5);
        assert_eq!(r.per_function.len(), 1);
        let row = &r.per_function[0];
        assert_eq!((row.origin.as_str(), row.name.as_str()), ("a.js", "helper"));
        assert_eq!(row.calls, 4);
        assert!(row.reachable && row.pure);
        // Stmt 1 is claimed wasted and dynamically wasted; stmt 2 never
        // ran (unmeasurable).
        assert_eq!(row.waste.predicted, 1);
        assert_eq!(row.waste.tp, 1);
        assert_eq!(row.waste.gt, 1);
        assert_eq!(row.waste.precision(), Some(1.0));
    }

    #[test]
    fn merge_accumulates_metrics_and_rows() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        let w = witness(0, 0);
        let one = compare(&analysis, &w, &|p| p < 5);
        let mut totals = RefereeReport::default();
        totals.merge(&one);
        totals.merge(&one);
        assert_eq!(totals.units_compared, 2);
        assert_eq!(totals.wasted.tp, one.wasted.tp * 2);
        assert_eq!(totals.dead_stores.predicted, one.dead_stores.predicted * 2);
    }
}
