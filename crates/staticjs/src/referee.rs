//! The static-vs-dynamic referee: scores static predictions against the
//! interpreter's execution witness and the dynamic pixel slice.
//!
//! For each canonical session the engine hands the referee three things:
//! the [`ProgramAnalysis`] of the session's scripts, the
//! [`wasteprof_js::JsWitness`] those same scripts produced when the
//! session actually ran, and a membership test for the dynamic
//! backward-slice ground truth. The referee then checks, per analysis:
//!
//! * **unreachable (WP0103)** — a statement the analyzer calls
//!   unreachable that *executed* is a soundness violation; precision over
//!   executed claims must be 1.0. Recall is measured against every
//!   statement that never ran (which includes statements a richer input
//!   would have reached, so static recall is honestly partial).
//! * **dead stores (WP0102)** — a claimed site that executed and was
//!   read back is a soundness violation; ground truth is every witnessed
//!   site whose stores were never read back. Claims the session never
//!   executed are excluded from the precision denominator.
//! * **static waste (WP0104)** — no soundness class: precision is the
//!   fraction of executed claims whose self instructions stay entirely
//!   outside the dynamic slice, recall the fraction of dynamically
//!   wasted statements the analyzer found.
//!
//! Only units present in both the analysis and the witness are compared,
//! and every aggregate is computed in deterministic order.

use wasteprof_js::JsWitness;

use crate::analyses::ProgramAnalysis;

/// Counters for one analysis on one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metric {
    /// Statically predicted findings (in compared units).
    pub predicted: u64,
    /// Predictions the dynamic run actually exercised (the precision
    /// denominator).
    pub observed: u64,
    /// Predictions the dynamic ground truth confirms.
    pub tp: u64,
    /// Dynamic ground-truth findings (the recall denominator).
    pub gt: u64,
    /// Soundness violations: predictions the dynamic run refutes.
    pub violations: u64,
}

impl Metric {
    /// `tp / observed`; `None` when nothing was observed.
    #[must_use]
    pub fn precision(&self) -> Option<f64> {
        (self.observed > 0).then(|| self.tp as f64 / self.observed as f64)
    }

    /// `tp / gt`; `None` when the ground truth is empty.
    #[must_use]
    pub fn recall(&self) -> Option<f64> {
        (self.gt > 0).then(|| self.tp as f64 / self.gt as f64)
    }
}

/// One session's static-vs-dynamic comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefereeReport {
    /// WP0103 unreachable-code metrics.
    pub unreachable: Metric,
    /// WP0102 dead-store metrics.
    pub dead_stores: Metric,
    /// WP0104 static-waste metrics.
    pub wasted: Metric,
    /// WP0101 predictions (counts only; undefined reads have no dynamic
    /// ground-truth channel in the witness).
    pub maybe_undef: u64,
    /// Units present in both the analysis and the witness.
    pub units_compared: usize,
}

impl RefereeReport {
    /// Total soundness violations (must be zero for a sound analyzer).
    #[must_use]
    pub fn soundness_violations(&self) -> u64 {
        self.unreachable.violations + self.dead_stores.violations
    }
}

/// Scores `analysis` against the witness of an actual run. `in_slice`
/// answers whether a trace position belongs to the dynamic pixel slice
/// (the ground truth for WP0104).
pub fn compare(
    analysis: &ProgramAnalysis,
    witness: &JsWitness,
    in_slice: &dyn Fn(u64) -> bool,
) -> RefereeReport {
    let mut r = RefereeReport::default();
    for unit in &analysis.units {
        let Some(w) = witness.unit(&unit.origin) else {
            continue;
        };
        r.units_compared += 1;
        r.maybe_undef += unit.maybe_undef.len() as u64;

        // WP0103: predicted-unreachable vs execution counts.
        for &s in &unit.unreachable {
            r.unreachable.predicted += 1;
            r.unreachable.observed += 1;
            if w.exec_count(s) > 0 {
                r.unreachable.violations += 1;
            } else {
                r.unreachable.tp += 1;
            }
        }
        for s in 0..unit.stmt_count {
            if w.exec_count(s) == 0 {
                r.unreachable.gt += 1;
            }
        }

        // WP0102: predicted-dead stores vs store fates.
        for key in &unit.dead_stores {
            r.dead_stores.predicted += 1;
            let Some(f) = w.stores.get(key) else {
                continue; // site never executed: unmeasurable
            };
            if f.stores == 0 {
                continue;
            }
            r.dead_stores.observed += 1;
            if f.read_back > 0 {
                r.dead_stores.violations += 1;
            } else {
                r.dead_stores.tp += 1;
            }
        }
        let mut gt_sites: Vec<_> = w
            .stores
            .iter()
            .filter(|(_, f)| f.stores > 0 && f.read_back == 0)
            .collect();
        gt_sites.sort_by_key(|(k, _)| (*k).clone());
        r.dead_stores.gt += gt_sites.len() as u64;

        // WP0104: predicted-wasted vs the dynamic slice over self spans.
        let dyn_wasted = |s: u32| -> Option<bool> {
            if w.exec_count(s) == 0 {
                return None;
            }
            let spans = w.self_spans.get(&s)?;
            if spans.iter().all(|(a, b)| a == b) {
                return None;
            }
            Some(spans.iter().all(|&(a, b)| (a..b).all(|p| !in_slice(p))))
        };
        for &s in &unit.wasted {
            r.wasted.predicted += 1;
            let Some(is_wasted) = dyn_wasted(s) else {
                continue; // never executed, or no self instructions
            };
            r.wasted.observed += 1;
            if is_wasted {
                r.wasted.tp += 1;
            }
        }
        for s in 0..unit.stmt_count {
            if dyn_wasted(s) == Some(true) {
                r.wasted.gt += 1;
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use wasteprof_js::{JsWitness, StoreFate, UnitWitness};

    use super::*;
    use crate::analyses::{ProgramAnalysis, UnitReport};

    fn unit_report() -> UnitReport {
        UnitReport {
            origin: "a.js".to_owned(),
            stmt_count: 4,
            unreachable: BTreeSet::from([2]),
            dead_stores: BTreeSet::from([(0, "x".to_owned()), (3, "y".to_owned())]),
            wasted: BTreeSet::from([1]),
            maybe_undef: BTreeSet::new(),
        }
    }

    fn witness(exec2: u64, read_back: u64) -> JsWitness {
        let mut w = UnitWitness {
            origin: "a.js".to_owned(),
            ..UnitWitness::default()
        };
        w.exec.insert(0, 1);
        w.exec.insert(1, 1);
        if exec2 > 0 {
            w.exec.insert(2, exec2);
        }
        w.stores.insert(
            (0, "x".to_owned()),
            StoreFate {
                stores: 1,
                read_back,
                dead: 1 - read_back,
            },
        );
        // Stmt 1 ran its own instructions at positions 10..12; stmt 3
        // (the second dead-store claim) never executed.
        w.self_spans.insert(1, vec![(10, 12)]);
        JsWitness { units: vec![w] }
    }

    #[test]
    fn clean_run_scores_perfect_precision() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        let w = witness(0, 0);
        let r = compare(&analysis, &w, &|p| p < 5);
        assert_eq!(r.units_compared, 1);
        assert_eq!(r.soundness_violations(), 0);
        assert_eq!(r.unreachable.tp, 1);
        assert_eq!(r.unreachable.precision(), Some(1.0));
        // gt: stmts 2 and 3 never ran.
        assert_eq!(r.unreachable.gt, 2);
        // The (3, y) claim never executed: excluded from the denominator.
        assert_eq!(r.dead_stores.predicted, 2);
        assert_eq!(r.dead_stores.observed, 1);
        assert_eq!(r.dead_stores.precision(), Some(1.0));
        assert_eq!(r.dead_stores.gt, 1);
        // Stmt 1's spans (10..12) are outside the slice (p < 5).
        assert_eq!(r.wasted.observed, 1);
        assert_eq!(r.wasted.tp, 1);
        assert_eq!(r.wasted.recall(), Some(1.0));
    }

    #[test]
    fn refuted_claims_count_as_violations() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        // Stmt 2 executed despite the unreachable claim; the store at
        // stmt 0 was read back despite the dead-store claim.
        let w = witness(3, 1);
        let r = compare(&analysis, &w, &|p| p >= 10);
        assert_eq!(r.unreachable.violations, 1);
        assert_eq!(r.dead_stores.violations, 1);
        assert_eq!(r.soundness_violations(), 2);
        // Stmt 1's spans now overlap the slice: predicted wasted but
        // dynamically useful — precision loss, not a violation.
        assert_eq!(r.wasted.observed, 1);
        assert_eq!(r.wasted.tp, 0);
        assert_eq!(r.wasted.precision(), Some(0.0));
    }

    #[test]
    fn units_missing_from_witness_are_skipped() {
        let analysis = ProgramAnalysis {
            units: vec![unit_report()],
            diags: Vec::new(),
        };
        let w = JsWitness { units: Vec::new() };
        let r = compare(&analysis, &w, &|_| false);
        assert_eq!(r.units_compared, 0);
        assert_eq!(r, RefereeReport::default());
    }
}
