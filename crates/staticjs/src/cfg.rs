//! Control-flow-graph lowering for the JS AST.
//!
//! Each scope (a unit's top level, or one function body) lowers to a CFG
//! of basic blocks whose contents are *ops*: variable/property reads and
//! writes, dynamic (computed-key) accesses, effect sinks, call sites, and
//! function-value escapes, each tagged with the stable statement id it
//! belongs to (see [`wasteprof_js::number_script`]). Expressions lower in
//! evaluation order; short-circuit `&&` / `||` and `?:` get real branch
//! blocks so conditionally-executed reads and writes merge correctly, and
//! literal conditions constant-fold their dead edge (the seed of
//! unreachable-code detection).
//!
//! Call sites are opaque may-effect nodes: a direct call by the name of a
//! known `function` declaration resolves to candidate targets, everything
//! else is [`CallTarget::Unknown`]. Host intrinsics go through the
//! conservative builtin effect table ([`method_effect`]): DOM mutation,
//! timer registration, and network beacons are [`OpKind::Sink`]s; console
//! and `Math` are deliberately *not* sinks (the paper's analytics/logging
//! waste), and anything unrecognized is an unknown call.

use std::collections::HashMap;

use wasteprof_js::{AssignOp, Expr, Stmt, StmtNode, Target};

/// Block index within one scope's CFG.
pub type BlockId = usize;

/// Program-wide interned variable-name id.
pub type VarId = usize;

/// A function scope in the whole-program sense.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ScopeRef {
    /// Index of the script unit.
    pub unit: usize,
    /// `None` for the unit's top level, `Some(i)` for `script.funcs[i]`.
    pub func: Option<usize>,
}

/// How a call site resolves statically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// A direct call by the name of one or more `function` declarations
    /// (more than one candidate when units reuse a name).
    Known(Vec<ScopeRef>),
    /// Anything else: a closure held in a variable or property, or an
    /// unrecognized host method.
    Unknown,
}

/// A property key, base-sensitive when the receiver is a plain variable
/// (`wpState.model` keys differently from `wpPerf.model`); `base: None`
/// means the receiver is a compound expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PropKey {
    /// Interned receiver variable, when the receiver is a simple `Ident`.
    pub base: Option<VarId>,
    /// Property name.
    pub prop: String,
}

/// One dataflow-relevant operation, in evaluation order within its block.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Read of a variable slot.
    ReadVar(VarId),
    /// Write of a variable slot. The flag is true when the op itself
    /// *declares* the name in the current scope (a `var` statement, or a
    /// hoisted function definition): the interpreter only binds a local at
    /// the moment its declaration executes, so a plain assignment before
    /// that point resolves through the scope chain to an outer binding.
    WriteVar(VarId, bool),
    /// Read of a named property.
    ReadProp(PropKey),
    /// Write of a named property.
    WriteProp(PropKey),
    /// Computed-key read (`obj[k]`, `indexOf`): may read any property of
    /// the base.
    DynRead(Option<VarId>),
    /// Computed-key write (`obj[k] = v`, `push`): may write any property
    /// of the base.
    DynWrite(Option<VarId>),
    /// An externally-observable effect: DOM mutation, handler/timer
    /// registration, or network send. The roots of the static slice.
    Sink,
    /// A call site (effects summarized per target).
    Call(CallTarget),
    /// A function value escapes (address taken): it may be invoked later
    /// by the host or through any unknown call.
    UseFun(ScopeRef),
    /// Return from the scope.
    Return,
}

/// An op tagged with the statement it belongs to.
#[derive(Clone, Debug)]
pub struct Op {
    /// Stable statement id within the unit.
    pub stmt: u32,
    /// What the op does.
    pub kind: OpKind,
}

/// A basic block: ops in evaluation order plus successor edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Ops in evaluation order.
    pub ops: Vec<Op>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
}

/// One scope's control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks; `blocks[entry]` is the entry.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Single synthetic exit block (returns and fall-through edge here).
    pub exit: BlockId,
    /// Statement id → block where the statement starts (for
    /// unreachable-statement detection).
    pub stmt_entry: HashMap<u32, BlockId>,
}

impl Cfg {
    /// Predecessor lists, computed on demand.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// Program-wide variable-name interner.
#[derive(Default, Debug)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, VarId>,
}

impl Interner {
    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.map.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The effect a host method call has, per the builtin effect table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MethodEffect {
    /// No heap/DOM effect the slice cares about (`Math.*`, `console.*`,
    /// `performance.now`, `parseInt`). Console is deliberately pure: log
    /// output never feeds pixels, which is exactly the analytics waste
    /// the paper measures.
    Pure,
    /// DOM or host *read* (node lookup, `getAttribute`): produces a value
    /// but mutates nothing.
    HostRead,
    /// Externally-observable effect: DOM mutation, listener/timer
    /// registration, network send.
    Sink,
    /// Array/object mutation through a computed key (`push`).
    DynWrite,
    /// Array/object read through computed keys (`indexOf`, `contains`).
    DynRead,
    /// Unrecognized: may be a stored closure (unknown call).
    Unknown,
}

/// Host globals the interpreter resolves when the name is not shadowed.
pub const HOST_GLOBALS: [&str; 6] = [
    "document",
    "window",
    "console",
    "Math",
    "performance",
    "navigator",
];

/// The conservative builtin effect table for DOM/timer/console/network
/// intrinsics, mirroring the interpreter's host method dispatch.
///
/// `host_base` is `Some(name)` when the receiver expression is one of the
/// [`HOST_GLOBALS`] (and the caller verified the name is never shadowed);
/// `classlist_recv` flags a `x.classList.<m>()` receiver shape.
pub fn method_effect(host_base: Option<&str>, classlist_recv: bool, name: &str) -> MethodEffect {
    match host_base {
        Some("console") | Some("Math") | Some("performance") => MethodEffect::Pure,
        Some("navigator") => match name {
            "sendBeacon" => MethodEffect::Sink,
            _ => MethodEffect::Unknown,
        },
        Some("document") => match name {
            "getElementById"
            | "querySelector"
            | "querySelectorAll"
            | "getElementsByTagName"
            | "getElementsByClassName"
            | "createElement"
            | "createTextNode" => MethodEffect::HostRead,
            "addEventListener" => MethodEffect::Sink,
            _ => MethodEffect::Unknown,
        },
        Some("window") => match name {
            "addEventListener" | "setTimeout" | "requestAnimationFrame" => MethodEffect::Sink,
            _ => MethodEffect::Unknown,
        },
        _ if classlist_recv => match name {
            "add" | "remove" | "toggle" => MethodEffect::Sink,
            "contains" => MethodEffect::HostRead,
            _ => MethodEffect::Unknown,
        },
        _ => match name {
            // Node mutation / registration by name: receivers are nodes in
            // every workload; treating a same-named user method as a sink
            // only over-approximates the slice (never unsound for
            // WP0102/WP0103, which do not depend on sinks).
            "appendChild" | "removeChild" | "remove" | "setAttribute" | "addEventListener" => {
                MethodEffect::Sink
            }
            "getAttribute" => MethodEffect::HostRead,
            "push" => MethodEffect::DynWrite,
            "indexOf" => MethodEffect::DynRead,
            _ => MethodEffect::Unknown,
        },
    }
}

/// Properties whose *assignment* mutates the rendered page when the
/// receiver is a DOM node. Writes to them are sinks.
const DOM_WRITE_PROPS: [&str; 3] = ["textContent", "className", "id"];

/// Everything the lowering needs to know about the surrounding program.
pub struct LowerCtx<'a> {
    /// Variable interner (shared across the program).
    pub vars: &'a mut Interner,
    /// `function` declaration name → candidate targets (whole program).
    pub fn_map: &'a HashMap<String, Vec<ScopeRef>>,
    /// Names declared anywhere in the program (a host global in this set
    /// is shadowed and loses its host meaning).
    pub declared: &'a std::collections::HashSet<String>,
    /// The unit being lowered.
    pub unit: usize,
}

struct Lowerer<'a, 'b> {
    ctx: &'b mut LowerCtx<'a>,
    blocks: Vec<Block>,
    cur: BlockId,
    stmt_entry: HashMap<u32, BlockId>,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
    exit: BlockId,
    stmt: u32,
}

/// Lowers one scope's body to a CFG. `body`/`nodes` are the statement
/// list and its numbering. Each hoisted `function` declaration name gets
/// a `WriteVar` definition at scope entry, matching interpreter hoisting.
pub fn lower_scope(ctx: &mut LowerCtx<'_>, body: &[Stmt], nodes: &[StmtNode]) -> Cfg {
    let mut lw = Lowerer {
        ctx,
        blocks: vec![Block::default(), Block::default()],
        cur: 0,
        stmt_entry: HashMap::new(),
        loops: Vec::new(),
        exit: 1,
        stmt: 0,
    };
    // Hoisted function declarations define their names at scope entry.
    for (stmt, node) in body.iter().zip(nodes) {
        if let Stmt::FuncDecl(name, _) = stmt {
            let v = lw.ctx.vars.intern(name);
            lw.emit_at(node.id, OpKind::WriteVar(v, true));
        }
    }
    lw.lower_block(body, nodes);
    let cur = lw.cur;
    let exit = lw.exit;
    lw.edge(cur, exit);
    Cfg {
        blocks: lw.blocks,
        entry: 0,
        exit,
        stmt_entry: lw.stmt_entry,
    }
}

impl<'a, 'b> Lowerer<'a, 'b> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn emit(&mut self, kind: OpKind) {
        let stmt = self.stmt;
        self.emit_at(stmt, kind);
    }

    fn emit_at(&mut self, stmt: u32, kind: OpKind) {
        let cur = self.cur;
        self.blocks[cur].ops.push(Op { stmt, kind });
    }

    fn lower_block(&mut self, body: &[Stmt], nodes: &[StmtNode]) {
        for (stmt, node) in body.iter().zip(nodes) {
            self.lower_stmt(stmt, node);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt, node: &StmtNode) {
        self.stmt = node.id;
        self.stmt_entry.insert(node.id, self.cur);
        match stmt {
            Stmt::FuncDecl(..) => {} // hoisted at scope entry
            Stmt::Decl(name, init) => {
                if let Some(e) = init {
                    self.lower_expr(e);
                }
                let v = self.ctx.vars.intern(name);
                self.emit(OpKind::WriteVar(v, true));
            }
            Stmt::Expr(e) => {
                self.lower_expr(e);
            }
            Stmt::If(cond, then, els) => {
                self.lower_expr(cond);
                let cond_blk = self.cur;
                let join = self.new_block();
                match const_truthy(cond) {
                    Some(true) => {
                        let t = self.new_block();
                        self.edge(cond_blk, t);
                        self.cur = t;
                        self.lower_block(then, &node.blocks[0]);
                        let end = self.cur;
                        self.edge(end, join);
                        // The else arm still lowers (for stmt_entry and
                        // ops) but gets no incoming edge: unreachable.
                        let e = self.new_block();
                        self.cur = e;
                        self.lower_block(els, &node.blocks[1]);
                        let end = self.cur;
                        self.edge(end, join);
                    }
                    Some(false) => {
                        let t = self.new_block();
                        self.cur = t;
                        self.lower_block(then, &node.blocks[0]);
                        let end = self.cur;
                        self.edge(end, join);
                        let e = self.new_block();
                        self.edge(cond_blk, e);
                        self.cur = e;
                        self.lower_block(els, &node.blocks[1]);
                        let end = self.cur;
                        self.edge(end, join);
                    }
                    None => {
                        let t = self.new_block();
                        let e = self.new_block();
                        self.edge(cond_blk, t);
                        self.edge(cond_blk, e);
                        self.cur = t;
                        self.lower_block(then, &node.blocks[0]);
                        let end = self.cur;
                        self.edge(end, join);
                        self.cur = e;
                        self.lower_block(els, &node.blocks[1]);
                        let end = self.cur;
                        self.edge(end, join);
                    }
                }
                self.cur = join;
            }
            Stmt::While(cond, body) => {
                let head = self.new_block();
                let prev = self.cur;
                self.edge(prev, head);
                self.cur = head;
                self.lower_expr(cond);
                let cond_end = self.cur;
                let body_blk = self.new_block();
                let after = self.new_block();
                match const_truthy(cond) {
                    Some(true) => self.edge(cond_end, body_blk),
                    Some(false) => self.edge(cond_end, after),
                    None => {
                        self.edge(cond_end, body_blk);
                        self.edge(cond_end, after);
                    }
                }
                self.loops.push((head, after));
                self.cur = body_blk;
                self.lower_block(body, &node.blocks[0]);
                let body_end = self.cur;
                self.edge(body_end, head);
                self.loops.pop();
                self.cur = after;
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    // The init statement numbers as node.blocks[0][0].
                    let inner = self.stmt;
                    self.lower_stmt(i, &node.blocks[0][0]);
                    self.stmt = inner;
                }
                let head = self.new_block();
                let prev = self.cur;
                self.edge(prev, head);
                self.cur = head;
                let fold = cond.as_ref().map_or(Some(true), const_truthy);
                if let Some(c) = cond {
                    self.lower_expr(c);
                }
                let cond_end = self.cur;
                let body_blk = self.new_block();
                let step_blk = self.new_block();
                let after = self.new_block();
                match fold {
                    Some(true) => self.edge(cond_end, body_blk),
                    Some(false) => self.edge(cond_end, after),
                    None => {
                        self.edge(cond_end, body_blk);
                        self.edge(cond_end, after);
                    }
                }
                self.loops.push((step_blk, after));
                self.cur = body_blk;
                self.lower_block(body, &node.blocks[1]);
                let body_end = self.cur;
                self.edge(body_end, step_blk);
                self.loops.pop();
                self.cur = step_blk;
                if let Some(s) = step {
                    self.lower_expr(s);
                }
                let step_end = self.cur;
                self.edge(step_end, head);
                self.cur = after;
            }
            Stmt::Return(value) => {
                if let Some(e) = value {
                    self.lower_expr(e);
                }
                self.emit(OpKind::Return);
                let cur = self.cur;
                let exit = self.exit;
                self.edge(cur, exit);
                self.cur = self.new_block(); // unreachable continuation
            }
            Stmt::Break => {
                if let Some(&(_, brk)) = self.loops.last() {
                    let cur = self.cur;
                    self.edge(cur, brk);
                }
                self.cur = self.new_block();
            }
            Stmt::Continue => {
                if let Some(&(cont, _)) = self.loops.last() {
                    let cur = self.cur;
                    self.edge(cur, cont);
                }
                self.cur = self.new_block();
            }
        }
    }

    /// True when `name` refers to the host global of that name here:
    /// host globals lose their meaning if the program ever declares them.
    fn is_host(&self, name: &str) -> bool {
        HOST_GLOBALS.contains(&name) && !self.ctx.declared.contains(name)
    }

    fn base_of(&mut self, obj: &Expr) -> Option<VarId> {
        match obj {
            Expr::Ident(n) if !self.is_host(n) => Some(self.ctx.vars.intern(n)),
            _ => None,
        }
    }

    fn prop_key(&mut self, obj: &Expr, prop: &str) -> PropKey {
        PropKey {
            base: self.base_of(obj),
            prop: prop.to_owned(),
        }
    }

    /// Lowers an identifier read. Reading a `function`-declaration name as
    /// a value (not as a direct callee) lets the function escape.
    fn lower_ident(&mut self, name: &str, as_callee: bool) {
        if self.is_host(name) {
            return;
        }
        let v = self.ctx.vars.intern(name);
        self.emit(OpKind::ReadVar(v));
        if !as_callee {
            if let Some(targets) = self.ctx.fn_map.get(name) {
                for &t in targets.clone().iter() {
                    self.emit(OpKind::UseFun(t));
                }
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Num(..) | Expr::Str(..) | Expr::Bool(_) | Expr::Null | Expr::Undefined => {}
            Expr::Ident(name) => self.lower_ident(name, false),
            Expr::Array(items) => {
                for it in items {
                    self.lower_expr(it);
                }
            }
            Expr::Object(props) => {
                for (_, e) in props {
                    self.lower_expr(e);
                }
            }
            Expr::Function(idx) => {
                let unit = self.ctx.unit;
                self.emit(OpKind::UseFun(ScopeRef {
                    unit,
                    func: Some(*idx as usize),
                }));
            }
            Expr::Binary(_, a, b) => {
                self.lower_expr(a);
                self.lower_expr(b);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.lower_expr(a);
                let lhs_end = self.cur;
                let rhs = self.new_block();
                let join = self.new_block();
                self.edge(lhs_end, rhs);
                self.edge(lhs_end, join);
                self.cur = rhs;
                self.lower_expr(b);
                let rhs_end = self.cur;
                self.edge(rhs_end, join);
                self.cur = join;
            }
            Expr::Unary(_, e) => self.lower_expr(e),
            Expr::Ternary(c, a, b) => {
                self.lower_expr(c);
                let cond_end = self.cur;
                let t = self.new_block();
                let e = self.new_block();
                let join = self.new_block();
                self.edge(cond_end, t);
                self.edge(cond_end, e);
                self.cur = t;
                self.lower_expr(a);
                let end = self.cur;
                self.edge(end, join);
                self.cur = e;
                self.lower_expr(b);
                let end = self.cur;
                self.edge(end, join);
                self.cur = join;
            }
            Expr::Assign(op, target, value) => self.lower_assign(*op, target, value),
            Expr::Call(callee, args) => self.lower_call(callee, args),
            Expr::MethodCall(obj, name, args) => self.lower_method(obj, name, args),
            Expr::Member(obj, name) => {
                self.lower_expr(obj);
                if let Expr::Ident(base) = &**obj {
                    if self.is_host(base) {
                        return; // host property read (viewport, title, body)
                    }
                }
                let key = self.prop_key(obj, name);
                self.emit(OpKind::ReadProp(key));
            }
            Expr::Index(obj, key) => {
                self.lower_expr(obj);
                self.lower_expr(key);
                let base = self.base_of(obj);
                self.emit(OpKind::DynRead(base));
            }
            Expr::PostIncDec { target, .. } => {
                // Old value read, then write-back of the updated value.
                match target {
                    Target::Var(name) => {
                        self.lower_ident(name, false);
                        let v = self.ctx.vars.intern(name);
                        self.emit(OpKind::WriteVar(v, false));
                    }
                    Target::Member(obj, prop) => {
                        self.lower_expr(obj);
                        let key = self.prop_key(obj, prop);
                        self.emit(OpKind::ReadProp(key.clone()));
                        self.lower_prop_write(obj, prop);
                    }
                    Target::Index(obj, key) => {
                        self.lower_expr(obj);
                        self.lower_expr(key);
                        let base = self.base_of(obj);
                        self.emit(OpKind::DynRead(base));
                        self.emit(OpKind::DynWrite(base));
                    }
                }
            }
        }
    }

    /// Emits the write op for `obj.prop = ...`: a sink when the target is
    /// DOM-mutating (node content props, `style` sub-properties, host
    /// globals), otherwise a plain property write.
    fn lower_prop_write(&mut self, obj: &Expr, prop: &str) {
        let style_recv = matches!(obj, Expr::Member(_, m) if m == "style");
        let host_recv = matches!(obj, Expr::Ident(n) if self.is_host(n));
        if style_recv || host_recv || DOM_WRITE_PROPS.contains(&prop) {
            self.emit(OpKind::Sink);
        } else {
            let key = self.prop_key(obj, prop);
            self.emit(OpKind::WriteProp(key));
        }
    }

    fn lower_assign(&mut self, op: AssignOp, target: &Target, value: &Expr) {
        self.lower_expr(value);
        match target {
            Target::Var(name) => {
                let v = self.ctx.vars.intern(name);
                if op != AssignOp::Set {
                    self.emit(OpKind::ReadVar(v));
                }
                self.emit(OpKind::WriteVar(v, false));
            }
            Target::Member(obj, prop) => {
                self.lower_expr(obj);
                if op != AssignOp::Set {
                    let key = self.prop_key(obj, prop);
                    self.emit(OpKind::ReadProp(key));
                }
                self.lower_prop_write(obj, prop);
            }
            Target::Index(obj, key) => {
                self.lower_expr(obj);
                self.lower_expr(key);
                let base = self.base_of(obj);
                if op != AssignOp::Set {
                    self.emit(OpKind::DynRead(base));
                }
                self.emit(OpKind::DynWrite(base));
            }
        }
    }

    fn lower_call(&mut self, callee: &Expr, args: &[Expr]) {
        // Global host natives (when not shadowed), as in the interpreter.
        if let Expr::Ident(name) = callee {
            if !self.ctx.declared.contains(name.as_str()) {
                match name.as_str() {
                    "setTimeout" | "requestAnimationFrame" => {
                        for a in args {
                            self.lower_expr(a);
                        }
                        self.emit(OpKind::Sink);
                        return;
                    }
                    "parseInt" => {
                        for a in args {
                            self.lower_expr(a);
                        }
                        return; // pure
                    }
                    _ => {}
                }
            }
        }
        let target = match callee {
            Expr::Ident(name) => {
                self.lower_ident(name, true);
                match self.ctx.fn_map.get(name.as_str()) {
                    Some(t) => CallTarget::Known(t.clone()),
                    None => CallTarget::Unknown,
                }
            }
            other => {
                self.lower_expr(other);
                CallTarget::Unknown
            }
        };
        for a in args {
            self.lower_expr(a);
        }
        self.emit(OpKind::Call(target));
    }

    fn lower_method(&mut self, obj: &Expr, name: &str, args: &[Expr]) {
        self.lower_expr(obj);
        for a in args {
            self.lower_expr(a);
        }
        let host_base = match obj {
            Expr::Ident(n) if self.is_host(n) => Some(n.as_str()),
            _ => None,
        };
        let classlist_recv = matches!(obj, Expr::Member(_, m) if m == "classList");
        // On a non-host receiver the interpreter dispatches *any* method
        // name through a stored function property when the receiver turns
        // out to be a plain object — even names the effect table classifies
        // as sinks or host reads (`appendChild`, `getAttribute`). Those
        // sites get a call op too, so the interprocedural analyses see the
        // possible user-function dispatch; the call graph resolves it to
        // the (usually empty) set of stored functions under that name.
        let may_dispatch = host_base.is_none();
        match method_effect(host_base, classlist_recv, name) {
            MethodEffect::Pure => {}
            MethodEffect::HostRead => {
                if may_dispatch {
                    self.emit(OpKind::Call(CallTarget::Unknown));
                }
            }
            MethodEffect::Sink => {
                self.emit(OpKind::Sink);
                if may_dispatch {
                    self.emit(OpKind::Call(CallTarget::Unknown));
                }
            }
            MethodEffect::DynWrite => {
                let base = self.base_of(obj);
                self.emit(OpKind::DynWrite(base));
            }
            MethodEffect::DynRead => {
                let base = self.base_of(obj);
                self.emit(OpKind::DynRead(base));
            }
            MethodEffect::Unknown => self.emit(OpKind::Call(CallTarget::Unknown)),
        }
    }
}

/// Truthiness of a literal condition (the interpreter's `Value::truthy`),
/// `None` when not statically known.
pub fn const_truthy(e: &Expr) -> Option<bool> {
    match e {
        Expr::Bool(b) => Some(*b),
        Expr::Num(n, _) => Some(*n != 0.0 && !n.is_nan()),
        Expr::Str(s, _) => Some(!s.is_empty()),
        Expr::Null | Expr::Undefined => Some(false),
        _ => None,
    }
}
