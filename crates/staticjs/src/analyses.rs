//! The client analyses and the whole-program driver.
//!
//! [`analyze_sources`] parses every script of a site, lowers each scope to
//! a CFG ([`crate::cfg`]), builds the interprocedural call graph
//! ([`crate::callgraph`]) and bottom-up effect summaries
//! ([`crate::summaries`]), and runs six clients of the generic worklist
//! solver ([`crate::solver`]):
//!
//! * **WP0101 possibly-undefined use** — forward may-be-uninitialized;
//!   calls clear only the variables their resolved callees may write;
//! * **WP0102 dead store** — backward liveness over *all* of a scope's
//!   locals: calls generate the transitive free reads of their candidate
//!   callees, and the exit boundary keeps alive exactly the locals some
//!   reachable closure (or, for a top level, any other scope) reads;
//! * **WP0103 unreachable code** — call-graph reachability (entry points:
//!   unit top levels plus host-registered callbacks) combined with
//!   intra-scope CFG reachability;
//! * **WP0104 static waste** — an interprocedural backward demand slice
//!   from effect sinks (DOM writes, timers, network), resolving call
//!   sites through per-site candidate sets and their effect summaries;
//! * **WP0105 useless call** — expression statements that only call
//!   provably effect-free functions and discard every result;
//! * **WP0106 never-invocable function** — functions unreachable from
//!   every entry point and never registered as a callback.
//!
//! Findings are reported as checker [`Diag`]s with stable `WP01xx` codes;
//! for the static codes the diagnostic position carries the statement id
//! (see [`wasteprof_js::number_script`]), not a trace position.

use std::collections::{BTreeSet, HashMap, HashSet};

use wasteprof_checker::{sort_diags, Code, Diag};
use wasteprof_js::{number_script, parse, Expr, Script, Stmt, StmtNode, UnitNumbering};

use crate::callgraph::{self, CallGraph};
use crate::cfg::{
    lower_scope, method_effect, Cfg, Interner, LowerCtx, MethodEffect, Op, OpKind, PropKey,
    ScopeRef, VarId, HOST_GLOBALS,
};
use crate::solver::{solve, BitSet, DataflowAnalysis, Direction};
use crate::summaries::{summarize, FnSummary};

/// Statement-level findings for one script unit, keyed by stable
/// statement id — the referee's interface to the witness.
#[derive(Debug, Clone, Default)]
pub struct UnitReport {
    /// Script origin (resource URL).
    pub origin: String,
    /// Total statements in the unit; ids are `0..stmt_count`.
    pub stmt_count: u32,
    /// Statements that can never execute (WP0103).
    pub unreachable: BTreeSet<u32>,
    /// `(stmt, variable)` store sites whose value is never read (WP0102).
    pub dead_stores: BTreeSet<(u32, String)>,
    /// Reachable statements outside the static slice (WP0104).
    pub wasted: BTreeSet<u32>,
    /// `(stmt, variable)` reads that may see an uninitialized slot
    /// (WP0101).
    pub maybe_undef: BTreeSet<(u32, String)>,
    /// Expression statements whose calls are all provably effect-free and
    /// whose results are all discarded (WP0105).
    pub useless_calls: BTreeSet<u32>,
    /// Function indexes (into the unit's function table) that can never
    /// be invoked from any entry point or registered callback (WP0106).
    pub uncallable: BTreeSet<u32>,
    /// `(stmt, variable)` store sites the liveness analysis proved
    /// statically *live* (some path reads the stored value). The referee
    /// uses this to classify missed dynamic dead stores: a miss in this
    /// set is a fundamental limit of path-insensitive liveness, anything
    /// else is an analysis weakness.
    pub live_stores: BTreeSet<(u32, String)>,
    /// Per-function facts, in function-table order.
    pub funcs: Vec<FuncReport>,
}

/// Interprocedural facts about one function of a unit.
#[derive(Debug, Clone, Default)]
pub struct FuncReport {
    /// Index into the unit's function table.
    pub idx: u32,
    /// Display name (`<anonymous>` for function expressions).
    pub name: String,
    /// Statement ids belonging to the function's body.
    pub stmts: Vec<u32>,
    /// Reachable from some entry point or registered callback.
    pub reachable: bool,
    /// Provably effect-free (transitively, over the call graph).
    pub pure: bool,
}

/// Whole-program static analysis result.
#[derive(Debug, Clone, Default)]
pub struct ProgramAnalysis {
    /// Per-unit findings, in input order.
    pub units: Vec<UnitReport>,
    /// All findings as checker diagnostics, in canonical order.
    pub diags: Vec<Diag>,
}

impl ProgramAnalysis {
    /// Looks up a unit report by origin.
    #[must_use]
    pub fn unit(&self, origin: &str) -> Option<&UnitReport> {
        self.units.iter().find(|u| u.origin == origin)
    }
}

/// Parses and analyzes a site's scripts (`(origin, source)` pairs, in
/// load order). Fails on the first parse error.
pub fn analyze_sources(sources: &[(String, String)]) -> Result<ProgramAnalysis, String> {
    let mut units = Vec::new();
    for (origin, src) in sources {
        let script = parse(src).map_err(|e| format!("{origin}: {e}"))?;
        let numbering = number_script(&script);
        units.push(Unit {
            origin: origin.clone(),
            script,
            numbering,
        });
    }
    Ok(analyze_units(&units))
}

struct Unit {
    origin: String,
    script: Script,
    numbering: UnitNumbering,
}

/// Everything the analyses need about one lowered scope.
struct ScopeData {
    scope: ScopeRef,
    cfg: Cfg,
    /// Params + `var` decls + hoisted function names of this scope.
    locals: BTreeSet<VarId>,
    /// Parameters only — bound at call entry, unlike `var`s, which the
    /// interpreter binds when their declaration executes.
    params: BTreeSet<VarId>,
    /// `var`-declared names only (the WP0101 uninitialized universe).
    decl_vars: BTreeSet<VarId>,
    /// Variables this scope's ops read or write.
    mentions: BTreeSet<VarId>,
    /// All statement ids belonging to this scope.
    stmts: Vec<u32>,
    return_stmts: BTreeSet<u32>,
    funcdecl_stmts: BTreeSet<u32>,
    loopctl_stmts: BTreeSet<u32>,
    /// Source span for function scopes (`None` for a unit's top level).
    span: Option<(u32, u32)>,
    name: String,
    /// Locals no other scope can observe (filled by the escape pass).
    private: BTreeSet<VarId>,
    /// Per-block reachability from the scope entry.
    block_reach: Vec<bool>,
}

/// One scope body queued for lowering: function index (`None` for the
/// toplevel), statements, numbering nodes, source span, display name.
type ScopeBody<'a> = (
    Option<usize>,
    &'a [Stmt],
    &'a [StmtNode],
    Option<(u32, u32)>,
    String,
);

/// One scope's name mentions, tagged with its unit and source span.
type ScopeMentions = (usize, Option<(u32, u32)>, BTreeSet<VarId>);

fn analyze_units(units: &[Unit]) -> ProgramAnalysis {
    let mut vars = Interner::default();
    let (fn_map, declared) = collect_decls(units);

    // Lower every scope: unit top levels first, then functions in table
    // order, so scope indices are deterministic.
    let mut scopes: Vec<ScopeData> = Vec::new();
    let mut index: HashMap<ScopeRef, usize> = HashMap::new();
    for (u, unit) in units.iter().enumerate() {
        let mut bodies: Vec<ScopeBody> = vec![(
            None,
            unit.script.body.as_slice(),
            unit.numbering.top.as_slice(),
            None,
            "<toplevel>".to_owned(),
        )];
        for (f, def) in unit.script.funcs.iter().enumerate() {
            bodies.push((
                Some(f),
                def.body.as_slice(),
                unit.numbering.funcs[f].as_slice(),
                Some((def.src_offset, def.src_len)),
                def.name.clone().unwrap_or_else(|| "<anonymous>".to_owned()),
            ));
        }
        for (func, body, nodes, span, name) in bodies {
            let scope = ScopeRef { unit: u, func };
            let mut ctx = LowerCtx {
                vars: &mut vars,
                fn_map: &fn_map,
                declared: &declared,
                unit: u,
            };
            let cfg = lower_scope(&mut ctx, body, nodes);
            let mut d = ScopeData {
                scope,
                cfg,
                locals: BTreeSet::new(),
                params: BTreeSet::new(),
                decl_vars: BTreeSet::new(),
                mentions: BTreeSet::new(),
                stmts: Vec::new(),
                return_stmts: BTreeSet::new(),
                funcdecl_stmts: BTreeSet::new(),
                loopctl_stmts: BTreeSet::new(),
                span,
                name,
                private: BTreeSet::new(),
                block_reach: Vec::new(),
            };
            if let Some(f) = func {
                for p in &unit.script.funcs[f].params {
                    let v = vars.intern(p);
                    d.locals.insert(v);
                    d.params.insert(v);
                }
            }
            walk_meta(body, nodes, &mut d, &mut vars);
            for blk in &d.cfg.blocks {
                for op in &blk.ops {
                    match op.kind {
                        OpKind::ReadVar(v) | OpKind::WriteVar(v, _) => {
                            d.mentions.insert(v);
                        }
                        _ => {}
                    }
                }
            }
            index.insert(scope, scopes.len());
            scopes.push(d);
        }
    }

    compute_private(&mut scopes);
    let cg_units: Vec<(&Script, &UnitNumbering)> =
        units.iter().map(|u| (&u.script, &u.numbering)).collect();
    let cg = callgraph::build(&cg_units, &declared);
    debug_assert_eq!(cg.scopes.len(), scopes.len(), "scope orders must agree");
    let reach = cg.reachable.clone();
    for d in &mut scopes {
        d.block_reach = block_reachability(&d.cfg);
    }

    let nvars = vars.len();
    let direct: Vec<FnSummary> = scopes.iter().map(|d| direct_summary(d, nvars)).collect();
    let sums = summarize(&direct, &cg);
    let exit_live = exit_boundaries(&scopes, &direct, &reach, nvars);
    let mut reports: Vec<UnitReport> = units
        .iter()
        .map(|u| UnitReport {
            origin: u.origin.clone(),
            stmt_count: u.numbering.stmt_count,
            ..UnitReport::default()
        })
        .collect();
    let mut diags: Vec<Diag> = Vec::new();

    // Per-function facts (WP0106 claims ride on `reachable == false`).
    for (i, d) in scopes.iter().enumerate() {
        if let Some(f) = d.scope.func {
            reports[d.scope.unit].funcs.push(FuncReport {
                idx: f as u32,
                name: d.name.clone(),
                stmts: d.stmts.clone(),
                reachable: reach[i],
                pure: sums[i].pure(),
            });
        }
    }

    // WP0103: whole unreferenced functions, then dead blocks in live code.
    // WP0106: the same unreachable functions, claimed per function against
    // the witness's per-function call counts.
    for (i, d) in scopes.iter().enumerate() {
        let u = d.scope.unit;
        if !reach[i] {
            reports[u].unreachable.extend(d.stmts.iter().copied());
            if let Some(&first) = d.stmts.iter().min() {
                diags.push(Diag::at(
                    Code::StaticUnreachable,
                    first as usize,
                    format!(
                        "function `{}` in {} can never be invoked",
                        d.name, units[u].origin
                    ),
                ));
            }
            if let Some(f) = d.scope.func {
                reports[u].uncallable.insert(f as u32);
                diags.push(Diag::at(
                    Code::StaticUncallable,
                    d.stmts.iter().min().copied().unwrap_or(0) as usize,
                    format!(
                        "function `{}` in {} is unreachable from every entry \
                         point and registered callback",
                        d.name, units[u].origin
                    ),
                ));
            }
        } else {
            for &s in &d.stmts {
                let entry = d.cfg.stmt_entry[&s];
                if !d.block_reach[entry] && !d.funcdecl_stmts.contains(&s) {
                    reports[u].unreachable.insert(s);
                    diags.push(Diag::at(
                        Code::StaticUnreachable,
                        s as usize,
                        format!("statement {s} in {} can never execute", units[u].origin),
                    ));
                }
            }
        }
    }

    // WP0101 + WP0102 run per reachable scope.
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        for (s, v) in maybe_uninit(d, i, nvars, &cg, &sums) {
            let name = vars.name(v).to_owned();
            diags.push(Diag::at(
                Code::MaybeUndef,
                s as usize,
                format!(
                    "variable `{name}` in {} may be read before initialization",
                    units[u].origin
                ),
            ));
            reports[u].maybe_undef.insert((s, name));
        }
        let stores = dead_stores(d, i, nvars, &cg, &sums, &exit_live[i]);
        for &(s, v) in &stores.dead {
            let name = vars.name(v).to_owned();
            diags.push(Diag::at(
                Code::StaticDeadStore,
                s as usize,
                format!("store to `{name}` in {} is never read", units[u].origin),
            ));
            reports[u].dead_stores.insert((s, name));
        }
        for &(s, v) in &stores.live {
            reports[u].live_stores.insert((s, vars.name(v).to_owned()));
        }
    }

    // WP0104: interprocedural demand slice from effect sinks.
    let relevant = demand_slice(units, &scopes, &index, &reach, &cg, &sums, nvars);
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        for &s in &d.stmts {
            if relevant.contains(&(u, s))
                || reports[u].unreachable.contains(&s)
                || d.funcdecl_stmts.contains(&s)
                || d.loopctl_stmts.contains(&s)
            {
                continue;
            }
            reports[u].wasted.insert(s);
            diags.push(Diag::at(
                Code::StaticWasted,
                s as usize,
                format!(
                    "statement {s} in {} cannot affect pixels, timers, or network",
                    units[u].origin
                ),
            ));
        }
    }

    // WP0105: expression statements that only call effect-free functions.
    for (u, s) in useless_calls(units, &scopes, &reach, &cg, &sums, &declared, &reports) {
        reports[u].useless_calls.insert(s);
        diags.push(Diag::at(
            Code::StaticUselessCall,
            s as usize,
            format!(
                "statement {s} in {} only calls effect-free functions and \
                 discards every result",
                units[u].origin
            ),
        ));
    }

    sort_diags(&mut diags);
    ProgramAnalysis {
        units: reports,
        diags,
    }
}

/// Collects the whole-program function-declaration map and the set of all
/// declared names (used to detect shadowed host globals).
fn collect_decls(units: &[Unit]) -> (HashMap<String, Vec<ScopeRef>>, HashSet<String>) {
    fn walk(
        body: &[Stmt],
        unit: usize,
        map: &mut HashMap<String, Vec<ScopeRef>>,
        declared: &mut HashSet<String>,
    ) {
        for s in body {
            match s {
                Stmt::FuncDecl(name, idx) => {
                    map.entry(name.clone()).or_default().push(ScopeRef {
                        unit,
                        func: Some(*idx as usize),
                    });
                    declared.insert(name.clone());
                }
                Stmt::Decl(name, _) => {
                    declared.insert(name.clone());
                }
                Stmt::If(_, t, e) => {
                    walk(t, unit, map, declared);
                    walk(e, unit, map, declared);
                }
                Stmt::While(_, b) => walk(b, unit, map, declared),
                Stmt::For(init, _, _, b) => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(&**i), unit, map, declared);
                    }
                    walk(b, unit, map, declared);
                }
                _ => {}
            }
        }
    }
    let mut map = HashMap::new();
    let mut declared = HashSet::new();
    for (u, unit) in units.iter().enumerate() {
        walk(&unit.script.body, u, &mut map, &mut declared);
        for def in &unit.script.funcs {
            walk(&def.body, u, &mut map, &mut declared);
            for p in &def.params {
                declared.insert(p.clone());
            }
        }
    }
    (map, declared)
}

/// Walks a scope body collecting statement ids, declaration sets, and the
/// statement-kind sets the clients need.
fn walk_meta(body: &[Stmt], nodes: &[StmtNode], d: &mut ScopeData, vars: &mut Interner) {
    for (s, n) in body.iter().zip(nodes) {
        d.stmts.push(n.id);
        match s {
            Stmt::Decl(name, _) => {
                let v = vars.intern(name);
                d.decl_vars.insert(v);
                d.locals.insert(v);
            }
            Stmt::FuncDecl(name, _) => {
                d.locals.insert(vars.intern(name));
                d.funcdecl_stmts.insert(n.id);
            }
            Stmt::Return(_) => {
                d.return_stmts.insert(n.id);
            }
            Stmt::Break | Stmt::Continue => {
                d.loopctl_stmts.insert(n.id);
            }
            Stmt::If(_, t, e) => {
                walk_meta(t, &n.blocks[0], d, vars);
                walk_meta(e, &n.blocks[1], d, vars);
            }
            Stmt::While(_, b) => walk_meta(b, &n.blocks[0], d, vars),
            Stmt::For(init, _, _, b) => {
                if let Some(i) = init {
                    walk_meta(std::slice::from_ref(&**i), &n.blocks[0], d, vars);
                }
                walk_meta(b, &n.blocks[1], d, vars);
            }
            _ => {}
        }
    }
}

/// Escape analysis: a function's local is *private* when no function
/// lexically nested inside it mentions the name; a top-level variable is
/// private when no other scope anywhere mentions it. Only private locals
/// are eligible for dead-store claims — everything else may be read by
/// code the intra-scope analysis cannot see.
fn compute_private(scopes: &mut [ScopeData]) {
    let mentions: Vec<ScopeMentions> = scopes
        .iter()
        .map(|d| (d.scope.unit, d.span, d.mentions.clone()))
        .collect();
    for (i, d) in scopes.iter_mut().enumerate() {
        let mut private = d.locals.clone();
        match d.span {
            Some((off, len)) => {
                for (unit, span, m) in &mentions {
                    if *unit != d.scope.unit {
                        continue;
                    }
                    let Some((o2, l2)) = span else { continue };
                    if *o2 > off && o2 + l2 <= off + len {
                        private.retain(|v| !m.contains(v));
                    }
                }
            }
            None => {
                for (j, (_, _, m)) in mentions.iter().enumerate() {
                    if j != i {
                        private.retain(|v| !m.contains(v));
                    }
                }
            }
        }
        d.private = private;
    }
}

/// Blocks reachable from the CFG entry.
fn block_reachability(cfg: &Cfg) -> Vec<bool> {
    let mut seen = vec![false; cfg.blocks.len()];
    let mut work = vec![cfg.entry];
    seen[cfg.entry] = true;
    while let Some(b) = work.pop() {
        for &s in &cfg.blocks[b].succs {
            if !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
    }
    seen
}

/// Extracts one scope's *direct* effect summary from its CFG ops: sinks,
/// externally-visible writes, and free variable reads (reads at points
/// where the name is not provably a local binding — see [`MustDeclared`];
/// every top-level read is free, because a top level's locals are the
/// shared globals).
fn direct_summary(d: &ScopeData, nvars: usize) -> FnSummary {
    let mut s = FnSummary::new(nvars);
    for blk in &d.cfg.blocks {
        for op in &blk.ops {
            match &op.kind {
                OpKind::Sink => s.sink = true,
                OpKind::WriteVar(v, _) if !d.private.contains(v) => {
                    s.writes_vars.insert(*v);
                }
                OpKind::WriteProp(PropKey {
                    base: Some(b),
                    prop,
                }) => {
                    s.writes_exact.insert((*b, prop.clone()));
                }
                OpKind::WriteProp(PropKey { base: None, prop }) => {
                    s.writes_any_prop.insert(prop.clone());
                }
                OpKind::DynWrite(Some(b)) => {
                    s.writes_base_all.insert(*b);
                }
                OpKind::DynWrite(None) => s.writes_dyn_any = true,
                _ => {}
            }
        }
    }
    if d.scope.func.is_none() {
        for blk in &d.cfg.blocks {
            for op in &blk.ops {
                if let OpKind::ReadVar(v) = &op.kind {
                    s.reads_vars.insert(*v);
                }
            }
        }
    } else {
        let facts = solve(&MustDeclared { d, nvars }, &d.cfg);
        for (b, blk) in d.cfg.blocks.iter().enumerate() {
            let mut fact = facts[b].clone();
            for op in &blk.ops {
                match &op.kind {
                    OpKind::ReadVar(v) if !fact.contains(*v) => {
                        s.reads_vars.insert(*v);
                    }
                    OpKind::WriteVar(v, true) => {
                        fact.insert(*v);
                    }
                    _ => {}
                }
            }
        }
    }
    s
}

/// Per scope, the liveness exit boundary: locals some *other* reachable
/// scope may read after this scope exits. For a function scope only
/// scopes lexically nested inside it can resolve its locals; a top
/// level's locals are globals, readable by any other scope in any unit.
/// Direct (non-transitive) free reads suffice: a non-nested callee's
/// read of the same name resolves to a different binding.
fn exit_boundaries(
    scopes: &[ScopeData],
    direct: &[FnSummary],
    reach: &[bool],
    nvars: usize,
) -> Vec<BitSet> {
    scopes
        .iter()
        .map(|d| {
            let mut b = BitSet::new(nvars);
            for (j, c) in scopes.iter().enumerate() {
                if std::ptr::eq(c, d) || !reach[j] {
                    continue;
                }
                let visible = match d.span {
                    Some((off, len)) => {
                        c.scope.unit == d.scope.unit
                            && matches!(c.span, Some((o2, l2)) if o2 > off && o2 + l2 <= off + len)
                    }
                    None => true,
                };
                if visible {
                    for v in direct[j].reads_vars.iter() {
                        if d.locals.contains(&v) {
                            b.insert(v);
                        }
                    }
                }
            }
            b
        })
        .collect()
}

/// One scope's body statements and numbering nodes.
fn scope_body(unit: &Unit, func: Option<usize>) -> (&[Stmt], &[StmtNode]) {
    match func {
        None => (&unit.script.body, &unit.numbering.top),
        Some(f) => (&unit.script.funcs[f].body, &unit.numbering.funcs[f]),
    }
}

/// WP0105: finds expression statements containing at least one user-code
/// call where evaluating the whole expression is provably effect-free —
/// no assignment, no sink- or mutation-classed host method, and every
/// call-graph candidate of every call in the statement transitively pure.
/// The result of an expression statement is always discarded, so such a
/// statement does work nothing can observe.
fn useless_calls(
    units: &[Unit],
    scopes: &[ScopeData],
    reach: &[bool],
    cg: &CallGraph,
    sums: &[FnSummary],
    declared: &HashSet<String>,
    reports: &[UnitReport],
) -> Vec<(usize, u32)> {
    struct WalkCx<'a> {
        scope: usize,
        unit: usize,
        cg: &'a CallGraph,
        sums: &'a [FnSummary],
        declared: &'a HashSet<String>,
        report: &'a UnitReport,
    }
    fn walk(body: &[Stmt], nodes: &[StmtNode], cx: &WalkCx, out: &mut Vec<(usize, u32)>) {
        for (s, n) in body.iter().zip(nodes) {
            match s {
                Stmt::Expr(e)
                    if contains_user_call(e, cx.declared)
                        && effect_free(e, cx.declared)
                        && cx
                            .cg
                            .candidates(cx.scope, n.id)
                            .iter()
                            .all(|&c| cx.sums[c].pure())
                        && !cx.report.unreachable.contains(&n.id) =>
                {
                    out.push((cx.unit, n.id));
                }
                Stmt::If(_, t, e) => {
                    walk(t, &n.blocks[0], cx, out);
                    walk(e, &n.blocks[1], cx, out);
                }
                Stmt::While(_, b) => walk(b, &n.blocks[0], cx, out),
                Stmt::For(init, _, _, b) => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(&**i), &n.blocks[0], cx, out);
                    }
                    walk(b, &n.blocks[1], cx, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        let (body, nodes) = scope_body(&units[u], d.scope.func);
        let cx = WalkCx {
            scope: i,
            unit: u,
            cg,
            sums,
            declared,
            report: &reports[u],
        };
        walk(body, nodes, &cx, &mut out);
    }
    out
}

/// Does the expression contain a call that may dispatch user code (a
/// non-host direct call)? WP0105 claims are restricted to statements
/// exercising at least one such call; host-only statements stay WP0104's
/// domain.
fn contains_user_call(e: &Expr, declared: &HashSet<String>) -> bool {
    let sub = |e: &Expr| contains_user_call(e, declared);
    match e {
        Expr::Call(callee, args) => {
            let host = matches!(&**callee, Expr::Ident(n)
                if !declared.contains(n.as_str())
                    && matches!(n.as_str(), "setTimeout" | "requestAnimationFrame" | "parseInt"));
            !host || sub(callee) || args.iter().any(sub)
        }
        Expr::MethodCall(obj, _, args) => sub(obj) || args.iter().any(sub),
        Expr::Array(items) => items.iter().any(sub),
        Expr::Object(props) => props.iter().any(|(_, e)| sub(e)),
        Expr::Binary(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => sub(a) || sub(b),
        Expr::Unary(_, e) | Expr::Member(e, _) => sub(e),
        Expr::Ternary(c, a, b) => sub(c) || sub(a) || sub(b),
        Expr::Index(o, k) => sub(o) || sub(k),
        Expr::Assign(_, _, v) => sub(v),
        _ => false,
    }
}

/// May evaluating `e` have an effect other than dispatching a user
/// function (which the caller checks through the call-graph candidates)?
/// Conservative: assignments, increments, sink- and mutation-classed
/// methods, and timer registration all disqualify.
fn effect_free(e: &Expr, declared: &HashSet<String>) -> bool {
    let sub = |e: &Expr| effect_free(e, declared);
    let is_host = |n: &str| HOST_GLOBALS.contains(&n) && !declared.contains(n);
    match e {
        Expr::Num(..) | Expr::Str(..) | Expr::Bool(_) | Expr::Null | Expr::Undefined => true,
        Expr::Ident(_) | Expr::Function(_) => true,
        Expr::Array(items) => items.iter().all(sub),
        Expr::Object(props) => props.iter().all(|(_, e)| sub(e)),
        Expr::Binary(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => sub(a) && sub(b),
        Expr::Unary(_, e) => sub(e),
        Expr::Ternary(c, a, b) => sub(c) && sub(a) && sub(b),
        Expr::Member(o, _) => sub(o),
        Expr::Index(o, k) => sub(o) && sub(k),
        Expr::Assign(..) | Expr::PostIncDec { .. } => false,
        Expr::Call(callee, args) => {
            if let Expr::Ident(name) = &**callee {
                if !declared.contains(name.as_str()) {
                    match name.as_str() {
                        "setTimeout" | "requestAnimationFrame" => return false,
                        "parseInt" => return args.iter().all(sub),
                        _ => {}
                    }
                }
            }
            sub(callee) && args.iter().all(sub)
        }
        Expr::MethodCall(obj, name, args) => {
            if !sub(obj) || !args.iter().all(sub) {
                return false;
            }
            let host_base = match &**obj {
                Expr::Ident(n) if is_host(n) => Some(n.as_str()),
                _ => None,
            };
            let classlist_recv = matches!(&**obj, Expr::Member(_, m) if m == "classList");
            match method_effect(host_base, classlist_recv, name) {
                MethodEffect::Pure | MethodEffect::HostRead | MethodEffect::DynRead => true,
                MethodEffect::Sink | MethodEffect::DynWrite => false,
                // An unknown *host* method is opaque; an unknown method on
                // a user object can only dispatch a stored function, which
                // the candidate purity check covers.
                MethodEffect::Unknown => host_base.is_none(),
            }
        }
    }
}

// ---------------------------------------------------------------------
// WP0101: may-be-uninitialized (forward).
// ---------------------------------------------------------------------

struct MaybeUninit<'a> {
    d: &'a ScopeData,
    /// This scope's index in the call graph's scope order.
    i: usize,
    nvars: usize,
    cg: &'a CallGraph,
    sums: &'a [FnSummary],
}

impl MaybeUninit<'_> {
    /// Applies one op to a may-be-uninitialized fact.
    fn step(&self, fact: &mut BitSet, op: &Op) {
        match &op.kind {
            OpKind::WriteVar(v, _) => fact.remove(*v),
            OpKind::Call(_) => {
                // A call initializes exactly what its resolved candidates
                // may transitively write — no longer every escaping local.
                for &c in self.cg.candidates(self.i, op.stmt) {
                    for v in self.sums[c].writes_vars.iter() {
                        fact.remove(v);
                    }
                }
            }
            OpKind::UseFun(_) => {
                // Taking a closure's value: stay conservative, the value
                // may be invoked through paths the graph tracks per site.
                for &v in &self.d.locals {
                    if !self.d.private.contains(&v) {
                        fact.remove(v);
                    }
                }
            }
            _ => {}
        }
    }
}

impl DataflowAnalysis for MaybeUninit<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn boundary(&self) -> BitSet {
        let mut b = BitSet::new(self.nvars);
        for &v in &self.d.decl_vars {
            b.insert(v);
        }
        b
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.union_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        for op in &cfg.blocks[block].ops {
            self.step(&mut f, op);
        }
        f
    }
}

fn maybe_uninit(
    d: &ScopeData,
    i: usize,
    nvars: usize,
    cg: &CallGraph,
    sums: &[FnSummary],
) -> BTreeSet<(u32, VarId)> {
    let analysis = MaybeUninit {
        d,
        i,
        nvars,
        cg,
        sums,
    };
    let facts = solve(&analysis, &d.cfg);
    let mut found = BTreeSet::new();
    for (b, blk) in d.cfg.blocks.iter().enumerate() {
        if !d.block_reach[b] {
            continue;
        }
        let mut fact = facts[b].clone();
        for op in &blk.ops {
            if let OpKind::ReadVar(v) = &op.kind {
                if fact.contains(*v) && d.decl_vars.contains(v) {
                    found.insert((op.stmt, *v));
                }
            }
            analysis.step(&mut fact, op);
        }
    }
    found
}

// ---------------------------------------------------------------------
// WP0102: dead stores (backward liveness over private locals).
// ---------------------------------------------------------------------

struct Liveness<'a> {
    d: &'a ScopeData,
    /// This scope's index in the call graph's scope order.
    i: usize,
    nvars: usize,
    cg: &'a CallGraph,
    sums: &'a [FnSummary],
    /// Locals some other reachable scope may read after exit.
    exit_live: &'a BitSet,
}

impl Liveness<'_> {
    /// Applies one op, in reverse evaluation order, to a liveness fact.
    /// Calls generate the transitive free reads of every candidate callee
    /// — a dispatched closure reading one of our locals keeps the pending
    /// store alive. The host never runs callbacks *between* two ops of a
    /// scope (timers and handlers fire between scope executions), so call
    /// sites and the exit boundary are the only places outside code can
    /// observe a local.
    fn step(&self, fact: &mut BitSet, op: &Op) {
        match &op.kind {
            OpKind::ReadVar(v) if self.d.locals.contains(v) => {
                fact.insert(*v);
            }
            OpKind::WriteVar(v, _) if self.d.locals.contains(v) => {
                fact.remove(*v);
            }
            OpKind::Call(_) => {
                for &c in self.cg.candidates(self.i, op.stmt) {
                    for v in self.sums[c].reads_vars.iter() {
                        if self.d.locals.contains(&v) {
                            fact.insert(v);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

impl DataflowAnalysis for Liveness<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    /// At scope exit exactly the locals in the precomputed exit boundary
    /// are live: those a reachable nested closure (or, for a top level,
    /// any other scope) reads. Everything else is claimable when
    /// overwritten or abandoned.
    fn boundary(&self) -> BitSet {
        self.exit_live.clone()
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.union_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        for op in cfg.blocks[block].ops.iter().rev() {
            self.step(&mut f, op);
        }
        f
    }
}

/// Must-be-declared-in-this-scope (forward, intersection join). The
/// interpreter binds a `var` only when its declaration executes; until
/// then, reads and writes of the name resolve through the scope chain to
/// an *outer* binding other code can observe. A store is only claimable
/// as a dead private-local store at points where the name is definitely
/// a local — i.e. every path from scope entry passed a declaration.
struct MustDeclared<'a> {
    d: &'a ScopeData,
    nvars: usize,
}

impl DataflowAnalysis for MustDeclared<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> BitSet {
        // Must-analysis: unvisited paths constrain nothing.
        BitSet::full(self.nvars)
    }

    fn boundary(&self) -> BitSet {
        let mut b = BitSet::new(self.nvars);
        for &v in &self.d.params {
            b.insert(v);
        }
        b
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.intersect_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        for op in &cfg.blocks[block].ops {
            if let OpKind::WriteVar(v, true) = &op.kind {
                f.insert(*v);
            }
        }
        f
    }
}

/// For each block, a vec parallel to its ops: `true` at a `WriteVar`
/// that definitely hits a binding of this scope (the op declares the
/// name, or every path here already declared it). A unit's top level
/// runs directly in the global scope, so every toplevel write lands on
/// the same binding and the gate is vacuous there.
fn declared_writes(d: &ScopeData, nvars: usize) -> Vec<Vec<bool>> {
    if d.scope.func.is_none() {
        return d
            .cfg
            .blocks
            .iter()
            .map(|blk| vec![true; blk.ops.len()])
            .collect();
    }
    let facts = solve(&MustDeclared { d, nvars }, &d.cfg);
    d.cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(b, blk)| {
            let mut fact = facts[b].clone();
            blk.ops
                .iter()
                .map(|op| match &op.kind {
                    OpKind::WriteVar(v, decl) => {
                        let ok = *decl || fact.contains(*v);
                        if *decl {
                            fact.insert(*v);
                        }
                        ok
                    }
                    _ => false,
                })
                .collect()
        })
        .collect()
}

/// WP0102's result: claimed-dead store sites plus the sites proven live
/// (exported for the referee's miss classification).
struct DeadStores {
    dead: BTreeSet<(u32, VarId)>,
    live: BTreeSet<(u32, VarId)>,
}

fn dead_stores(
    d: &ScopeData,
    i: usize,
    nvars: usize,
    cg: &CallGraph,
    sums: &[FnSummary],
    exit_live: &BitSet,
) -> DeadStores {
    let analysis = Liveness {
        d,
        i,
        nvars,
        cg,
        sums,
        exit_live,
    };
    let facts = solve(&analysis, &d.cfg);
    let declared = declared_writes(d, nvars);
    let mut dead: BTreeSet<(u32, VarId)> = BTreeSet::new();
    let mut alive: BTreeSet<(u32, VarId)> = BTreeSet::new();
    let mut tainted: BTreeSet<(u32, VarId)> = BTreeSet::new();
    for (b, blk) in d.cfg.blocks.iter().enumerate() {
        if !d.block_reach[b] {
            continue;
        }
        let mut fact = facts[b].clone();
        for (iop, op) in blk.ops.iter().enumerate().rev() {
            match &op.kind {
                OpKind::ReadVar(v) if d.locals.contains(v) => {
                    fact.insert(*v);
                }
                OpKind::WriteVar(v, _) if d.locals.contains(v) => {
                    if !declared[b][iop] {
                        // May write an outer binding the liveness lattice
                        // cannot see; never claimable, and not a kill of
                        // the local either.
                        tainted.insert((op.stmt, *v));
                        continue;
                    }
                    if d.funcdecl_stmts.contains(&op.stmt) {
                        // Hoisted function definitions are WP0103's
                        // concern, not dead stores.
                    } else if fact.contains(*v) {
                        alive.insert((op.stmt, *v));
                    } else {
                        dead.insert((op.stmt, *v));
                    }
                    fact.remove(*v);
                }
                OpKind::Call(_) => {
                    for &c in cg.candidates(i, op.stmt) {
                        for v in sums[c].reads_vars.iter() {
                            if d.locals.contains(&v) {
                                fact.insert(v);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    dead.retain(|k| !alive.contains(k) && !tainted.contains(k));
    DeadStores { dead, live: alive }
}

// ---------------------------------------------------------------------
// WP0104: interprocedural backward demand slice.
// ---------------------------------------------------------------------

/// The demanded-property accumulator: which property slots the slice
/// needs, in decreasing precision (exact `(base, prop)` pairs, a prop of
/// an unknown base, every prop of a base, everything).
#[derive(Clone, Default, PartialEq)]
struct PropDemand {
    exact: BTreeSet<(VarId, String)>,
    any_prop: BTreeSet<String>,
    base_all: BTreeSet<VarId>,
    global_all: bool,
}

impl PropDemand {
    fn demand_read(&mut self, key: &PropKey) {
        match key.base {
            Some(b) => {
                self.exact.insert((b, key.prop.clone()));
            }
            None => {
                self.any_prop.insert(key.prop.clone());
            }
        }
    }

    fn is_empty(&self) -> bool {
        !self.global_all
            && self.exact.is_empty()
            && self.any_prop.is_empty()
            && self.base_all.is_empty()
    }

    /// May a write of `key` satisfy some demanded read?
    fn write_matches(&self, key: &PropKey) -> bool {
        if self.global_all || self.any_prop.contains(&key.prop) {
            return true;
        }
        match key.base {
            Some(b) => self.base_all.contains(&b) || self.exact.contains(&(b, key.prop.clone())),
            // Unknown receiver: it may alias any object with this prop
            // demanded, or any object demanded wholesale.
            None => !self.base_all.is_empty() || self.exact.iter().any(|(_, p)| *p == key.prop),
        }
    }

    /// May a computed-key write into `base` satisfy some demanded read?
    fn dyn_write_matches(&self, base: Option<VarId>) -> bool {
        if self.global_all {
            return true;
        }
        match base {
            Some(b) => {
                self.base_all.contains(&b)
                    || !self.any_prop.is_empty()
                    || self.exact.iter().any(|(eb, _)| *eb == b)
            }
            None => !self.is_empty(),
        }
    }
}

/// State frozen for one round of the outer slice fixpoint.
struct FrozenCtx<'a> {
    relevant: &'a HashSet<(usize, u32)>,
    props: &'a PropDemand,
    sums: &'a [FnSummary],
    cg: &'a CallGraph,
    index: &'a HashMap<ScopeRef, usize>,
}

impl FrozenCtx<'_> {
    fn may_sink(&self, t: &ScopeRef) -> bool {
        self.sums[self.index[t]].sink
    }

    fn sum_relevant(&self, s: &FnSummary, fact: &BitSet) -> bool {
        s.sink
            || s.writes_vars.iter().any(|v| fact.contains(v))
            || s.writes_exact.iter().any(|(b, p)| {
                self.props.write_matches(&PropKey {
                    base: Some(*b),
                    prop: p.clone(),
                })
            })
            || s.writes_any_prop.iter().any(|p| {
                self.props.write_matches(&PropKey {
                    base: None,
                    prop: p.clone(),
                })
            })
            || s.writes_base_all
                .iter()
                .any(|b| self.props.dyn_write_matches(Some(*b)))
            || (s.writes_dyn_any && !self.props.is_empty())
    }

    /// May any candidate of the calls in `(scope, stmt)` produce an
    /// effect the current slice demands?
    fn call_relevant(&self, scope: usize, stmt: u32, fact: &BitSet) -> bool {
        self.cg
            .candidates(scope, stmt)
            .iter()
            .any(|&c| self.sum_relevant(&self.sums[c], fact))
    }
}

/// New facts discovered while collecting one round.
#[derive(Default)]
struct RoundAcc {
    relevant: HashSet<(usize, u32)>,
    props: PropDemand,
}

/// Applies one block's ops (in reverse evaluation order) to a demand
/// fact. Within a statement, writes and sinks lower *after* the reads
/// that feed them, so a sink/write marks its statement before its reads
/// are visited and the reads generate demand in the same pass. New
/// relevance and property demand flow into `acc` when provided (the
/// collection pass); the pure solve sees only frozen state.
fn demand_block(
    scope: usize,
    unit: usize,
    ops: &[Op],
    fact: &mut BitSet,
    fz: &FrozenCtx<'_>,
    mut acc: Option<&mut RoundAcc>,
) {
    let mut marked: HashSet<u32> = HashSet::new();
    for op in ops.iter().rev() {
        let rel = fz.relevant.contains(&(unit, op.stmt)) || marked.contains(&op.stmt);
        let mut mark = false;
        match &op.kind {
            OpKind::Sink => mark = true,
            OpKind::WriteVar(v, _) => {
                if fact.contains(*v) {
                    mark = true;
                    fact.remove(*v);
                }
            }
            OpKind::ReadVar(v) => {
                if rel {
                    fact.insert(*v);
                }
            }
            OpKind::ReadProp(key) => {
                if rel {
                    if let Some(acc) = acc.as_deref_mut() {
                        acc.props.demand_read(key);
                    }
                }
            }
            OpKind::DynRead(base) => {
                if rel {
                    if let Some(acc) = acc.as_deref_mut() {
                        match base {
                            Some(b) => {
                                acc.props.base_all.insert(*b);
                            }
                            None => acc.props.global_all = true,
                        }
                    }
                }
            }
            OpKind::WriteProp(key) => {
                if fz.props.write_matches(key) {
                    mark = true;
                }
            }
            OpKind::DynWrite(base) => {
                if fz.props.dyn_write_matches(*base) {
                    mark = true;
                }
            }
            OpKind::Call(_) => {
                if fz.call_relevant(scope, op.stmt, fact) {
                    mark = true;
                }
            }
            OpKind::UseFun(t) => {
                if fz.may_sink(t) {
                    mark = true;
                }
            }
            OpKind::Return => {}
        }
        if mark {
            marked.insert(op.stmt);
            if let Some(acc) = acc.as_deref_mut() {
                acc.relevant.insert((unit, op.stmt));
            }
        }
    }
}

struct DemandAnalysis<'a> {
    scope: usize,
    unit: usize,
    fz: &'a FrozenCtx<'a>,
    boundary: BitSet,
    nvars: usize,
}

impl DataflowAnalysis for DemandAnalysis<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn boundary(&self) -> BitSet {
        self.boundary.clone()
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.union_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        demand_block(
            self.scope,
            self.unit,
            &cfg.blocks[block].ops,
            &mut f,
            self.fz,
            None,
        );
        f
    }
}

/// Computes the relevant-statement set: the outer fixpoint over per-scope
/// backward demand solves, property-demand accumulation, cross-scope
/// demanded globals, and the structural closures (ancestors, call and
/// definition sites of active scopes, relevant returns). Everything
/// reachable but not in this set is statically wasted.
fn demand_slice(
    units: &[Unit],
    scopes: &[ScopeData],
    index: &HashMap<ScopeRef, usize>,
    reach: &[bool],
    cg: &CallGraph,
    sums: &[FnSummary],
    nvars: usize,
) -> HashSet<(usize, u32)> {
    // Structural indices for the closures. Call sites resolve through the
    // call graph's per-site candidate sets — there is no "unknown call"
    // node any more.
    let parent = parent_maps(units);
    let decl_sites = funcdecl_sites(units, index);
    let mut use_sites: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    let mut call_sites_by_callee: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    let mut call_ops: Vec<(usize, usize, u32)> = Vec::new();
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        for blk in &d.cfg.blocks {
            for op in &blk.ops {
                match &op.kind {
                    OpKind::UseFun(t) => use_sites.entry(index[t]).or_default().push((u, op.stmt)),
                    OpKind::Call(_) => {
                        call_ops.push((i, u, op.stmt));
                        for &c in cg.candidates(i, op.stmt) {
                            call_sites_by_callee
                                .entry(c)
                                .or_default()
                                .push((u, op.stmt));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    let mut relevant: HashSet<(usize, u32)> = HashSet::new();
    let mut props = PropDemand::default();
    let mut globals = BitSet::new(nvars);
    loop {
        let mut acc = RoundAcc {
            relevant: relevant.clone(),
            props: props.clone(),
        };
        let mut next_globals = globals.clone();
        for (i, d) in scopes.iter().enumerate() {
            if !reach[i] {
                continue;
            }
            let fz = FrozenCtx {
                relevant: &relevant,
                props: &props,
                sums,
                cg,
                index,
            };
            let mut boundary = globals.clone();
            for &v in &d.locals {
                if !d.private.contains(&v) {
                    boundary.insert(v);
                }
            }
            let analysis = DemandAnalysis {
                scope: i,
                unit: d.scope.unit,
                fz: &fz,
                boundary,
                nvars,
            };
            let facts = solve(&analysis, &d.cfg);
            for (b, blk) in d.cfg.blocks.iter().enumerate() {
                let mut fact = facts[b].clone();
                demand_block(i, d.scope.unit, &blk.ops, &mut fact, &fz, Some(&mut acc));
            }
            // Demand at scope entry for anything not provably scope-local
            // must be met by writes elsewhere: it becomes a global demand.
            let mut entry = facts[d.cfg.entry].clone();
            demand_block(
                i,
                d.scope.unit,
                &d.cfg.blocks[d.cfg.entry].ops,
                &mut entry,
                &fz,
                None,
            );
            for v in entry.iter() {
                if !d.private.contains(&v) {
                    next_globals.insert(v);
                }
            }
        }

        // Structural closures, iterated to a (cheap) local fixpoint.
        loop {
            let before = acc.relevant.len();
            // A relevant statement keeps its enclosing statements.
            let snapshot: Vec<(usize, u32)> = acc.relevant.iter().copied().collect();
            for (u, s) in snapshot {
                let mut cur = s;
                while let Some(&p) = parent[u].get(&cur) {
                    acc.relevant.insert((u, p));
                    cur = p;
                }
            }
            // A scope with relevant work keeps its declarations, value
            // uses, call sites, and its own returns (early exits gate
            // whether the relevant work runs).
            for (i, d) in scopes.iter().enumerate() {
                if !reach[i] || d.scope.func.is_none() {
                    continue;
                }
                let active = d
                    .stmts
                    .iter()
                    .any(|s| acc.relevant.contains(&(d.scope.unit, *s)));
                if !active {
                    continue;
                }
                for site in decl_sites.get(&i).into_iter().flatten() {
                    acc.relevant.insert(*site);
                }
                for site in use_sites.get(&i).into_iter().flatten() {
                    acc.relevant.insert(*site);
                }
                for site in call_sites_by_callee.get(&i).into_iter().flatten() {
                    acc.relevant.insert(*site);
                }
            }
            for (i, d) in scopes.iter().enumerate() {
                if !reach[i] {
                    continue;
                }
                let active = d
                    .stmts
                    .iter()
                    .any(|s| acc.relevant.contains(&(d.scope.unit, *s)));
                if active {
                    for &r in &d.return_stmts {
                        acc.relevant.insert((d.scope.unit, r));
                    }
                }
            }
            // A relevant call site needs its callees' return values.
            for &(sc, u, s) in &call_ops {
                if !acc.relevant.contains(&(u, s)) {
                    continue;
                }
                for &j in cg.candidates(sc, s) {
                    for &r in &scopes[j].return_stmts {
                        acc.relevant.insert((scopes[j].scope.unit, r));
                    }
                }
            }
            if acc.relevant.len() == before {
                break;
            }
        }

        let stable = acc.relevant == relevant && acc.props == props && next_globals == globals;
        relevant = acc.relevant;
        props = acc.props;
        globals = next_globals;
        if stable {
            break;
        }
    }
    relevant
}

/// Per function scope index, the statements that declare it
/// (`function f() {}` statements anywhere in the program).
fn funcdecl_sites(
    units: &[Unit],
    index: &HashMap<ScopeRef, usize>,
) -> HashMap<usize, Vec<(usize, u32)>> {
    fn walk(
        body: &[Stmt],
        nodes: &[StmtNode],
        unit: usize,
        index: &HashMap<ScopeRef, usize>,
        out: &mut HashMap<usize, Vec<(usize, u32)>>,
    ) {
        for (s, n) in body.iter().zip(nodes) {
            match s {
                Stmt::FuncDecl(_, idx) => {
                    let scope = ScopeRef {
                        unit,
                        func: Some(*idx as usize),
                    };
                    out.entry(index[&scope]).or_default().push((unit, n.id));
                }
                Stmt::If(_, t, e) => {
                    walk(t, &n.blocks[0], unit, index, out);
                    walk(e, &n.blocks[1], unit, index, out);
                }
                Stmt::While(_, b) => walk(b, &n.blocks[0], unit, index, out),
                Stmt::For(init, _, _, b) => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(&**i), &n.blocks[0], unit, index, out);
                    }
                    walk(b, &n.blocks[1], unit, index, out);
                }
                _ => {}
            }
        }
    }
    let mut out = HashMap::new();
    for (u, unit) in units.iter().enumerate() {
        walk(&unit.script.body, &unit.numbering.top, u, index, &mut out);
        for (f, def) in unit.script.funcs.iter().enumerate() {
            walk(&def.body, &unit.numbering.funcs[f], u, index, &mut out);
        }
    }
    out
}

/// Parent statement maps per unit: child stmt id → enclosing stmt id.
fn parent_maps(units: &[Unit]) -> Vec<HashMap<u32, u32>> {
    fn walk(nodes: &[StmtNode], parent: Option<u32>, map: &mut HashMap<u32, u32>) {
        for n in nodes {
            if let Some(p) = parent {
                map.insert(n.id, p);
            }
            for blk in &n.blocks {
                walk(blk, Some(n.id), map);
            }
        }
    }
    units
        .iter()
        .map(|u| {
            let mut map = HashMap::new();
            walk(&u.numbering.top, None, &mut map);
            for f in &u.numbering.funcs {
                walk(f, None, &mut map);
            }
            map
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> ProgramAnalysis {
        analyze_sources(&[("test.js".to_owned(), src.to_owned())]).unwrap()
    }

    #[test]
    fn overwritten_store_to_private_var_is_dead() {
        let a = analyze("var x = 1; x = 2; document.getElementById('a').textContent = x;");
        let u = &a.units[0];
        assert!(u.dead_stores.contains(&(0, "x".to_owned())));
        assert!(!u.dead_stores.contains(&(1, "x".to_owned())));
    }

    #[test]
    fn escaping_vars_live_at_exit_but_overwrites_before_any_call_are_dead() {
        // `x` is read by a timer callback — but callbacks only fire after
        // the top level completes, so the store the callback can observe
        // is `x = 2`; the unconditionally-overwritten `x = 1` is dead.
        let a = analyze(
            "var x = 1; x = 2; \
             window.setTimeout(function () { document.title = x; }, 0);",
        );
        let u = &a.units[0];
        assert!(u.dead_stores.contains(&(0, "x".to_owned())));
        assert!(!u.dead_stores.contains(&(1, "x".to_owned())));
    }

    #[test]
    fn stores_read_through_dispatched_closures_stay_live() {
        // `seed = 1` is read by a closure invoked *synchronously* through
        // an object property before the overwrite: not claimable.
        let a = analyze(
            "var seed = 1; \
             var api = { get: function () { return seed; } }; \
             document.title = api.get(); \
             seed = 2; document.title = seed;",
        );
        let u = &a.units[0];
        assert!(
            !u.dead_stores.contains(&(0, "seed".to_owned())),
            "dispatched closure reads seed: {:?}",
            u.dead_stores
        );
    }

    #[test]
    fn pure_call_statement_is_a_useless_call() {
        let a = analyze(
            "function score(n) { return n * 2; } \
             score(21); \
             document.title = 'done';",
        );
        let u = &a.units[0];
        assert!(u.useless_calls.contains(&1), "{:?}", u.useless_calls);
        // The declaration and the sink are not claimed.
        assert!(!u.useless_calls.contains(&0));
        assert!(!u.useless_calls.contains(&2));
    }

    #[test]
    fn call_with_sink_effects_is_not_useless() {
        let a = analyze(
            "function paint() { document.title = 'x'; } \
             paint();",
        );
        assert!(a.units[0].useless_calls.is_empty());
    }

    #[test]
    fn uncallable_function_is_claimed_per_function() {
        let a = analyze(
            "function used() { return 1; } \
             function orphan() { return 2; } \
             var f = function () { return 3; }; \
             document.title = used();",
        );
        let u = &a.units[0];
        assert!(u.uncallable.contains(&1), "orphan: {:?}", u.uncallable);
        assert!(!u.uncallable.contains(&0), "used is invoked");
        assert!(
            u.uncallable.contains(&2),
            "f's closure is stored but never called"
        );
        let orphan = u.funcs.iter().find(|f| f.idx == 1).unwrap();
        assert!(!orphan.reachable);
        let used = u.funcs.iter().find(|f| f.idx == 0).unwrap();
        assert!(used.reachable && used.pure);
    }

    #[test]
    fn calls_resolved_through_variables_keep_stores_live() {
        // `cfg = 1` is read by `helper` dispatched through a variable; the
        // seed analyzer's intraprocedural WP0102 would have claimed it.
        let a = analyze(
            "var cfg = 1; \
             function helper() { return cfg; } \
             var run = helper; \
             document.title = run(); \
             cfg = 2; document.title = cfg;",
        );
        assert!(!a.units[0].dead_stores.contains(&(0, "cfg".to_owned())));
    }

    #[test]
    fn unreferenced_function_and_const_false_branch_are_unreachable() {
        let a = analyze(
            "function used() { return 1; } \
             function unused() { var q = 7; return q; } \
             if (false) { var z = 1; } \
             document.title = used();",
        );
        let u = &a.units[0];
        // Numbering: top level is 0..=4, `used` body is {5}, `unused`
        // body is {6, 7}.
        assert!(u.unreachable.contains(&6));
        assert!(u.unreachable.contains(&7));
        // `used` body (stmt 5) is reachable through the call.
        assert!(!u.unreachable.contains(&5));
        // The folded `if (false)` arm: `var z` never executes.
        let z_diag = a
            .diags
            .iter()
            .any(|d| d.code == Code::StaticUnreachable && d.message.contains("never execute"));
        assert!(z_diag);
        assert!(u.unreachable.contains(&3), "var z in the folded branch");
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let a = analyze("function f() { return 1; var t = 2; } document.title = f();");
        assert!(a.units[0].unreachable.contains(&3), "stmt after return");
    }

    #[test]
    fn console_only_work_is_outside_the_slice() {
        let a = analyze(
            "var a = 1; var b = a + 1; \
             document.getElementById('x').textContent = b; \
             var w = 5; console.log(w);",
        );
        let u = &a.units[0];
        assert!(u.wasted.contains(&3), "var w feeds only console");
        assert!(u.wasted.contains(&4), "console.log is not a sink");
        assert!(!u.wasted.contains(&0), "a feeds the DOM write");
        assert!(!u.wasted.contains(&1), "b feeds the DOM write");
        assert!(!u.wasted.contains(&2), "the DOM write itself");
    }

    #[test]
    fn slice_follows_values_through_calls() {
        let a = analyze(
            "function add(a, b) { return a + b; } \
             var s = add(1, 2); document.title = s;",
        );
        let u = &a.units[0];
        assert!(
            u.wasted.is_empty(),
            "everything feeds the title: {:?}",
            u.wasted
        );
    }

    #[test]
    fn unread_property_writes_are_wasted() {
        // `state.model` is written but never read; `state.count` feeds
        // the DOM. Base-sensitive keys keep them apart.
        let a = analyze(
            "var state = { count: 0, model: 0 }; \
             state.model = 42; \
             state.count = 1; \
             document.title = state.count;",
        );
        let u = &a.units[0];
        assert!(
            u.wasted.contains(&1),
            "model write is wasted: {:?}",
            u.wasted
        );
        assert!(!u.wasted.contains(&2), "count write is in the slice");
    }

    #[test]
    fn use_before_declaration_may_be_undefined() {
        let a = analyze("var q = r + 1; var r = 2; document.title = q + r;");
        assert!(a.units[0].maybe_undef.contains(&(0, "r".to_owned())));
    }

    #[test]
    fn loops_carrying_values_to_sinks_stay_relevant() {
        let a = analyze(
            "var sum = 0; \
             for (var i = 0; i < 3; i += 1) { sum += i; } \
             document.title = sum;",
        );
        let u = &a.units[0];
        assert!(u.wasted.is_empty(), "loop feeds the sink: {:?}", u.wasted);
        assert!(u.unreachable.is_empty());
    }

    #[test]
    fn analysis_is_deterministic() {
        let src = "var a = 1; function f(x) { return x + a; } \
                   var unused_acc = 0; \
                   for (var i = 0; i < 4; i += 1) { unused_acc += i; } \
                   document.getElementById('n').textContent = f(2); \
                   console.log(unused_acc);";
        let a1 = analyze(src);
        let a2 = analyze(src);
        assert_eq!(a1.units[0].wasted, a2.units[0].wasted);
        assert_eq!(a1.units[0].dead_stores, a2.units[0].dead_stores);
        assert_eq!(
            wasteprof_checker::render_json(&a1.diags),
            wasteprof_checker::render_json(&a2.diags)
        );
    }

    #[test]
    fn parse_errors_name_the_unit() {
        let err = analyze_sources(&[("bad.js".to_owned(), "var = ;".to_owned())]).unwrap_err();
        assert!(err.starts_with("bad.js:"), "{err}");
    }
}
