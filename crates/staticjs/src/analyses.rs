//! The four client analyses and the whole-program driver.
//!
//! [`analyze_sources`] parses every script of a site, lowers each scope to
//! a CFG ([`crate::cfg`]), and runs four clients of the generic worklist
//! solver ([`crate::solver`]):
//!
//! * **WP0101 possibly-undefined use** — forward may-be-uninitialized over
//!   each scope's declared variables;
//! * **WP0102 dead store** — backward liveness, claimed only for
//!   *non-escaping* locals (no closure or other unit can observe them, so
//!   a statically dead store must be dynamically dead);
//! * **WP0103 unreachable code** — a scope-reachability fixpoint (direct
//!   calls plus address-taken functions the host may invoke) combined with
//!   intra-scope CFG reachability;
//! * **WP0104 static waste** — an interprocedural backward demand slice
//!   from effect sinks (DOM writes, timers, network); every statement
//!   outside the slice is statically wasted.
//!
//! Findings are reported as checker [`Diag`]s with stable `WP01xx` codes;
//! for the static codes the diagnostic position carries the statement id
//! (see [`wasteprof_js::number_script`]), not a trace position.

use std::collections::{BTreeSet, HashMap, HashSet};

use wasteprof_checker::{sort_diags, Code, Diag};
use wasteprof_js::{number_script, parse, Script, Stmt, StmtNode, UnitNumbering};

use crate::cfg::{
    lower_scope, CallTarget, Cfg, Interner, LowerCtx, Op, OpKind, PropKey, ScopeRef, VarId,
};
use crate::solver::{solve, BitSet, DataflowAnalysis, Direction};

/// Statement-level findings for one script unit, keyed by stable
/// statement id — the referee's interface to the witness.
#[derive(Debug, Clone, Default)]
pub struct UnitReport {
    /// Script origin (resource URL).
    pub origin: String,
    /// Total statements in the unit; ids are `0..stmt_count`.
    pub stmt_count: u32,
    /// Statements that can never execute (WP0103).
    pub unreachable: BTreeSet<u32>,
    /// `(stmt, variable)` store sites whose value is never read (WP0102).
    pub dead_stores: BTreeSet<(u32, String)>,
    /// Reachable statements outside the static slice (WP0104).
    pub wasted: BTreeSet<u32>,
    /// `(stmt, variable)` reads that may see an uninitialized slot
    /// (WP0101).
    pub maybe_undef: BTreeSet<(u32, String)>,
}

/// Whole-program static analysis result.
#[derive(Debug, Clone, Default)]
pub struct ProgramAnalysis {
    /// Per-unit findings, in input order.
    pub units: Vec<UnitReport>,
    /// All findings as checker diagnostics, in canonical order.
    pub diags: Vec<Diag>,
}

impl ProgramAnalysis {
    /// Looks up a unit report by origin.
    #[must_use]
    pub fn unit(&self, origin: &str) -> Option<&UnitReport> {
        self.units.iter().find(|u| u.origin == origin)
    }
}

/// Parses and analyzes a site's scripts (`(origin, source)` pairs, in
/// load order). Fails on the first parse error.
pub fn analyze_sources(sources: &[(String, String)]) -> Result<ProgramAnalysis, String> {
    let mut units = Vec::new();
    for (origin, src) in sources {
        let script = parse(src).map_err(|e| format!("{origin}: {e}"))?;
        let numbering = number_script(&script);
        units.push(Unit {
            origin: origin.clone(),
            script,
            numbering,
        });
    }
    Ok(analyze_units(&units))
}

struct Unit {
    origin: String,
    script: Script,
    numbering: UnitNumbering,
}

/// Everything the analyses need about one lowered scope.
struct ScopeData {
    scope: ScopeRef,
    cfg: Cfg,
    /// Params + `var` decls + hoisted function names of this scope.
    locals: BTreeSet<VarId>,
    /// Parameters only — bound at call entry, unlike `var`s, which the
    /// interpreter binds when their declaration executes.
    params: BTreeSet<VarId>,
    /// `var`-declared names only (the WP0101 uninitialized universe).
    decl_vars: BTreeSet<VarId>,
    /// Variables this scope's ops read or write.
    mentions: BTreeSet<VarId>,
    /// All statement ids belonging to this scope.
    stmts: Vec<u32>,
    return_stmts: BTreeSet<u32>,
    funcdecl_stmts: BTreeSet<u32>,
    loopctl_stmts: BTreeSet<u32>,
    /// Source span for function scopes (`None` for a unit's top level).
    span: Option<(u32, u32)>,
    name: String,
    /// Locals no other scope can observe (filled by the escape pass).
    private: BTreeSet<VarId>,
    /// Per-block reachability from the scope entry.
    block_reach: Vec<bool>,
}

/// One scope body queued for lowering: function index (`None` for the
/// toplevel), statements, numbering nodes, source span, display name.
type ScopeBody<'a> = (
    Option<usize>,
    &'a [Stmt],
    &'a [StmtNode],
    Option<(u32, u32)>,
    String,
);

/// One scope's name mentions, tagged with its unit and source span.
type ScopeMentions = (usize, Option<(u32, u32)>, BTreeSet<VarId>);

fn analyze_units(units: &[Unit]) -> ProgramAnalysis {
    let mut vars = Interner::default();
    let (fn_map, declared) = collect_decls(units);

    // Lower every scope: unit top levels first, then functions in table
    // order, so scope indices are deterministic.
    let mut scopes: Vec<ScopeData> = Vec::new();
    let mut index: HashMap<ScopeRef, usize> = HashMap::new();
    for (u, unit) in units.iter().enumerate() {
        let mut bodies: Vec<ScopeBody> = vec![(
            None,
            unit.script.body.as_slice(),
            unit.numbering.top.as_slice(),
            None,
            "<toplevel>".to_owned(),
        )];
        for (f, def) in unit.script.funcs.iter().enumerate() {
            bodies.push((
                Some(f),
                def.body.as_slice(),
                unit.numbering.funcs[f].as_slice(),
                Some((def.src_offset, def.src_len)),
                def.name.clone().unwrap_or_else(|| "<anonymous>".to_owned()),
            ));
        }
        for (func, body, nodes, span, name) in bodies {
            let scope = ScopeRef { unit: u, func };
            let mut ctx = LowerCtx {
                vars: &mut vars,
                fn_map: &fn_map,
                declared: &declared,
                unit: u,
            };
            let cfg = lower_scope(&mut ctx, body, nodes);
            let mut d = ScopeData {
                scope,
                cfg,
                locals: BTreeSet::new(),
                params: BTreeSet::new(),
                decl_vars: BTreeSet::new(),
                mentions: BTreeSet::new(),
                stmts: Vec::new(),
                return_stmts: BTreeSet::new(),
                funcdecl_stmts: BTreeSet::new(),
                loopctl_stmts: BTreeSet::new(),
                span,
                name,
                private: BTreeSet::new(),
                block_reach: Vec::new(),
            };
            if let Some(f) = func {
                for p in &unit.script.funcs[f].params {
                    let v = vars.intern(p);
                    d.locals.insert(v);
                    d.params.insert(v);
                }
            }
            walk_meta(body, nodes, &mut d, &mut vars);
            for blk in &d.cfg.blocks {
                for op in &blk.ops {
                    match op.kind {
                        OpKind::ReadVar(v) | OpKind::WriteVar(v, _) => {
                            d.mentions.insert(v);
                        }
                        _ => {}
                    }
                }
            }
            index.insert(scope, scopes.len());
            scopes.push(d);
        }
    }

    compute_private(&mut scopes);
    let reach = scope_reachability(&scopes, &index, units.len());
    for d in &mut scopes {
        d.block_reach = block_reachability(&d.cfg);
    }
    let at: BTreeSet<usize> = address_taken(&scopes, &index, &reach);

    let nvars = vars.len();
    let mut reports: Vec<UnitReport> = units
        .iter()
        .map(|u| UnitReport {
            origin: u.origin.clone(),
            stmt_count: u.numbering.stmt_count,
            ..UnitReport::default()
        })
        .collect();
    let mut diags: Vec<Diag> = Vec::new();

    // WP0103: whole unreferenced functions, then dead blocks in live code.
    for (i, d) in scopes.iter().enumerate() {
        let u = d.scope.unit;
        if !reach[i] {
            reports[u].unreachable.extend(d.stmts.iter().copied());
            if let Some(&first) = d.stmts.iter().min() {
                diags.push(Diag::at(
                    Code::StaticUnreachable,
                    first as usize,
                    format!(
                        "function `{}` in {} can never be invoked",
                        d.name, units[u].origin
                    ),
                ));
            }
        } else {
            for &s in &d.stmts {
                let entry = d.cfg.stmt_entry[&s];
                if !d.block_reach[entry] && !d.funcdecl_stmts.contains(&s) {
                    reports[u].unreachable.insert(s);
                    diags.push(Diag::at(
                        Code::StaticUnreachable,
                        s as usize,
                        format!("statement {s} in {} can never execute", units[u].origin),
                    ));
                }
            }
        }
    }

    // WP0101 + WP0102 run per reachable scope.
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        for (s, v) in maybe_uninit(d, nvars) {
            let name = vars.name(v).to_owned();
            diags.push(Diag::at(
                Code::MaybeUndef,
                s as usize,
                format!(
                    "variable `{name}` in {} may be read before initialization",
                    units[u].origin
                ),
            ));
            reports[u].maybe_undef.insert((s, name));
        }
        for (s, v) in dead_stores(d, nvars) {
            let name = vars.name(v).to_owned();
            diags.push(Diag::at(
                Code::StaticDeadStore,
                s as usize,
                format!("store to `{name}` in {} is never read", units[u].origin),
            ));
            reports[u].dead_stores.insert((s, name));
        }
    }

    // WP0104: interprocedural demand slice from effect sinks.
    let relevant = demand_slice(units, &scopes, &index, &reach, &at, nvars);
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        for &s in &d.stmts {
            if relevant.contains(&(u, s))
                || reports[u].unreachable.contains(&s)
                || d.funcdecl_stmts.contains(&s)
                || d.loopctl_stmts.contains(&s)
            {
                continue;
            }
            reports[u].wasted.insert(s);
            diags.push(Diag::at(
                Code::StaticWasted,
                s as usize,
                format!(
                    "statement {s} in {} cannot affect pixels, timers, or network",
                    units[u].origin
                ),
            ));
        }
    }

    sort_diags(&mut diags);
    ProgramAnalysis {
        units: reports,
        diags,
    }
}

/// Collects the whole-program function-declaration map and the set of all
/// declared names (used to detect shadowed host globals).
fn collect_decls(units: &[Unit]) -> (HashMap<String, Vec<ScopeRef>>, HashSet<String>) {
    fn walk(
        body: &[Stmt],
        unit: usize,
        map: &mut HashMap<String, Vec<ScopeRef>>,
        declared: &mut HashSet<String>,
    ) {
        for s in body {
            match s {
                Stmt::FuncDecl(name, idx) => {
                    map.entry(name.clone()).or_default().push(ScopeRef {
                        unit,
                        func: Some(*idx as usize),
                    });
                    declared.insert(name.clone());
                }
                Stmt::Decl(name, _) => {
                    declared.insert(name.clone());
                }
                Stmt::If(_, t, e) => {
                    walk(t, unit, map, declared);
                    walk(e, unit, map, declared);
                }
                Stmt::While(_, b) => walk(b, unit, map, declared),
                Stmt::For(init, _, _, b) => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(&**i), unit, map, declared);
                    }
                    walk(b, unit, map, declared);
                }
                _ => {}
            }
        }
    }
    let mut map = HashMap::new();
    let mut declared = HashSet::new();
    for (u, unit) in units.iter().enumerate() {
        walk(&unit.script.body, u, &mut map, &mut declared);
        for def in &unit.script.funcs {
            walk(&def.body, u, &mut map, &mut declared);
            for p in &def.params {
                declared.insert(p.clone());
            }
        }
    }
    (map, declared)
}

/// Walks a scope body collecting statement ids, declaration sets, and the
/// statement-kind sets the clients need.
fn walk_meta(body: &[Stmt], nodes: &[StmtNode], d: &mut ScopeData, vars: &mut Interner) {
    for (s, n) in body.iter().zip(nodes) {
        d.stmts.push(n.id);
        match s {
            Stmt::Decl(name, _) => {
                let v = vars.intern(name);
                d.decl_vars.insert(v);
                d.locals.insert(v);
            }
            Stmt::FuncDecl(name, _) => {
                d.locals.insert(vars.intern(name));
                d.funcdecl_stmts.insert(n.id);
            }
            Stmt::Return(_) => {
                d.return_stmts.insert(n.id);
            }
            Stmt::Break | Stmt::Continue => {
                d.loopctl_stmts.insert(n.id);
            }
            Stmt::If(_, t, e) => {
                walk_meta(t, &n.blocks[0], d, vars);
                walk_meta(e, &n.blocks[1], d, vars);
            }
            Stmt::While(_, b) => walk_meta(b, &n.blocks[0], d, vars),
            Stmt::For(init, _, _, b) => {
                if let Some(i) = init {
                    walk_meta(std::slice::from_ref(&**i), &n.blocks[0], d, vars);
                }
                walk_meta(b, &n.blocks[1], d, vars);
            }
            _ => {}
        }
    }
}

/// Escape analysis: a function's local is *private* when no function
/// lexically nested inside it mentions the name; a top-level variable is
/// private when no other scope anywhere mentions it. Only private locals
/// are eligible for dead-store claims — everything else may be read by
/// code the intra-scope analysis cannot see.
fn compute_private(scopes: &mut [ScopeData]) {
    let mentions: Vec<ScopeMentions> = scopes
        .iter()
        .map(|d| (d.scope.unit, d.span, d.mentions.clone()))
        .collect();
    for (i, d) in scopes.iter_mut().enumerate() {
        let mut private = d.locals.clone();
        match d.span {
            Some((off, len)) => {
                for (unit, span, m) in &mentions {
                    if *unit != d.scope.unit {
                        continue;
                    }
                    let Some((o2, l2)) = span else { continue };
                    if *o2 > off && o2 + l2 <= off + len {
                        private.retain(|v| !m.contains(v));
                    }
                }
            }
            None => {
                for (j, (_, _, m)) in mentions.iter().enumerate() {
                    if j != i {
                        private.retain(|v| !m.contains(v));
                    }
                }
            }
        }
        d.private = private;
    }
}

/// Scope reachability: unit top levels are roots; a reachable scope makes
/// its directly-called functions reachable, and any function whose value
/// it takes (`UseFun`) reachable too — the host (timers, handlers) or an
/// unknown call may invoke an address-taken function later.
fn scope_reachability(
    scopes: &[ScopeData],
    index: &HashMap<ScopeRef, usize>,
    _units: usize,
) -> Vec<bool> {
    let mut reach = vec![false; scopes.len()];
    let mut work: Vec<usize> = Vec::new();
    for (i, d) in scopes.iter().enumerate() {
        if d.scope.func.is_none() {
            reach[i] = true;
            work.push(i);
        }
    }
    while let Some(i) = work.pop() {
        for blk in &scopes[i].cfg.blocks {
            for op in &blk.ops {
                let targets: Vec<ScopeRef> = match &op.kind {
                    OpKind::Call(CallTarget::Known(ts)) => ts.clone(),
                    OpKind::UseFun(t) => vec![*t],
                    _ => Vec::new(),
                };
                for t in targets {
                    let j = index[&t];
                    if !reach[j] {
                        reach[j] = true;
                        work.push(j);
                    }
                }
            }
        }
    }
    reach
}

/// Blocks reachable from the CFG entry.
fn block_reachability(cfg: &Cfg) -> Vec<bool> {
    let mut seen = vec![false; cfg.blocks.len()];
    let mut work = vec![cfg.entry];
    seen[cfg.entry] = true;
    while let Some(b) = work.pop() {
        for &s in &cfg.blocks[b].succs {
            if !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
    }
    seen
}

/// Functions whose address is taken anywhere in reachable code.
fn address_taken(
    scopes: &[ScopeData],
    index: &HashMap<ScopeRef, usize>,
    reach: &[bool],
) -> BTreeSet<usize> {
    let mut at = BTreeSet::new();
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        for blk in &d.cfg.blocks {
            for op in &blk.ops {
                if let OpKind::UseFun(t) = &op.kind {
                    at.insert(index[t]);
                }
            }
        }
    }
    at
}

// ---------------------------------------------------------------------
// WP0101: may-be-uninitialized (forward).
// ---------------------------------------------------------------------

struct MaybeUninit<'a> {
    d: &'a ScopeData,
    nvars: usize,
}

impl MaybeUninit<'_> {
    /// Applies one op to a may-be-uninitialized fact.
    fn step(&self, fact: &mut BitSet, op: &Op) {
        match &op.kind {
            OpKind::WriteVar(v, _) => fact.remove(*v),
            OpKind::Call(_) | OpKind::UseFun(_) => {
                // A call can run a nested closure, which may initialize
                // any escaping local.
                for &v in &self.d.locals {
                    if !self.d.private.contains(&v) {
                        fact.remove(v);
                    }
                }
            }
            _ => {}
        }
    }
}

impl DataflowAnalysis for MaybeUninit<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn boundary(&self) -> BitSet {
        let mut b = BitSet::new(self.nvars);
        for &v in &self.d.decl_vars {
            b.insert(v);
        }
        b
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.union_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        for op in &cfg.blocks[block].ops {
            self.step(&mut f, op);
        }
        f
    }
}

fn maybe_uninit(d: &ScopeData, nvars: usize) -> BTreeSet<(u32, VarId)> {
    let analysis = MaybeUninit { d, nvars };
    let facts = solve(&analysis, &d.cfg);
    let mut found = BTreeSet::new();
    for (b, blk) in d.cfg.blocks.iter().enumerate() {
        if !d.block_reach[b] {
            continue;
        }
        let mut fact = facts[b].clone();
        for op in &blk.ops {
            if let OpKind::ReadVar(v) = &op.kind {
                if fact.contains(*v) && d.decl_vars.contains(v) {
                    found.insert((op.stmt, *v));
                }
            }
            analysis.step(&mut fact, op);
        }
    }
    found
}

// ---------------------------------------------------------------------
// WP0102: dead stores (backward liveness over private locals).
// ---------------------------------------------------------------------

struct Liveness<'a> {
    d: &'a ScopeData,
    nvars: usize,
}

impl DataflowAnalysis for Liveness<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    /// Private locals are dead at scope exit — that is what makes them
    /// claimable; everything else is never tracked here (calls, closures,
    /// and other units keep non-private variables conservatively live by
    /// exclusion from the claim set).
    fn boundary(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.union_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        for op in cfg.blocks[block].ops.iter().rev() {
            match &op.kind {
                OpKind::ReadVar(v) if self.d.private.contains(v) => {
                    f.insert(*v);
                }
                OpKind::WriteVar(v, _) if self.d.private.contains(v) => {
                    f.remove(*v);
                }
                _ => {}
            }
        }
        f
    }
}

/// Must-be-declared-in-this-scope (forward, intersection join). The
/// interpreter binds a `var` only when its declaration executes; until
/// then, reads and writes of the name resolve through the scope chain to
/// an *outer* binding other code can observe. A store is only claimable
/// as a dead private-local store at points where the name is definitely
/// a local — i.e. every path from scope entry passed a declaration.
struct MustDeclared<'a> {
    d: &'a ScopeData,
    nvars: usize,
}

impl DataflowAnalysis for MustDeclared<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> BitSet {
        // Must-analysis: unvisited paths constrain nothing.
        BitSet::full(self.nvars)
    }

    fn boundary(&self) -> BitSet {
        let mut b = BitSet::new(self.nvars);
        for &v in &self.d.params {
            b.insert(v);
        }
        b
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.intersect_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        for op in &cfg.blocks[block].ops {
            if let OpKind::WriteVar(v, true) = &op.kind {
                f.insert(*v);
            }
        }
        f
    }
}

/// For each block, a vec parallel to its ops: `true` at a `WriteVar`
/// that definitely hits a binding of this scope (the op declares the
/// name, or every path here already declared it). A unit's top level
/// runs directly in the global scope, so every toplevel write lands on
/// the same binding and the gate is vacuous there.
fn declared_writes(d: &ScopeData, nvars: usize) -> Vec<Vec<bool>> {
    if d.scope.func.is_none() {
        return d
            .cfg
            .blocks
            .iter()
            .map(|blk| vec![true; blk.ops.len()])
            .collect();
    }
    let facts = solve(&MustDeclared { d, nvars }, &d.cfg);
    d.cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(b, blk)| {
            let mut fact = facts[b].clone();
            blk.ops
                .iter()
                .map(|op| match &op.kind {
                    OpKind::WriteVar(v, decl) => {
                        let ok = *decl || fact.contains(*v);
                        if *decl {
                            fact.insert(*v);
                        }
                        ok
                    }
                    _ => false,
                })
                .collect()
        })
        .collect()
}

fn dead_stores(d: &ScopeData, nvars: usize) -> BTreeSet<(u32, VarId)> {
    let analysis = Liveness { d, nvars };
    let facts = solve(&analysis, &d.cfg);
    let declared = declared_writes(d, nvars);
    let mut dead: BTreeSet<(u32, VarId)> = BTreeSet::new();
    let mut alive: BTreeSet<(u32, VarId)> = BTreeSet::new();
    let mut tainted: BTreeSet<(u32, VarId)> = BTreeSet::new();
    for (b, blk) in d.cfg.blocks.iter().enumerate() {
        if !d.block_reach[b] {
            continue;
        }
        let mut fact = facts[b].clone();
        for (i, op) in blk.ops.iter().enumerate().rev() {
            match &op.kind {
                OpKind::ReadVar(v) if d.private.contains(v) => {
                    fact.insert(*v);
                }
                OpKind::WriteVar(v, _) if d.private.contains(v) => {
                    if !declared[b][i] {
                        // May write an outer binding the liveness lattice
                        // cannot see; never claimable, and not a kill of
                        // the local either.
                        tainted.insert((op.stmt, *v));
                        continue;
                    }
                    if d.funcdecl_stmts.contains(&op.stmt) {
                        // Hoisted function definitions are WP0103's
                        // concern, not dead stores.
                    } else if fact.contains(*v) {
                        alive.insert((op.stmt, *v));
                    } else {
                        dead.insert((op.stmt, *v));
                    }
                    fact.remove(*v);
                }
                _ => {}
            }
        }
    }
    dead.retain(|k| !alive.contains(k) && !tainted.contains(k));
    dead
}

// ---------------------------------------------------------------------
// WP0104: interprocedural backward demand slice.
// ---------------------------------------------------------------------

/// Transitive may-effects of one scope (plus everything it calls).
#[derive(Clone, Default, PartialEq)]
struct EffectSummary {
    sink: bool,
    writes_vars: BitSet,
    writes_exact: BTreeSet<(VarId, String)>,
    writes_any_prop: BTreeSet<String>,
    writes_base_all: BTreeSet<VarId>,
    writes_dyn_any: bool,
}

impl EffectSummary {
    fn absorb(&mut self, other: &EffectSummary) -> bool {
        let mut grew = false;
        if other.sink && !self.sink {
            self.sink = true;
            grew = true;
        }
        grew |= self.writes_vars.union_with(&other.writes_vars);
        for k in &other.writes_exact {
            grew |= self.writes_exact.insert(k.clone());
        }
        for p in &other.writes_any_prop {
            grew |= self.writes_any_prop.insert(p.clone());
        }
        for b in &other.writes_base_all {
            grew |= self.writes_base_all.insert(*b);
        }
        if other.writes_dyn_any && !self.writes_dyn_any {
            self.writes_dyn_any = true;
            grew = true;
        }
        grew
    }
}

/// The demanded-property accumulator: which property slots the slice
/// needs, in decreasing precision (exact `(base, prop)` pairs, a prop of
/// an unknown base, every prop of a base, everything).
#[derive(Clone, Default, PartialEq)]
struct PropDemand {
    exact: BTreeSet<(VarId, String)>,
    any_prop: BTreeSet<String>,
    base_all: BTreeSet<VarId>,
    global_all: bool,
}

impl PropDemand {
    fn demand_read(&mut self, key: &PropKey) {
        match key.base {
            Some(b) => {
                self.exact.insert((b, key.prop.clone()));
            }
            None => {
                self.any_prop.insert(key.prop.clone());
            }
        }
    }

    fn is_empty(&self) -> bool {
        !self.global_all
            && self.exact.is_empty()
            && self.any_prop.is_empty()
            && self.base_all.is_empty()
    }

    /// May a write of `key` satisfy some demanded read?
    fn write_matches(&self, key: &PropKey) -> bool {
        if self.global_all || self.any_prop.contains(&key.prop) {
            return true;
        }
        match key.base {
            Some(b) => self.base_all.contains(&b) || self.exact.contains(&(b, key.prop.clone())),
            // Unknown receiver: it may alias any object with this prop
            // demanded, or any object demanded wholesale.
            None => !self.base_all.is_empty() || self.exact.iter().any(|(_, p)| *p == key.prop),
        }
    }

    /// May a computed-key write into `base` satisfy some demanded read?
    fn dyn_write_matches(&self, base: Option<VarId>) -> bool {
        if self.global_all {
            return true;
        }
        match base {
            Some(b) => {
                self.base_all.contains(&b)
                    || !self.any_prop.is_empty()
                    || self.exact.iter().any(|(eb, _)| *eb == b)
            }
            None => !self.is_empty(),
        }
    }
}

/// State frozen for one round of the outer slice fixpoint.
struct FrozenCtx<'a> {
    relevant: &'a HashSet<(usize, u32)>,
    props: &'a PropDemand,
    sums: &'a [EffectSummary],
    unknown: &'a EffectSummary,
    index: &'a HashMap<ScopeRef, usize>,
}

impl FrozenCtx<'_> {
    fn may_sink(&self, t: &ScopeRef) -> bool {
        self.sums[self.index[t]].sink
    }

    fn sum_relevant(&self, s: &EffectSummary, fact: &BitSet) -> bool {
        s.sink
            || s.writes_vars.iter().any(|v| fact.contains(v))
            || s.writes_exact.iter().any(|(b, p)| {
                self.props.write_matches(&PropKey {
                    base: Some(*b),
                    prop: p.clone(),
                })
            })
            || s.writes_any_prop.iter().any(|p| {
                self.props.write_matches(&PropKey {
                    base: None,
                    prop: p.clone(),
                })
            })
            || s.writes_base_all
                .iter()
                .any(|b| self.props.dyn_write_matches(Some(*b)))
            || (s.writes_dyn_any && !self.props.is_empty())
    }

    fn call_relevant(&self, t: &CallTarget, fact: &BitSet) -> bool {
        match t {
            CallTarget::Known(ts) => ts
                .iter()
                .any(|t| self.sum_relevant(&self.sums[self.index[t]], fact)),
            CallTarget::Unknown => self.sum_relevant(self.unknown, fact),
        }
    }
}

/// New facts discovered while collecting one round.
#[derive(Default)]
struct RoundAcc {
    relevant: HashSet<(usize, u32)>,
    props: PropDemand,
}

/// Applies one block's ops (in reverse evaluation order) to a demand
/// fact. Within a statement, writes and sinks lower *after* the reads
/// that feed them, so a sink/write marks its statement before its reads
/// are visited and the reads generate demand in the same pass. New
/// relevance and property demand flow into `acc` when provided (the
/// collection pass); the pure solve sees only frozen state.
fn demand_block(
    unit: usize,
    ops: &[Op],
    fact: &mut BitSet,
    fz: &FrozenCtx<'_>,
    mut acc: Option<&mut RoundAcc>,
) {
    let mut marked: HashSet<u32> = HashSet::new();
    for op in ops.iter().rev() {
        let rel = fz.relevant.contains(&(unit, op.stmt)) || marked.contains(&op.stmt);
        let mut mark = false;
        match &op.kind {
            OpKind::Sink => mark = true,
            OpKind::WriteVar(v, _) => {
                if fact.contains(*v) {
                    mark = true;
                    fact.remove(*v);
                }
            }
            OpKind::ReadVar(v) => {
                if rel {
                    fact.insert(*v);
                }
            }
            OpKind::ReadProp(key) => {
                if rel {
                    if let Some(acc) = acc.as_deref_mut() {
                        acc.props.demand_read(key);
                    }
                }
            }
            OpKind::DynRead(base) => {
                if rel {
                    if let Some(acc) = acc.as_deref_mut() {
                        match base {
                            Some(b) => {
                                acc.props.base_all.insert(*b);
                            }
                            None => acc.props.global_all = true,
                        }
                    }
                }
            }
            OpKind::WriteProp(key) => {
                if fz.props.write_matches(key) {
                    mark = true;
                }
            }
            OpKind::DynWrite(base) => {
                if fz.props.dyn_write_matches(*base) {
                    mark = true;
                }
            }
            OpKind::Call(t) => {
                if fz.call_relevant(t, fact) {
                    mark = true;
                }
            }
            OpKind::UseFun(t) => {
                if fz.may_sink(t) {
                    mark = true;
                }
            }
            OpKind::Return => {}
        }
        if mark {
            marked.insert(op.stmt);
            if let Some(acc) = acc.as_deref_mut() {
                acc.relevant.insert((unit, op.stmt));
            }
        }
    }
}

struct DemandAnalysis<'a> {
    unit: usize,
    fz: &'a FrozenCtx<'a>,
    boundary: BitSet,
    nvars: usize,
}

impl DataflowAnalysis for DemandAnalysis<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn boundary(&self) -> BitSet {
        self.boundary.clone()
    }

    fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut j = a.clone();
        j.union_with(b);
        j
    }

    fn transfer(&self, cfg: &Cfg, block: usize, fact: &BitSet) -> BitSet {
        let mut f = fact.clone();
        demand_block(self.unit, &cfg.blocks[block].ops, &mut f, self.fz, None);
        f
    }
}

/// Computes the relevant-statement set: the outer fixpoint over per-scope
/// backward demand solves, property-demand accumulation, cross-scope
/// demanded globals, and the structural closures (ancestors, call and
/// definition sites of active scopes, relevant returns). Everything
/// reachable but not in this set is statically wasted.
fn demand_slice(
    units: &[Unit],
    scopes: &[ScopeData],
    index: &HashMap<ScopeRef, usize>,
    reach: &[bool],
    at: &BTreeSet<usize>,
    nvars: usize,
) -> HashSet<(usize, u32)> {
    // Per-scope transitive effect summaries (own fixpoint).
    let direct: Vec<EffectSummary> = scopes
        .iter()
        .map(|d| {
            let mut s = EffectSummary {
                writes_vars: BitSet::new(nvars),
                ..EffectSummary::default()
            };
            for blk in &d.cfg.blocks {
                for op in &blk.ops {
                    match &op.kind {
                        OpKind::Sink => s.sink = true,
                        OpKind::WriteVar(v, _) if !d.private.contains(v) => {
                            s.writes_vars.insert(*v);
                        }
                        OpKind::WriteProp(PropKey {
                            base: Some(b),
                            prop,
                        }) => {
                            s.writes_exact.insert((*b, prop.clone()));
                        }
                        OpKind::WriteProp(PropKey { base: None, prop }) => {
                            s.writes_any_prop.insert(prop.clone());
                        }
                        OpKind::DynWrite(Some(b)) => {
                            s.writes_base_all.insert(*b);
                        }
                        OpKind::DynWrite(None) => s.writes_dyn_any = true,
                        _ => {}
                    }
                }
            }
            s
        })
        .collect();
    let call_targets: Vec<Vec<CallTarget>> = scopes
        .iter()
        .map(|d| {
            let mut ts = Vec::new();
            for blk in &d.cfg.blocks {
                for op in &blk.ops {
                    if let OpKind::Call(t) = &op.kind {
                        ts.push(t.clone());
                    }
                }
            }
            ts
        })
        .collect();
    let mut sums = direct.clone();
    loop {
        let mut unknown = EffectSummary {
            writes_vars: BitSet::new(nvars),
            ..EffectSummary::default()
        };
        for &i in at {
            unknown.absorb(&sums[i]);
        }
        let mut changed = false;
        for i in 0..scopes.len() {
            if !reach[i] {
                continue;
            }
            let mut next = direct[i].clone();
            for t in &call_targets[i] {
                match t {
                    CallTarget::Known(ts) => {
                        for t in ts {
                            let other = sums[index[t]].clone();
                            next.absorb(&other);
                        }
                    }
                    CallTarget::Unknown => {
                        next.absorb(&unknown);
                    }
                }
            }
            if next != sums[i] {
                sums[i] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut unknown = EffectSummary {
        writes_vars: BitSet::new(nvars),
        ..EffectSummary::default()
    };
    for &i in at {
        unknown.absorb(&sums[i]);
    }

    // Structural indices for the closures.
    let parent = parent_maps(units);
    let decl_sites = funcdecl_sites(units, index);
    let mut use_sites: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    let mut known_call_sites: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    let mut unknown_call_sites: Vec<(usize, u32)> = Vec::new();
    let mut call_ops: Vec<(usize, u32, CallTarget)> = Vec::new();
    for (i, d) in scopes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let u = d.scope.unit;
        for blk in &d.cfg.blocks {
            for op in &blk.ops {
                match &op.kind {
                    OpKind::UseFun(t) => use_sites.entry(index[t]).or_default().push((u, op.stmt)),
                    OpKind::Call(t) => {
                        call_ops.push((u, op.stmt, t.clone()));
                        match t {
                            CallTarget::Known(ts) => {
                                for t in ts {
                                    known_call_sites
                                        .entry(index[t])
                                        .or_default()
                                        .push((u, op.stmt));
                                }
                            }
                            CallTarget::Unknown => unknown_call_sites.push((u, op.stmt)),
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    let mut relevant: HashSet<(usize, u32)> = HashSet::new();
    let mut props = PropDemand::default();
    let mut globals = BitSet::new(nvars);
    loop {
        let mut acc = RoundAcc {
            relevant: relevant.clone(),
            props: props.clone(),
        };
        let mut next_globals = globals.clone();
        for (i, d) in scopes.iter().enumerate() {
            if !reach[i] {
                continue;
            }
            let fz = FrozenCtx {
                relevant: &relevant,
                props: &props,
                sums: &sums,
                unknown: &unknown,
                index,
            };
            let mut boundary = globals.clone();
            for &v in &d.locals {
                if !d.private.contains(&v) {
                    boundary.insert(v);
                }
            }
            let analysis = DemandAnalysis {
                unit: d.scope.unit,
                fz: &fz,
                boundary,
                nvars,
            };
            let facts = solve(&analysis, &d.cfg);
            for (b, blk) in d.cfg.blocks.iter().enumerate() {
                let mut fact = facts[b].clone();
                demand_block(d.scope.unit, &blk.ops, &mut fact, &fz, Some(&mut acc));
            }
            // Demand at scope entry for anything not provably scope-local
            // must be met by writes elsewhere: it becomes a global demand.
            let mut entry = facts[d.cfg.entry].clone();
            demand_block(
                d.scope.unit,
                &d.cfg.blocks[d.cfg.entry].ops,
                &mut entry,
                &fz,
                None,
            );
            for v in entry.iter() {
                if !d.private.contains(&v) {
                    next_globals.insert(v);
                }
            }
        }

        // Structural closures, iterated to a (cheap) local fixpoint.
        loop {
            let before = acc.relevant.len();
            // A relevant statement keeps its enclosing statements.
            let snapshot: Vec<(usize, u32)> = acc.relevant.iter().copied().collect();
            for (u, s) in snapshot {
                let mut cur = s;
                while let Some(&p) = parent[u].get(&cur) {
                    acc.relevant.insert((u, p));
                    cur = p;
                }
            }
            // A scope with relevant work keeps its declarations, value
            // uses, call sites, and its own returns (early exits gate
            // whether the relevant work runs).
            for (i, d) in scopes.iter().enumerate() {
                if !reach[i] || d.scope.func.is_none() {
                    continue;
                }
                let active = d
                    .stmts
                    .iter()
                    .any(|s| acc.relevant.contains(&(d.scope.unit, *s)));
                if !active {
                    continue;
                }
                for site in decl_sites.get(&i).into_iter().flatten() {
                    acc.relevant.insert(*site);
                }
                for site in use_sites.get(&i).into_iter().flatten() {
                    acc.relevant.insert(*site);
                }
                for site in known_call_sites.get(&i).into_iter().flatten() {
                    acc.relevant.insert(*site);
                }
                if at.contains(&i) {
                    for site in &unknown_call_sites {
                        acc.relevant.insert(*site);
                    }
                }
            }
            for (i, d) in scopes.iter().enumerate() {
                if !reach[i] {
                    continue;
                }
                let active = d
                    .stmts
                    .iter()
                    .any(|s| acc.relevant.contains(&(d.scope.unit, *s)));
                if active {
                    for &r in &d.return_stmts {
                        acc.relevant.insert((d.scope.unit, r));
                    }
                }
            }
            // A relevant call site needs its callees' return values.
            for (u, s, t) in &call_ops {
                if !acc.relevant.contains(&(*u, *s)) {
                    continue;
                }
                let callees: Vec<usize> = match t {
                    CallTarget::Known(ts) => ts.iter().map(|t| index[t]).collect(),
                    CallTarget::Unknown => at.iter().copied().collect(),
                };
                for j in callees {
                    for &r in &scopes[j].return_stmts {
                        acc.relevant.insert((scopes[j].scope.unit, r));
                    }
                }
            }
            if acc.relevant.len() == before {
                break;
            }
        }

        let stable = acc.relevant == relevant && acc.props == props && next_globals == globals;
        relevant = acc.relevant;
        props = acc.props;
        globals = next_globals;
        if stable {
            break;
        }
    }
    relevant
}

/// Per function scope index, the statements that declare it
/// (`function f() {}` statements anywhere in the program).
fn funcdecl_sites(
    units: &[Unit],
    index: &HashMap<ScopeRef, usize>,
) -> HashMap<usize, Vec<(usize, u32)>> {
    fn walk(
        body: &[Stmt],
        nodes: &[StmtNode],
        unit: usize,
        index: &HashMap<ScopeRef, usize>,
        out: &mut HashMap<usize, Vec<(usize, u32)>>,
    ) {
        for (s, n) in body.iter().zip(nodes) {
            match s {
                Stmt::FuncDecl(_, idx) => {
                    let scope = ScopeRef {
                        unit,
                        func: Some(*idx as usize),
                    };
                    out.entry(index[&scope]).or_default().push((unit, n.id));
                }
                Stmt::If(_, t, e) => {
                    walk(t, &n.blocks[0], unit, index, out);
                    walk(e, &n.blocks[1], unit, index, out);
                }
                Stmt::While(_, b) => walk(b, &n.blocks[0], unit, index, out),
                Stmt::For(init, _, _, b) => {
                    if let Some(i) = init {
                        walk(std::slice::from_ref(&**i), &n.blocks[0], unit, index, out);
                    }
                    walk(b, &n.blocks[1], unit, index, out);
                }
                _ => {}
            }
        }
    }
    let mut out = HashMap::new();
    for (u, unit) in units.iter().enumerate() {
        walk(&unit.script.body, &unit.numbering.top, u, index, &mut out);
        for (f, def) in unit.script.funcs.iter().enumerate() {
            walk(&def.body, &unit.numbering.funcs[f], u, index, &mut out);
        }
    }
    out
}

/// Parent statement maps per unit: child stmt id → enclosing stmt id.
fn parent_maps(units: &[Unit]) -> Vec<HashMap<u32, u32>> {
    fn walk(nodes: &[StmtNode], parent: Option<u32>, map: &mut HashMap<u32, u32>) {
        for n in nodes {
            if let Some(p) = parent {
                map.insert(n.id, p);
            }
            for blk in &n.blocks {
                walk(blk, Some(n.id), map);
            }
        }
    }
    units
        .iter()
        .map(|u| {
            let mut map = HashMap::new();
            walk(&u.numbering.top, None, &mut map);
            for f in &u.numbering.funcs {
                walk(f, None, &mut map);
            }
            map
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> ProgramAnalysis {
        analyze_sources(&[("test.js".to_owned(), src.to_owned())]).unwrap()
    }

    #[test]
    fn overwritten_store_to_private_var_is_dead() {
        let a = analyze("var x = 1; x = 2; document.getElementById('a').textContent = x;");
        let u = &a.units[0];
        assert!(u.dead_stores.contains(&(0, "x".to_owned())));
        assert!(!u.dead_stores.contains(&(1, "x".to_owned())));
    }

    #[test]
    fn escaping_vars_are_never_claimed_dead() {
        // `x` is read by a function the host may invoke later.
        let a = analyze(
            "var x = 1; x = 2; \
             window.setTimeout(function () { document.title = x; }, 0);",
        );
        assert!(a.units[0].dead_stores.is_empty());
    }

    #[test]
    fn unreferenced_function_and_const_false_branch_are_unreachable() {
        let a = analyze(
            "function used() { return 1; } \
             function unused() { var q = 7; return q; } \
             if (false) { var z = 1; } \
             document.title = used();",
        );
        let u = &a.units[0];
        // Numbering: top level is 0..=4, `used` body is {5}, `unused`
        // body is {6, 7}.
        assert!(u.unreachable.contains(&6));
        assert!(u.unreachable.contains(&7));
        // `used` body (stmt 5) is reachable through the call.
        assert!(!u.unreachable.contains(&5));
        // The folded `if (false)` arm: `var z` never executes.
        let z_diag = a
            .diags
            .iter()
            .any(|d| d.code == Code::StaticUnreachable && d.message.contains("never execute"));
        assert!(z_diag);
        assert!(u.unreachable.contains(&3), "var z in the folded branch");
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let a = analyze("function f() { return 1; var t = 2; } document.title = f();");
        assert!(a.units[0].unreachable.contains(&3), "stmt after return");
    }

    #[test]
    fn console_only_work_is_outside_the_slice() {
        let a = analyze(
            "var a = 1; var b = a + 1; \
             document.getElementById('x').textContent = b; \
             var w = 5; console.log(w);",
        );
        let u = &a.units[0];
        assert!(u.wasted.contains(&3), "var w feeds only console");
        assert!(u.wasted.contains(&4), "console.log is not a sink");
        assert!(!u.wasted.contains(&0), "a feeds the DOM write");
        assert!(!u.wasted.contains(&1), "b feeds the DOM write");
        assert!(!u.wasted.contains(&2), "the DOM write itself");
    }

    #[test]
    fn slice_follows_values_through_calls() {
        let a = analyze(
            "function add(a, b) { return a + b; } \
             var s = add(1, 2); document.title = s;",
        );
        let u = &a.units[0];
        assert!(
            u.wasted.is_empty(),
            "everything feeds the title: {:?}",
            u.wasted
        );
    }

    #[test]
    fn unread_property_writes_are_wasted() {
        // `state.model` is written but never read; `state.count` feeds
        // the DOM. Base-sensitive keys keep them apart.
        let a = analyze(
            "var state = { count: 0, model: 0 }; \
             state.model = 42; \
             state.count = 1; \
             document.title = state.count;",
        );
        let u = &a.units[0];
        assert!(
            u.wasted.contains(&1),
            "model write is wasted: {:?}",
            u.wasted
        );
        assert!(!u.wasted.contains(&2), "count write is in the slice");
    }

    #[test]
    fn use_before_declaration_may_be_undefined() {
        let a = analyze("var q = r + 1; var r = 2; document.title = q + r;");
        assert!(a.units[0].maybe_undef.contains(&(0, "r".to_owned())));
    }

    #[test]
    fn loops_carrying_values_to_sinks_stay_relevant() {
        let a = analyze(
            "var sum = 0; \
             for (var i = 0; i < 3; i += 1) { sum += i; } \
             document.title = sum;",
        );
        let u = &a.units[0];
        assert!(u.wasted.is_empty(), "loop feeds the sink: {:?}", u.wasted);
        assert!(u.unreachable.is_empty());
    }

    #[test]
    fn analysis_is_deterministic() {
        let src = "var a = 1; function f(x) { return x + a; } \
                   var unused_acc = 0; \
                   for (var i = 0; i < 4; i += 1) { unused_acc += i; } \
                   document.getElementById('n').textContent = f(2); \
                   console.log(unused_acc);";
        let a1 = analyze(src);
        let a2 = analyze(src);
        assert_eq!(a1.units[0].wasted, a2.units[0].wasted);
        assert_eq!(a1.units[0].dead_stores, a2.units[0].dead_stores);
        assert_eq!(
            wasteprof_checker::render_json(&a1.diags),
            wasteprof_checker::render_json(&a2.diags)
        );
    }

    #[test]
    fn parse_errors_name_the_unit() {
        let err = analyze_sources(&[("bad.js".to_owned(), "var = ;".to_owned())]).unwrap_err();
        assert!(err.starts_with("bad.js:"), "{err}");
    }
}
