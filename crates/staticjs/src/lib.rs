#![forbid(unsafe_code)]

//! Ahead-of-time static waste analyzer for the wasteprof JS workloads.
//!
//! The dynamic pipeline (trace → backward slice) measures unnecessary
//! computation *after the fact*; this crate asks how much of it a purely
//! static analysis could have predicted from source alone, reproducing
//! the paper's observation that much of the waste (unused libraries,
//! analytics-only work, speculative precomputation) is visible before a
//! single instruction runs.
//!
//! The pipeline:
//!
//! 1. [`mod@cfg`] lowers every scope of every script to a CFG of basic blocks
//!    whose contents are dataflow ops, with call sites as opaque
//!    may-effect nodes resolved through a conservative builtin effect
//!    table for the DOM/timer/console/network intrinsics.
//! 2. [`callgraph`] runs a flow-insensitive function-value analysis over
//!    the raw ASTs (variables, closures, object properties, callback
//!    registrations) and condenses the resulting call graph into SCCs;
//!    [`summaries`] then computes bottom-up effect/read-write summaries
//!    per function to a fixpoint over those SCCs.
//! 3. [`solver`] is a generic join-lattice worklist solver
//!    (forward/backward), shared by all clients.
//! 4. [`analyses`] runs the six clients — possibly-undefined use
//!    (`WP0101`), dead stores (`WP0102`), unreachable code (`WP0103`),
//!    the backward static slice from effect sinks (`WP0104`), useless
//!    calls to effect-free functions (`WP0105`), and uncallable
//!    functions (`WP0106`) — and renders findings through the checker's
//!    [`wasteprof_checker::Diag`] machinery. Calls resolve through the
//!    summaries instead of a single conservative "unknown call" node.
//! 5. [`referee`] scores the predictions against the interpreter's
//!    execution witness and the dynamic slice, reporting per-analysis
//!    precision/recall and (for the must-be-sound claims) violations.

#![warn(missing_docs)]

pub mod analyses;
pub mod callgraph;
pub mod cfg;
pub mod referee;
pub mod solver;
pub mod summaries;

pub use analyses::{analyze_sources, FuncReport, ProgramAnalysis, UnitReport};
pub use callgraph::CallGraph;
pub use referee::{compare, Metric, RefereeReport};
pub use summaries::FnSummary;
