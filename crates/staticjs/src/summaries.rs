//! Bottom-up per-function effect/read-write summaries.
//!
//! For every scope the analyses extract a *direct* summary from its CFG
//! ops (sinks, externally-visible variable writes, property writes, free
//! variable reads); [`summarize`] then closes the summaries over the call
//! graph, walking the SCC condensation callees-first ([`CallGraph::sccs`])
//! and iterating within each SCC to its local fixpoint, so a caller's
//! summary is the union of its own effects and those of everything any of
//! its call sites may dispatch.
//!
//! The summaries replace the seed analyzer's single conservative
//! "unknown call = union over every address-taken function" node: a call
//! to a summarized pure function stops polluting the dead-store
//! (`WP0102`) and waste (`WP0104`) clients, and [`FnSummary::pure`] is
//! the foundation of the useless-call claim (`WP0105`).

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::cfg::VarId;
use crate::solver::BitSet;

/// Transitive may-effects and free reads of one scope, plus everything
/// its call sites may dispatch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnSummary {
    /// May reach an externally-observable effect (DOM mutation, timer or
    /// listener registration, network send).
    pub sink: bool,
    /// Variables read where the name is not provably a local binding of
    /// the reading scope at the read point (free reads): these may
    /// resolve to a caller's local or a shared global. For a unit's top
    /// level every read is free — its "locals" are the shared globals.
    pub reads_vars: BitSet,
    /// Externally-visible variable writes (non-private locals, outer
    /// bindings, globals).
    pub writes_vars: BitSet,
    /// Named property writes with a known receiver variable.
    pub writes_exact: BTreeSet<(VarId, String)>,
    /// Named property writes with a compound receiver.
    pub writes_any_prop: BTreeSet<String>,
    /// Computed-key writes into a known receiver variable.
    pub writes_base_all: BTreeSet<VarId>,
    /// Computed-key writes with a compound receiver: may hit anything.
    pub writes_dyn_any: bool,
}

impl FnSummary {
    /// An empty summary sized for `nvars` interned variables.
    #[must_use]
    pub fn new(nvars: usize) -> Self {
        FnSummary {
            reads_vars: BitSet::new(nvars),
            writes_vars: BitSet::new(nvars),
            ..FnSummary::default()
        }
    }

    /// True when calling the function can have no effect any other code
    /// could observe: no sink, and no write that outlives the invocation.
    /// Free *reads* do not break purity — a pure function may read
    /// anything, it just must not change anything.
    #[must_use]
    pub fn pure(&self) -> bool {
        !self.sink
            && !self.writes_dyn_any
            && self.writes_vars.is_empty()
            && self.writes_exact.is_empty()
            && self.writes_any_prop.is_empty()
            && self.writes_base_all.is_empty()
    }

    /// Unions `other` into `self`; returns true when `self` grew.
    pub fn absorb(&mut self, other: &FnSummary) -> bool {
        let mut grew = false;
        if other.sink && !self.sink {
            self.sink = true;
            grew = true;
        }
        grew |= self.reads_vars.union_with(&other.reads_vars);
        grew |= self.writes_vars.union_with(&other.writes_vars);
        for k in &other.writes_exact {
            grew |= self.writes_exact.insert(k.clone());
        }
        for p in &other.writes_any_prop {
            grew |= self.writes_any_prop.insert(p.clone());
        }
        for b in &other.writes_base_all {
            grew |= self.writes_base_all.insert(*b);
        }
        if other.writes_dyn_any && !self.writes_dyn_any {
            self.writes_dyn_any = true;
            grew = true;
        }
        grew
    }
}

/// Closes per-scope direct summaries over the call graph. `direct[i]` is
/// scope `i`'s own effects; the result adds everything reachable through
/// its call sites. Walks [`CallGraph::sccs`] in order (callees first), so
/// every callee outside the current SCC is already final; within an SCC
/// the members iterate to a local fixpoint.
#[must_use]
pub fn summarize(direct: &[FnSummary], cg: &CallGraph) -> Vec<FnSummary> {
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); direct.len()];
    for (&(i, _), cands) in &cg.call_sites {
        callees[i].extend(cands.iter().copied());
    }
    let mut sums = direct.to_vec();
    for comp in &cg.sccs {
        let mut changed = true;
        while changed {
            changed = false;
            for &i in comp {
                let mut cur = std::mem::take(&mut sums[i]);
                for &c in &callees[i] {
                    if c != i {
                        changed |= cur.absorb(&sums[c]);
                    }
                }
                sums[i] = cur;
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(writes: &[usize], sink: bool) -> FnSummary {
        let mut s = FnSummary::new(8);
        s.sink = sink;
        for &w in writes {
            s.writes_vars.insert(w);
        }
        s
    }

    fn graph_of(edges: &[(usize, usize)], n: usize) -> CallGraph {
        // A synthetic call graph: one fake call site per edge.
        let mut cg = CallGraph::default();
        for (s, (i, c)) in edges.iter().enumerate() {
            cg.call_sites.entry((*i, s as u32)).or_default().insert(*c);
        }
        // Tests below never consult scopes/index/reachable, only the
        // condensation, which we can compute through the public builder
        // path in callgraph tests; here a trivial chain order suffices.
        cg.sccs = trivial_sccs(edges, n);
        cg
    }

    /// Kosaraju-free helper for the tiny test graphs: components in
    /// callees-first order, computed by hand per test topology.
    fn trivial_sccs(edges: &[(usize, usize)], n: usize) -> Vec<Vec<usize>> {
        // For the acyclic chain tests, every node is its own component
        // ordered by reverse topological sort (callees first).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| {
            // Depth = longest path out of v; leaves (pure callees) first.
            fn depth(v: usize, edges: &[(usize, usize)], fuel: usize) -> usize {
                if fuel == 0 {
                    return 0;
                }
                edges
                    .iter()
                    .filter(|(i, _)| *i == v)
                    .map(|(_, c)| 1 + depth(*c, edges, fuel - 1))
                    .max()
                    .unwrap_or(0)
            }
            depth(v, edges, n + 1)
        });
        order.into_iter().map(|v| vec![v]).collect()
    }

    #[test]
    fn effects_propagate_up_a_call_chain() {
        // 0 calls 1 calls 2; only 2 sinks and writes var 3.
        let direct = vec![
            summary(&[], false),
            summary(&[], false),
            summary(&[3], true),
        ];
        let cg = graph_of(&[(0, 1), (1, 2)], 3);
        let sums = summarize(&direct, &cg);
        assert!(sums[0].sink && sums[0].writes_vars.contains(3));
        assert!(sums[1].sink);
        assert!(!direct[0].sink, "direct summaries untouched");
    }

    #[test]
    fn pure_functions_stay_pure_through_pure_callees() {
        let direct = vec![summary(&[], false), summary(&[], false)];
        let cg = graph_of(&[(0, 1)], 2);
        let sums = summarize(&direct, &cg);
        assert!(sums[0].pure() && sums[1].pure());
    }

    #[test]
    fn recursive_scc_reaches_its_fixpoint() {
        // 0 and 1 call each other; 1 writes var 5. One SCC holds both.
        let direct = vec![summary(&[], false), summary(&[5], false)];
        let mut cg = CallGraph::default();
        cg.call_sites.entry((0, 0)).or_default().insert(1);
        cg.call_sites.entry((1, 0)).or_default().insert(0);
        cg.sccs = vec![vec![0, 1]];
        let sums = summarize(&direct, &cg);
        assert!(sums[0].writes_vars.contains(5));
        assert!(!sums[0].pure() && !sums[1].pure());
    }

    #[test]
    fn free_reads_accumulate_transitively() {
        let mut leaf = FnSummary::new(8);
        leaf.reads_vars.insert(2);
        let direct = vec![FnSummary::new(8), leaf];
        let cg = graph_of(&[(0, 1)], 2);
        let sums = summarize(&direct, &cg);
        assert!(sums[0].reads_vars.contains(2));
        assert!(sums[0].pure(), "reads do not break purity");
    }
}
