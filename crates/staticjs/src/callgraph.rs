//! Interprocedural call graph: flow-insensitive function-value analysis.
//!
//! The function-value universe of a program is closed — only `function`
//! declarations and function expressions create callable values; the host
//! never returns one — so an Andersen-style inclusion analysis over the
//! AST can compute, for every call site, the complete set of user
//! functions it may dispatch. Values propagate through:
//!
//! * **variables** (name-merged program-wide, matching the interner the
//!   CFG lowering uses — merging only grows candidate sets, so it is
//!   sound);
//! * **named properties** (property-name-merged, receiver-insensitive);
//! * **dynamic slots** (`o[k] = f`, array literals, `push`): one
//!   `AnyProp` pool readable by every property or indexed read;
//! * **returns and parameters** of each function scope;
//! * **the escaped pool**: values reaching `setTimeout`,
//!   `requestAnimationFrame`, or `addEventListener` become
//!   host-invocable roots (the host calls them with no arguments).
//!
//! Method calls on non-host receivers may dispatch a stored function
//! property (the interpreter's `(Value::Obj, _)` arm) — including calls
//! whose *name* matches a DOM sink like `appendChild`, since a plain
//! object can carry any property name. Candidates there are
//! `pts(Prop(name)) ∪ pts(AnyProp)`. Receivers that are unshadowed host
//! globals (`console`, `document`, …) can never be plain objects and
//! never dispatch user code.
//!
//! Propagation is interleaved with reachability: only scopes reachable
//! from the entry points (unit top levels, plus everything the escaped
//! pool makes host-invocable) contribute flows, so a callback registered
//! only by dead code does not resurrect its callee. Both sets grow
//! monotonically, so the combined fixpoint terminates.
//!
//! The result condenses into SCCs (Tarjan), emitted callees-first — the
//! order [`crate::summaries`] consumes for bottom-up effect summaries.

use std::collections::{BTreeSet, HashMap, HashSet};

use wasteprof_js::{Expr, Script, Stmt, StmtNode, Target, UnitNumbering};

use crate::cfg::{ScopeRef, HOST_GLOBALS};

/// Scope index into [`CallGraph::scopes`].
pub type ScopeIdx = usize;

/// The computed call graph and function-value facts.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All scopes: per unit, the top level first, then functions in
    /// table order (the same order the analysis driver lowers them).
    pub scopes: Vec<ScopeRef>,
    /// Scope → index in [`CallGraph::scopes`].
    pub index: HashMap<ScopeRef, ScopeIdx>,
    /// `(caller scope, statement id)` → every user function any call in
    /// that statement may dispatch. Calls sharing a statement merge —
    /// claims are per-statement, so the union stays sound.
    pub call_sites: HashMap<(ScopeIdx, u32), BTreeSet<ScopeIdx>>,
    /// Host-invocable functions (reached `setTimeout` /
    /// `requestAnimationFrame` / `addEventListener` from reachable code).
    pub escaped: BTreeSet<ScopeIdx>,
    /// Scope reachability from the entry points: unit top levels, plus
    /// the escaped pool, closed over call-site candidates.
    pub reachable: Vec<bool>,
    /// Strongly connected components of the call graph, callees before
    /// callers (reverse topological order of the condensation).
    pub sccs: Vec<Vec<ScopeIdx>>,
    /// Scope → its SCC's index in [`CallGraph::sccs`].
    pub scc_of: Vec<usize>,
}

impl CallGraph {
    /// Candidate callees of the calls in statement `stmt` of scope `i`
    /// (empty when the statement has no resolvable user call).
    #[must_use]
    pub fn candidates(&self, i: ScopeIdx, stmt: u32) -> &BTreeSet<ScopeIdx> {
        static EMPTY: BTreeSet<ScopeIdx> = BTreeSet::new();
        self.call_sites.get(&(i, stmt)).unwrap_or(&EMPTY)
    }
}

/// Builds the call graph for a program. `units` pairs every script with
/// its statement numbering, in load order; `declared` is the set of all
/// names the program declares anywhere (a host global in it is shadowed
/// and loses its host meaning), as computed by the analysis driver.
pub fn build(units: &[(&Script, &UnitNumbering)], declared: &HashSet<String>) -> CallGraph {
    let mut scopes = Vec::new();
    let mut index = HashMap::new();
    for (u, (script, _)) in units.iter().enumerate() {
        for func in std::iter::once(None).chain((0..script.funcs.len()).map(Some)) {
            let r = ScopeRef { unit: u, func };
            index.insert(r, scopes.len());
            scopes.push(r);
        }
    }
    let nscopes = scopes.len();
    let mut b = Builder {
        declared,
        index: &index,
        vars: HashMap::new(),
        props: HashMap::new(),
        any_prop: BTreeSet::new(),
        rets: vec![BTreeSet::new(); nscopes],
        params: (0..nscopes).map(|_| Vec::new()).collect(),
        escaped: BTreeSet::new(),
        call_sites: HashMap::new(),
        changed: false,
        scope: 0,
        unit: 0,
        stmt: 0,
    };
    for (u, (script, _)) in units.iter().enumerate() {
        for (f, def) in script.funcs.iter().enumerate() {
            let i = index[&ScopeRef {
                unit: u,
                func: Some(f),
            }];
            b.params[i] = vec![BTreeSet::new(); def.params.len()];
        }
    }

    // Interleaved fixpoint: propagate within reachable scopes, then
    // recompute reachability from the grown candidate sets. Both only
    // grow, so this terminates.
    let mut reachable = vec![false; nscopes];
    for (i, r) in scopes.iter().enumerate() {
        if r.func.is_none() {
            reachable[i] = true;
        }
    }
    loop {
        b.changed = false;
        for (i, r) in scopes.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let (script, numbering) = units[r.unit];
            let (body, nodes): (&[Stmt], &[StmtNode]) = match r.func {
                None => (&script.body, &numbering.top),
                Some(f) => (&script.funcs[f].body, &numbering.funcs[f]),
            };
            b.scope = i;
            b.unit = r.unit;
            if let Some(f) = r.func {
                // Bind accumulated argument values to the parameter
                // names before walking the body (name-merged, like every
                // other variable).
                for (k, name) in script.funcs[f].params.iter().enumerate() {
                    let vals = b.params[i][k].clone();
                    b.flow_var(name, &vals);
                }
            }
            b.walk_block(body, nodes);
        }
        let next = compute_reach(&scopes, &b.call_sites, &b.escaped);
        if next != reachable {
            reachable = next;
            b.changed = true;
        }
        if !b.changed {
            break;
        }
    }

    let call_sites = b.call_sites;
    let escaped = b.escaped;
    let (sccs, scc_of) = condense(nscopes, &call_sites);
    CallGraph {
        scopes,
        index,
        call_sites,
        escaped,
        reachable,
        sccs,
        scc_of,
    }
}

/// BFS from the entry points over call-site candidate edges.
fn compute_reach(
    scopes: &[ScopeRef],
    call_sites: &HashMap<(ScopeIdx, u32), BTreeSet<ScopeIdx>>,
    escaped: &BTreeSet<ScopeIdx>,
) -> Vec<bool> {
    let mut succs: Vec<Vec<ScopeIdx>> = vec![Vec::new(); scopes.len()];
    for (&(i, _), cands) in call_sites {
        succs[i].extend(cands.iter().copied());
    }
    let mut reach = vec![false; scopes.len()];
    let mut work = Vec::new();
    for (i, r) in scopes.iter().enumerate() {
        if r.func.is_none() {
            reach[i] = true;
            work.push(i);
        }
    }
    for &i in escaped {
        if !reach[i] {
            reach[i] = true;
            work.push(i);
        }
    }
    while let Some(i) = work.pop() {
        for &j in &succs[i] {
            if !reach[j] {
                reach[j] = true;
                work.push(j);
            }
        }
    }
    reach
}

/// Tarjan's SCC algorithm; components come out callees-first.
fn condense(
    n: usize,
    call_sites: &HashMap<(ScopeIdx, u32), BTreeSet<ScopeIdx>>,
) -> (Vec<Vec<ScopeIdx>>, Vec<usize>) {
    let mut succs: Vec<BTreeSet<ScopeIdx>> = vec![BTreeSet::new(); n];
    for (&(i, _), cands) in call_sites {
        succs[i].extend(cands.iter().copied());
    }
    struct T<'a> {
        succs: &'a [BTreeSet<ScopeIdx>],
        idx: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        sccs: Vec<Vec<ScopeIdx>>,
        scc_of: Vec<usize>,
    }
    impl T<'_> {
        fn visit(&mut self, v: usize) {
            self.idx[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for &w in &self.succs[v].clone() {
                match self.idx[w] {
                    None => {
                        self.visit(w);
                        self.low[v] = self.low[v].min(self.low[w]);
                    }
                    Some(wi) if self.on_stack[w] => {
                        self.low[v] = self.low[v].min(wi);
                    }
                    _ => {}
                }
            }
            if self.low[v] == self.idx[v].unwrap() {
                let mut comp = Vec::new();
                loop {
                    let w = self.stack.pop().unwrap();
                    self.on_stack[w] = false;
                    self.scc_of[w] = self.sccs.len();
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                self.sccs.push(comp);
            }
        }
    }
    let mut t = T {
        succs: &succs,
        idx: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
        scc_of: vec![0; n],
    };
    for v in 0..n {
        if t.idx[v].is_none() {
            t.visit(v);
        }
    }
    (t.sccs, t.scc_of)
}

/// One propagation pass over the program's reachable scopes.
struct Builder<'a> {
    declared: &'a HashSet<String>,
    index: &'a HashMap<ScopeRef, ScopeIdx>,
    /// Variable name → functions it may hold (name-merged).
    vars: HashMap<String, BTreeSet<ScopeIdx>>,
    /// Property name → functions any object's slot of that name may hold.
    props: HashMap<String, BTreeSet<ScopeIdx>>,
    /// Functions stored through computed keys (`o[k] = f`, array
    /// literals, `push`): readable by any property or indexed read.
    any_prop: BTreeSet<ScopeIdx>,
    /// Per scope, functions its return value may be.
    rets: Vec<BTreeSet<ScopeIdx>>,
    /// Per scope, per parameter slot, functions it may be bound to.
    params: Vec<Vec<BTreeSet<ScopeIdx>>>,
    escaped: BTreeSet<ScopeIdx>,
    call_sites: HashMap<(ScopeIdx, u32), BTreeSet<ScopeIdx>>,
    changed: bool,
    scope: ScopeIdx,
    unit: usize,
    stmt: u32,
}

impl Builder<'_> {
    fn is_host(&self, name: &str) -> bool {
        HOST_GLOBALS.contains(&name) && !self.declared.contains(name)
    }

    fn fn_scope(&self, idx: usize) -> ScopeIdx {
        self.index[&ScopeRef {
            unit: self.unit,
            func: Some(idx),
        }]
    }

    fn grow(into: &mut BTreeSet<ScopeIdx>, vals: &BTreeSet<ScopeIdx>, changed: &mut bool) {
        for &v in vals {
            *changed |= into.insert(v);
        }
    }

    fn flow_var(&mut self, name: &str, vals: &BTreeSet<ScopeIdx>) {
        if vals.is_empty() {
            return;
        }
        let slot = self.vars.entry(name.to_owned()).or_default();
        Self::grow(slot, vals, &mut self.changed);
    }

    fn flow_prop(&mut self, name: &str, vals: &BTreeSet<ScopeIdx>) {
        if vals.is_empty() {
            return;
        }
        let slot = self.props.entry(name.to_owned()).or_default();
        Self::grow(slot, vals, &mut self.changed);
    }

    fn flow_any(&mut self, vals: &BTreeSet<ScopeIdx>) {
        let mut c = self.changed;
        Self::grow(&mut self.any_prop, vals, &mut c);
        self.changed = c;
    }

    fn flow_escaped(&mut self, vals: &BTreeSet<ScopeIdx>) {
        let mut c = self.changed;
        Self::grow(&mut self.escaped, vals, &mut c);
        self.changed = c;
    }

    fn flow_ret(&mut self, scope: ScopeIdx, vals: &BTreeSet<ScopeIdx>) {
        let mut slot = std::mem::take(&mut self.rets[scope]);
        Self::grow(&mut slot, vals, &mut self.changed);
        self.rets[scope] = slot;
    }

    fn flow_params(&mut self, callee: ScopeIdx, args: &[BTreeSet<ScopeIdx>]) {
        let mut slots = std::mem::take(&mut self.params[callee]);
        for (slot, a) in slots.iter_mut().zip(args) {
            Self::grow(slot, a, &mut self.changed);
        }
        self.params[callee] = slots;
    }

    fn record_site(&mut self, cands: &BTreeSet<ScopeIdx>) {
        let slot = self.call_sites.entry((self.scope, self.stmt)).or_default();
        Self::grow(slot, cands, &mut self.changed);
    }

    fn all_props(&self) -> BTreeSet<ScopeIdx> {
        let mut all = self.any_prop.clone();
        for set in self.props.values() {
            all.extend(set.iter().copied());
        }
        all
    }

    fn walk_block(&mut self, body: &[Stmt], nodes: &[StmtNode]) {
        for (s, n) in body.iter().zip(nodes) {
            self.walk_stmt(s, n);
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt, node: &StmtNode) {
        self.stmt = node.id;
        match stmt {
            Stmt::Decl(name, init) => {
                if let Some(e) = init {
                    let v = self.eval(e);
                    self.flow_var(name, &v);
                }
            }
            Stmt::FuncDecl(name, idx) => {
                let f = BTreeSet::from([self.fn_scope(*idx as usize)]);
                self.flow_var(name, &f);
            }
            Stmt::Expr(e) => {
                self.eval(e);
            }
            Stmt::If(cond, then, els) => {
                self.eval(cond);
                self.walk_block(then, &node.blocks[0]);
                self.walk_block(els, &node.blocks[1]);
            }
            Stmt::While(cond, body) => {
                self.eval(cond);
                self.walk_block(body, &node.blocks[0]);
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    self.walk_stmt(i, &node.blocks[0][0]);
                    self.stmt = node.id;
                }
                if let Some(c) = cond {
                    self.eval(c);
                }
                if let Some(s) = step {
                    self.eval(s);
                }
                self.walk_block(body, &node.blocks[1]);
            }
            Stmt::Return(value) => {
                if let Some(e) = value {
                    let v = self.eval(e);
                    self.flow_ret(self.scope, &v);
                }
            }
            Stmt::Break | Stmt::Continue => {}
        }
    }

    /// Evaluates an expression to the set of functions its value may be,
    /// applying every flow the evaluation implies.
    fn eval(&mut self, expr: &Expr) -> BTreeSet<ScopeIdx> {
        match expr {
            Expr::Num(..) | Expr::Str(..) | Expr::Bool(_) | Expr::Null | Expr::Undefined => {
                BTreeSet::new()
            }
            Expr::Ident(name) => {
                if self.is_host(name) {
                    return BTreeSet::new();
                }
                self.vars.get(name.as_str()).cloned().unwrap_or_default()
            }
            Expr::Function(idx) => BTreeSet::from([self.fn_scope(*idx as usize)]),
            Expr::Array(items) => {
                for it in items {
                    let v = self.eval(it);
                    self.flow_any(&v);
                }
                BTreeSet::new()
            }
            Expr::Object(props) => {
                for (name, e) in props {
                    let v = self.eval(e);
                    self.flow_prop(name, &v);
                }
                BTreeSet::new()
            }
            Expr::Binary(_, a, b) => {
                self.eval(a);
                self.eval(b);
                BTreeSet::new()
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                // The value can be either side.
                let mut l = self.eval(a);
                l.extend(self.eval(b));
                l
            }
            Expr::Unary(_, e) => {
                self.eval(e);
                BTreeSet::new()
            }
            Expr::Ternary(c, a, b) => {
                self.eval(c);
                let mut l = self.eval(a);
                l.extend(self.eval(b));
                l
            }
            Expr::Assign(op, target, value) => {
                let v = self.eval(value);
                let assigns = *op == wasteprof_js::AssignOp::Set;
                match target {
                    Target::Var(name) => {
                        if assigns {
                            self.flow_var(name, &v);
                        }
                    }
                    Target::Member(obj, prop) => {
                        self.eval(obj);
                        if assigns {
                            self.flow_prop(prop, &v);
                        }
                    }
                    Target::Index(obj, key) => {
                        self.eval(obj);
                        self.eval(key);
                        if assigns {
                            self.flow_any(&v);
                        }
                    }
                }
                // Compound assignment coerces to number/string.
                if assigns {
                    v
                } else {
                    BTreeSet::new()
                }
            }
            Expr::Call(callee, args) => self.eval_call(callee, args),
            Expr::MethodCall(obj, name, args) => self.eval_method(obj, name, args),
            Expr::Member(obj, name) => {
                self.eval(obj);
                if matches!(&**obj, Expr::Ident(base) if self.is_host(base)) {
                    return BTreeSet::new(); // host property reads
                }
                let mut r = self.props.get(name.as_str()).cloned().unwrap_or_default();
                r.extend(self.any_prop.iter().copied());
                r
            }
            Expr::Index(obj, key) => {
                self.eval(obj);
                self.eval(key);
                // A computed key may name any stored property.
                self.all_props()
            }
            Expr::PostIncDec { target, .. } => {
                match target {
                    Target::Var(_) => {}
                    Target::Member(obj, _) => {
                        self.eval(obj);
                    }
                    Target::Index(obj, key) => {
                        self.eval(obj);
                        self.eval(key);
                    }
                }
                BTreeSet::new()
            }
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> BTreeSet<ScopeIdx> {
        if let Expr::Ident(name) = callee {
            if !self.declared.contains(name.as_str()) {
                match name.as_str() {
                    "setTimeout" | "requestAnimationFrame" => {
                        for a in args {
                            let v = self.eval(a);
                            self.flow_escaped(&v);
                        }
                        return BTreeSet::new();
                    }
                    "parseInt" => {
                        for a in args {
                            self.eval(a);
                        }
                        return BTreeSet::new();
                    }
                    _ => {}
                }
            }
        }
        let cands = self.eval(callee);
        let argv: Vec<BTreeSet<ScopeIdx>> = args.iter().map(|a| self.eval(a)).collect();
        self.record_site(&cands);
        let mut result = BTreeSet::new();
        for &c in &cands {
            self.flow_params(c, &argv);
            result.extend(self.rets[c].iter().copied());
        }
        result
    }

    fn eval_method(&mut self, obj: &Expr, name: &str, args: &[Expr]) -> BTreeSet<ScopeIdx> {
        self.eval(obj);
        let argv: Vec<BTreeSet<ScopeIdx>> = args.iter().map(|a| self.eval(a)).collect();
        let host_base = matches!(obj, Expr::Ident(n) if self.is_host(n));
        if host_base {
            // Host singletons are never plain objects: no user dispatch.
            // Listener/timer registration makes the callback
            // host-invocable.
            if matches!(
                name,
                "addEventListener" | "setTimeout" | "requestAnimationFrame"
            ) {
                for v in &argv {
                    self.flow_escaped(v);
                }
            }
            return BTreeSet::new();
        }
        match name {
            // Intercepted for plain objects before generic dispatch.
            "push" => {
                for v in &argv {
                    self.flow_any(v);
                }
                BTreeSet::new()
            }
            "indexOf" => BTreeSet::new(),
            _ => {
                // May dispatch a stored function property — even when the
                // name doubles as a DOM sink (`appendChild`), since a
                // plain object can carry any property.
                if name == "addEventListener" {
                    for v in &argv {
                        self.flow_escaped(v);
                    }
                }
                let mut cands = self.props.get(name).cloned().unwrap_or_default();
                cands.extend(self.any_prop.iter().copied());
                self.record_site(&cands);
                let mut result = BTreeSet::new();
                for &c in &cands {
                    self.flow_params(c, &argv);
                    result.extend(self.rets[c].iter().copied());
                }
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use wasteprof_js::{number_script, parse};

    use super::*;

    fn graph(src: &str) -> CallGraph {
        let script = parse(src).unwrap();
        let numbering = number_script(&script);
        let mut declared = HashSet::new();
        collect_declared(&script.body, &mut declared);
        for def in &script.funcs {
            collect_declared(&def.body, &mut declared);
            for p in &def.params {
                declared.insert(p.clone());
            }
        }
        build(&[(&script, &numbering)], &declared)
    }

    fn collect_declared(body: &[Stmt], out: &mut HashSet<String>) {
        for s in body {
            match s {
                Stmt::Decl(n, _) | Stmt::FuncDecl(n, _) => {
                    out.insert(n.clone());
                }
                Stmt::If(_, t, e) => {
                    collect_declared(t, out);
                    collect_declared(e, out);
                }
                Stmt::While(_, b) => collect_declared(b, out),
                Stmt::For(i, _, _, b) => {
                    if let Some(i) = i {
                        collect_declared(std::slice::from_ref(&**i), out);
                    }
                    collect_declared(b, out);
                }
                _ => {}
            }
        }
    }

    fn fn_idx(g: &CallGraph, f: usize) -> ScopeIdx {
        g.index[&ScopeRef {
            unit: 0,
            func: Some(f),
        }]
    }

    #[test]
    fn function_through_variable_reaches_call_site() {
        let g = graph("function a() { return 1; } var f = a; f();");
        let a = fn_idx(&g, 0);
        assert!(g.reachable[a], "a is called through f");
        // The call `f()` is statement 2.
        assert!(g.candidates(0, 2).contains(&a));
    }

    #[test]
    fn uncalled_function_value_is_unreachable() {
        let g = graph("function a() { return 1; } var f = a; document.title = 'x';");
        let a = fn_idx(&g, 0);
        assert!(!g.reachable[a], "a's value flows nowhere callable");
        assert!(g.escaped.is_empty());
    }

    #[test]
    fn timer_callback_escapes_and_is_reachable() {
        let g = graph("setTimeout(function () { return 1; }, 0);");
        let f = fn_idx(&g, 0);
        assert!(g.escaped.contains(&f));
        assert!(g.reachable[f]);
    }

    #[test]
    fn object_property_dispatch_resolves() {
        let g = graph(
            "function go() { return 7; } \
             var api = { run: go }; \
             api.run();",
        );
        let go = fn_idx(&g, 0);
        assert!(g.reachable[go]);
        assert!(g.candidates(0, 2).contains(&go));
    }

    #[test]
    fn callback_argument_flows_into_parameter() {
        let g = graph(
            "function invoke(cb) { cb(); } \
             function job() { return 1; } \
             invoke(job);",
        );
        let invoke = fn_idx(&g, 0);
        let job = fn_idx(&g, 1);
        assert!(g.reachable[job], "job flows through invoke's parameter");
        // The `cb()` site inside invoke resolves to job.
        assert!(g
            .call_sites
            .iter()
            .any(|(&(s, _), c)| s == invoke && c.contains(&job)));
    }

    #[test]
    fn returned_closure_reaches_caller_site() {
        let g = graph(
            "function make() { return function () { return 3; }; } \
             var f = make(); f();",
        );
        let inner = fn_idx(&g, 1);
        assert!(g.reachable[inner], "returned closure is called");
    }

    #[test]
    fn escape_inside_dead_code_does_not_resurrect() {
        let g = graph(
            "function dead() { setTimeout(function () { return 1; }, 0); } \
             document.title = 'x';",
        );
        let dead = fn_idx(&g, 0);
        let cb = fn_idx(&g, 1);
        assert!(!g.reachable[dead]);
        assert!(!g.reachable[cb], "registered only by dead code");
        assert!(g.escaped.is_empty());
    }

    #[test]
    fn recursion_forms_one_scc() {
        let g = graph(
            "function even(n) { if (n == 0) { return 1; } return odd(n - 1); } \
             function odd(n) { if (n == 0) { return 0; } return even(n - 1); } \
             document.title = even(4);",
        );
        let e = fn_idx(&g, 0);
        let o = fn_idx(&g, 1);
        assert_eq!(g.scc_of[e], g.scc_of[o], "mutual recursion shares an SCC");
        let scc = &g.sccs[g.scc_of[e]];
        assert_eq!(scc.len(), 2);
        // Callees-first: the toplevel's SCC comes after its callees'.
        let top = g.index[&ScopeRef {
            unit: 0,
            func: None,
        }];
        assert!(g.scc_of[top] > g.scc_of[e]);
    }

    #[test]
    fn sink_named_property_still_dispatches() {
        // A function stored under a DOM-sink name on a plain object is
        // dispatched by the interpreter's stored-property arm.
        let g = graph(
            "function f() { return 1; } \
             var o = { appendChild: f }; \
             o.appendChild();",
        );
        let f = fn_idx(&g, 0);
        assert!(g.reachable[f]);
    }

    #[test]
    fn dynamic_storage_feeds_indexed_calls() {
        let g = graph(
            "function h() { return 2; } \
             var arr = []; arr.push(h); \
             arr[0]();",
        );
        let h = fn_idx(&g, 0);
        assert!(g.reachable[h], "pushed handler is callable via index");
    }
}
