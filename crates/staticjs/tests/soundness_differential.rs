//! Property-based soundness differential: random programs go through the
//! real interpreter, and the static analyzer's must-be-sound claims are
//! checked against the execution witness.
//!
//! * A statement the analyzer calls unreachable (WP0103) must never
//!   execute.
//! * A store site the analyzer calls dead (WP0102) must never be read
//!   back before being overwritten.
//! * Analyzing the same program twice must produce identical findings.
//!
//! Runtime errors and step-budget aborts are fine: they only *reduce*
//! execution, which is the sound direction for both claims.

use proptest::prelude::*;
use wasteprof_dom::Document;
use wasteprof_js::{JsEngine, JsWitness};
use wasteprof_staticjs::analyze_sources;
use wasteprof_trace::{Recorder, Region, ThreadKind};

/// Runs `src` through the interpreter exactly the way the browser does,
/// returning the execution witness. Script errors are ignored — partial
/// execution only under-approximates the dynamic ground truth.
fn run_witnessed(src: &str) -> JsWitness {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
    let mut doc = Document::new(&mut rec);
    let body = doc.create_element(&mut rec, "body", &[]);
    doc.append_child(&mut rec, doc.root(), body);
    let mut js = JsEngine::new();
    let range = rec.alloc(Region::Input, src.len() as u32);
    let _ = js.load_script(&mut rec, &mut doc, src, range, "prop.js");
    js.take_witness()
}

fn expr() -> BoxedStrategy<String> {
    let var = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just("d".to_owned()),
    ];
    let num = (0u32..7).prop_map(|n| n.to_string());
    prop_oneof![
        var.clone(),
        num.clone(),
        (var.clone(), num.clone()).prop_map(|(v, n)| format!("{v} + {n}")),
        (var.clone(), var.clone()).prop_map(|(x, y)| format!("{x} * {y}")),
        (var, num).prop_map(|(v, n)| format!("({v} < {n} ? {v} : {n})")),
    ]
    .boxed()
}

/// Conditions exercise the literal-truthiness folding (numbers, strings,
/// booleans) alongside genuinely dynamic variable tests.
fn cond() -> BoxedStrategy<String> {
    prop_oneof![
        Just("true".to_owned()),
        Just("false".to_owned()),
        Just("0".to_owned()),
        Just("1".to_owned()),
        Just("''".to_owned()),
        Just("'x'".to_owned()),
        (expr(), 0u32..7).prop_map(|(e, n)| format!("{e} < {n}")),
        prop_oneof![Just("a".to_owned()), Just("c".to_owned())],
    ]
    .boxed()
}

fn simple_stmt() -> BoxedStrategy<String> {
    let var = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just("d".to_owned()),
    ];
    prop_oneof![
        (var.clone(), expr()).prop_map(|(v, e)| format!("var {v} = {e};")),
        (var.clone(), expr()).prop_map(|(v, e)| format!("{v} = {e};")),
        (var.clone(), expr()).prop_map(|(v, e)| format!("{v} += {e};")),
        var.clone().prop_map(|v| format!("{v}++;")),
        expr().prop_map(|e| format!("console.log({e});")),
        expr().prop_map(|e| format!("document.title = {e};")),
    ]
    .boxed()
}

/// Statement strategy: simple statements at the leaves, `if` / bounded
/// `while` (with early `break` and statically dead code after it) as the
/// recursive wrap. Every loop drives the shared counter `t` to at least
/// its bound before exiting, so all generated programs terminate.
fn stmt() -> BoxedStrategy<String> {
    simple_stmt().prop_recursive(3, 24, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..4).prop_map(|v| v.join(" "));
        prop_oneof![
            inner.clone(),
            (cond(), block.clone(), block.clone())
                .prop_map(|(c, t, e)| format!("if ({c}) {{ {t} }} else {{ {e} }}")),
            block
                .clone()
                .prop_map(|b| format!("t = 0; while (t < 3) {{ {b} t += 1; }}")),
            (block.clone(), block).prop_map(|(b, after)| {
                format!("t = 0; while (t < 2) {{ {b} break; {after} }}")
            }),
        ]
    })
}

/// A whole program: a prologue declaring the variable pool, function
/// declarations (some never called — unreachable ground truth), and a
/// top-level statement mix.
fn program() -> BoxedStrategy<String> {
    let funcs = proptest::collection::vec(
        (
            proptest::collection::vec(stmt(), 0..4),
            expr(),
            any::<bool>(),
            any::<bool>(),
        ),
        0..3,
    );
    let top = proptest::collection::vec(stmt(), 1..6);
    (funcs, top)
        .prop_map(|(funcs, top)| {
            let mut src = String::from("var a = 0; var b = 1; var c = 2; var d = 3; var t = 0; ");
            let mut calls = String::new();
            for (i, (body, ret, early_return, called)) in funcs.iter().enumerate() {
                let mut b = body.join(" ");
                if *early_return {
                    // Code after the return is statically unreachable.
                    b = format!("return {ret}; {b}");
                } else {
                    b = format!("{b} return {ret};");
                }
                src.push_str(&format!("function fn{i}() {{ {b} }} "));
                if *called {
                    calls.push_str(&format!("d = fn{i}(); "));
                }
            }
            src.push_str(&top.join(" "));
            src.push(' ');
            src.push_str(&calls);
            src
        })
        .boxed()
}

proptest! {
    // 64 cases keep the suite under a minute; raise via PROPTEST_CASES
    // for deeper soaks.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_claims_survive_dynamic_execution(src in program()) {
        let analysis = analyze_sources(&[("prop.js".to_owned(), src.clone())])
            .expect("generated programs always parse");
        let witness = run_witnessed(&src);
        let w = witness.unit("prop.js").expect("unit registered");
        let report = &analysis.units[0];

        // WP0103: statically unreachable statements never execute.
        for &s in &report.unreachable {
            prop_assert_eq!(
                w.exec_count(s),
                0,
                "unreachable stmt {} executed in: {}",
                s,
                src
            );
        }

        // WP0102: statically dead stores are never read back.
        for key in &report.dead_stores {
            if let Some(f) = w.stores.get(key) {
                prop_assert_eq!(
                    f.read_back,
                    0,
                    "dead store {:?} was read back in: {}",
                    key,
                    src
                );
            }
        }
    }

    #[test]
    fn analysis_is_deterministic_on_random_programs(src in program()) {
        let a1 = analyze_sources(&[("prop.js".to_owned(), src.clone())]).unwrap();
        let a2 = analyze_sources(&[("prop.js".to_owned(), src)]).unwrap();
        prop_assert_eq!(
            wasteprof_checker::render_json(&a1.diags),
            wasteprof_checker::render_json(&a2.diags)
        );
        for (u1, u2) in a1.units.iter().zip(&a2.units) {
            prop_assert_eq!(&u1.unreachable, &u2.unreachable);
            prop_assert_eq!(&u1.dead_stores, &u2.dead_stores);
            prop_assert_eq!(&u1.wasted, &u2.wasted);
            prop_assert_eq!(&u1.maybe_undef, &u2.maybe_undef);
        }
    }
}
