//! Property-based soundness differential: random programs go through the
//! real interpreter, and the static analyzer's must-be-sound claims are
//! checked against the execution witness.
//!
//! * A statement the analyzer calls unreachable (WP0103) must never
//!   execute.
//! * A store site the analyzer calls dead (WP0102) must never be read
//!   back before being overwritten.
//! * A function the analyzer calls uncallable (WP0106) must never be
//!   invoked — through any entry path, including fired timers.
//! * A top-level statement the analyzer calls a useless effect-free call
//!   (WP0105) must sit in the generator's designated discard block, and
//!   deleting that whole block must leave every observable global
//!   unchanged (the removal differential).
//! * Analyzing the same program twice must produce identical findings.
//!
//! The second program family is deliberately higher-order: function
//! values flow through variables, object registries, callback
//! parameters, closures over mutable locals, `setTimeout`, and
//! recursion, so every claim above exercises the interprocedural call
//! graph rather than the intraprocedural core.
//!
//! Runtime errors and step-budget aborts are fine: they only *reduce*
//! execution, which is the sound direction for these claims.

use proptest::prelude::*;
use wasteprof_dom::Document;
use wasteprof_js::{JsEngine, JsWitness};
use wasteprof_staticjs::analyze_sources;
use wasteprof_trace::{Recorder, Region, ThreadKind};

/// Runs `src` through the interpreter exactly the way the browser does,
/// returning the execution witness. Script errors are ignored — partial
/// execution only under-approximates the dynamic ground truth.
fn run_witnessed(src: &str) -> JsWitness {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
    let mut doc = Document::new(&mut rec);
    let body = doc.create_element(&mut rec, "body", &[]);
    doc.append_child(&mut rec, doc.root(), body);
    let mut js = JsEngine::new();
    let range = rec.alloc(Region::Input, src.len() as u32);
    let _ = js.load_script(&mut rec, &mut doc, src, range, "prop.js");
    js.take_witness()
}

fn expr() -> BoxedStrategy<String> {
    let var = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just("d".to_owned()),
    ];
    let num = (0u32..7).prop_map(|n| n.to_string());
    prop_oneof![
        var.clone(),
        num.clone(),
        (var.clone(), num.clone()).prop_map(|(v, n)| format!("{v} + {n}")),
        (var.clone(), var.clone()).prop_map(|(x, y)| format!("{x} * {y}")),
        (var, num).prop_map(|(v, n)| format!("({v} < {n} ? {v} : {n})")),
    ]
    .boxed()
}

/// Conditions exercise the literal-truthiness folding (numbers, strings,
/// booleans) alongside genuinely dynamic variable tests.
fn cond() -> BoxedStrategy<String> {
    prop_oneof![
        Just("true".to_owned()),
        Just("false".to_owned()),
        Just("0".to_owned()),
        Just("1".to_owned()),
        Just("''".to_owned()),
        Just("'x'".to_owned()),
        (expr(), 0u32..7).prop_map(|(e, n)| format!("{e} < {n}")),
        prop_oneof![Just("a".to_owned()), Just("c".to_owned())],
    ]
    .boxed()
}

fn simple_stmt() -> BoxedStrategy<String> {
    let var = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just("d".to_owned()),
    ];
    prop_oneof![
        (var.clone(), expr()).prop_map(|(v, e)| format!("var {v} = {e};")),
        (var.clone(), expr()).prop_map(|(v, e)| format!("{v} = {e};")),
        (var.clone(), expr()).prop_map(|(v, e)| format!("{v} += {e};")),
        var.clone().prop_map(|v| format!("{v}++;")),
        expr().prop_map(|e| format!("console.log({e});")),
        expr().prop_map(|e| format!("document.title = {e};")),
    ]
    .boxed()
}

/// Statement strategy: simple statements at the leaves, `if` / bounded
/// `while` (with early `break` and statically dead code after it) as the
/// recursive wrap. Every loop drives the shared counter `t` to at least
/// its bound before exiting, so all generated programs terminate.
fn stmt() -> BoxedStrategy<String> {
    simple_stmt().prop_recursive(3, 24, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..4).prop_map(|v| v.join(" "));
        prop_oneof![
            inner.clone(),
            (cond(), block.clone(), block.clone())
                .prop_map(|(c, t, e)| format!("if ({c}) {{ {t} }} else {{ {e} }}")),
            block
                .clone()
                .prop_map(|b| format!("t = 0; while (t < 3) {{ {b} t += 1; }}")),
            (block.clone(), block).prop_map(|(b, after)| {
                format!("t = 0; while (t < 2) {{ {b} break; {after} }}")
            }),
        ]
    })
}

/// A whole program: a prologue declaring the variable pool, function
/// declarations (some never called — unreachable ground truth), and a
/// top-level statement mix.
fn program() -> BoxedStrategy<String> {
    let funcs = proptest::collection::vec(
        (
            proptest::collection::vec(stmt(), 0..4),
            expr(),
            any::<bool>(),
            any::<bool>(),
        ),
        0..3,
    );
    let top = proptest::collection::vec(stmt(), 1..6);
    (funcs, top)
        .prop_map(|(funcs, top)| {
            let mut src = String::from("var a = 0; var b = 1; var c = 2; var d = 3; var t = 0; ");
            let mut calls = String::new();
            for (i, (body, ret, early_return, called)) in funcs.iter().enumerate() {
                let mut b = body.join(" ");
                if *early_return {
                    // Code after the return is statically unreachable.
                    b = format!("return {ret}; {b}");
                } else {
                    b = format!("{b} return {ret};");
                }
                src.push_str(&format!("function fn{i}() {{ {b} }} "));
                if *called {
                    calls.push_str(&format!("d = fn{i}(); "));
                }
            }
            src.push_str(&top.join(" "));
            src.push(' ');
            src.push_str(&calls);
            src
        })
        .boxed()
}

/// A generated higher-order program plus the metadata the soundness
/// checks need: the same source with the discard block deleted, the
/// top-level statement ids of that block, and the top-level statement
/// count (every top-level statement is simple, so id == index there).
#[derive(Debug, Clone)]
struct HoProgram {
    full: String,
    without_discards: String,
    discard_ids: Vec<u32>,
    toplevel_count: u32,
}

/// Like [`run_witnessed`] but also fires every pending timer (so timer
/// callbacks count as invocations) and reads back the observable
/// globals for the removal differential.
fn run_full(src: &str) -> (JsWitness, Vec<Option<f64>>) {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
    let mut doc = Document::new(&mut rec);
    let body = doc.create_element(&mut rec, "body", &[]);
    doc.append_child(&mut rec, doc.root(), body);
    let mut js = JsEngine::new();
    let range = rec.alloc(Region::Input, src.len() as u32);
    let _ = js.load_script(&mut rec, &mut doc, src, range, "prop.js");
    for timer in js.take_timers() {
        js.fire_timer(&mut rec, &mut doc, timer);
    }
    let globals = ["a", "b", "c", "t"]
        .iter()
        .map(|g| js.lookup_global(g).map(|v| v.as_num()))
        .collect();
    (js.take_witness(), globals)
}

#[allow(clippy::too_many_arguments)]
fn build_ho(
    pure: &[(u8, u8, u8)],
    discards: &[(usize, u8)],
    orphans: usize,
    impure: bool,
    timer: bool,
    fexpr: bool,
    fold_arg: u8,
    list: &[u8],
) -> HoProgram {
    // Every top-level statement is simple (no if/while/for), so the
    // preorder numbering makes top-level id == position.
    let mut top: Vec<String> = vec![
        "var a = 1;".into(),
        "var b = 2;".into(),
        "var c = 3;".into(),
        "var t = 0;".into(),
    ];
    for (i, (m, k, j)) in pure.iter().enumerate() {
        top.push(format!(
            "function p{i}(x) {{ var r = x * {m} + {k}; return r + {j}; }}"
        ));
    }
    if impure {
        top.push("function q0(x) { c = c + x; return c; }".into());
    }
    top.push(
        "function mk(step) { var tot = 0; \
         return function (x) { tot = tot + step + x; return tot; }; }"
            .into(),
    );
    top.push(
        "function ap(list, f) { \
         for (var i = 0; i < list.length; i += 1) { f(list[i]); } }"
            .into(),
    );
    top.push(
        "function fold(i, acc) { if (i <= 0) { return acc; } return fold(i - 1, acc + i); }".into(),
    );
    for o in 0..orphans {
        top.push(format!("function orph{o}(x) {{ return p0(x) + {o}; }}"));
    }
    top.push("var tally = mk(2);".into());
    // Registry over every pure function; only h0 (and h1 when present)
    // are ever dispatched — the rest are stored-but-uncalled.
    let mut reg: Vec<String> = (0..pure.len()).map(|i| format!("h{i}: p{i}")).collect();
    if fexpr {
        reg.push("hz: function (x) { return x + 9; }".into());
    }
    top.push(format!("var reg = {{ {} }};", reg.join(", ")));
    top.push("a = a + reg.h0(1);".into());
    if pure.len() > 1 {
        top.push("b = b + reg.h1(3);".into());
    }
    top.push(format!("c = c + fold({fold_arg}, 0);"));
    let items: Vec<String> = list.iter().map(u8::to_string).collect();
    top.push(format!(
        "ap([{}], function (v) {{ t = t + tally(v); }});",
        items.join(", ")
    ));
    if impure {
        top.push("q0(2);".into());
    }
    if timer {
        top.push("setTimeout(function () { t = t + tally(1); }, 60);".into());
    }
    let discard_start = top.len();
    for &(idx, n) in discards {
        top.push(format!("p{}({n});", idx % pure.len()));
    }
    let discard_ids: Vec<u32> = (discard_start..top.len()).map(|i| i as u32).collect();
    top.push("console.log(a + b + c + t);".into());

    let without_discards = top
        .iter()
        .enumerate()
        .filter(|(i, _)| !(discard_start..discard_start + discards.len()).contains(i))
        .map(|(_, s)| s.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    HoProgram {
        toplevel_count: top.len() as u32,
        full: top.join("\n"),
        without_discards,
        discard_ids,
    }
}

fn ho_program() -> BoxedStrategy<HoProgram> {
    let pure = proptest::collection::vec((0u8..5, 0u8..5, 0u8..5), 1..4);
    let discards = proptest::collection::vec((0usize..8, 0u8..7), 0..4);
    let shape = (pure, discards, 0usize..3, 1u8..6);
    let flags = (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(0u8..7, 1..4),
    );
    (shape, flags)
        .prop_map(
            |((pure, discards, orphans, fold_arg), (impure, timer, fexpr, list))| {
                build_ho(
                    &pure, &discards, orphans, impure, timer, fexpr, fold_arg, &list,
                )
            },
        )
        .boxed()
}

proptest! {
    // 64 cases keep the suite under a minute; raise via PROPTEST_CASES
    // for deeper soaks.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_claims_survive_dynamic_execution(src in program()) {
        let analysis = analyze_sources(&[("prop.js".to_owned(), src.clone())])
            .expect("generated programs always parse");
        let witness = run_witnessed(&src);
        let w = witness.unit("prop.js").expect("unit registered");
        let report = &analysis.units[0];

        // WP0103: statically unreachable statements never execute.
        for &s in &report.unreachable {
            prop_assert_eq!(
                w.exec_count(s),
                0,
                "unreachable stmt {} executed in: {}",
                s,
                src
            );
        }

        // WP0102: statically dead stores are never read back.
        for key in &report.dead_stores {
            if let Some(f) = w.stores.get(key) {
                prop_assert_eq!(
                    f.read_back,
                    0,
                    "dead store {:?} was read back in: {}",
                    key,
                    src
                );
            }
        }
    }

    #[test]
    fn higher_order_claims_survive_dynamic_execution(p in ho_program()) {
        let analysis = analyze_sources(&[("prop.js".to_owned(), p.full.clone())])
            .expect("generated programs always parse");
        let (witness, g_full) = run_full(&p.full);
        let (_, g_without) = run_full(&p.without_discards);
        let w = witness.unit("prop.js").expect("unit registered");
        let report = &analysis.units[0];

        // WP0103: statically unreachable statements never execute, even
        // when every call is dispatched through a value.
        for &s in &report.unreachable {
            prop_assert_eq!(w.exec_count(s), 0, "unreachable stmt {} executed in: {}", s, p.full);
        }

        // WP0102: statically dead stores are never read back.
        for key in &report.dead_stores {
            if let Some(f) = w.stores.get(key) {
                prop_assert_eq!(f.read_back, 0, "dead store {:?} read back in: {}", key, p.full);
            }
        }

        // WP0106: a claimed-uncallable function is never invoked through
        // any entry path — direct call, registry dispatch, closure,
        // callback parameter, or fired timer.
        for &f in &report.uncallable {
            prop_assert_eq!(
                w.call_count(f), 0,
                "uncallable fn {} was invoked in: {}", f, p.full
            );
        }

        // WP0105: every top-level statement is either effectful or has
        // its result consumed — except the discard block — so any
        // top-level useless-call claim outside that block is unsound.
        for &s in &report.useless_calls {
            if s < p.toplevel_count {
                prop_assert!(
                    p.discard_ids.contains(&s),
                    "useless-call claim on effectful toplevel stmt {} in: {}", s, p.full
                );
            }
        }

        // Removal differential: the discard block is effect-free by
        // construction, and the interpreter must agree — deleting it
        // leaves every observable global unchanged.
        prop_assert_eq!(g_full, g_without, "discard block had effects in: {}", p.full);
    }

    #[test]
    fn analysis_is_deterministic_on_random_programs(src in program()) {
        let a1 = analyze_sources(&[("prop.js".to_owned(), src.clone())]).unwrap();
        let a2 = analyze_sources(&[("prop.js".to_owned(), src)]).unwrap();
        prop_assert_eq!(
            wasteprof_checker::render_json(&a1.diags),
            wasteprof_checker::render_json(&a2.diags)
        );
        for (u1, u2) in a1.units.iter().zip(&a2.units) {
            prop_assert_eq!(&u1.unreachable, &u2.unreachable);
            prop_assert_eq!(&u1.dead_stores, &u2.dead_stores);
            prop_assert_eq!(&u1.wasted, &u2.wasted);
            prop_assert_eq!(&u1.useless_calls, &u2.useless_calls);
            prop_assert_eq!(&u1.uncallable, &u2.uncallable);
            prop_assert_eq!(&u1.maybe_undef, &u2.maybe_undef);
        }
    }
}
