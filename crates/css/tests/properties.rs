//! Property-based tests for the CSS engine.

use proptest::prelude::*;
use wasteprof_css::{parse_stylesheet, Selector, StyleEngine, Viewport};
use wasteprof_dom::Document;
use wasteprof_trace::{Recorder, Region, ThreadKind};

// ---------------------------------------------------------------------
// Selector parsing
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,6}".prop_map(|s| s)
}

fn compound() -> impl Strategy<Value = String> {
    (
        proptest::option::of(ident()),
        proptest::option::of(ident()),
        proptest::collection::vec(ident(), 0..3),
    )
        .prop_filter_map("empty compound", |(tag, id, classes)| {
            let mut s = tag.unwrap_or_default();
            if let Some(id) = id {
                s.push('#');
                s.push_str(&id);
            }
            for c in &classes {
                s.push('.');
                s.push_str(c);
            }
            (!s.is_empty()).then_some(s)
        })
}

fn selector_text() -> impl Strategy<Value = String> {
    (
        compound(),
        proptest::collection::vec((0..2usize, compound()), 0..3),
    )
        .prop_map(|(first, rest)| {
            let mut s = first;
            for (comb, c) in rest {
                s.push_str(if comb == 0 { " " } else { " > " });
                s.push_str(&c);
            }
            s
        })
}

proptest! {
    #[test]
    fn generated_selectors_always_parse(text in selector_text()) {
        let sel = Selector::parse(&text);
        prop_assert!(sel.is_some(), "{text:?} failed to parse");
        let sel = sel.unwrap();
        prop_assert!(!sel.parts.is_empty());
        prop_assert_eq!(sel.parts.len(), sel.combinators.len() + 1);
    }

    #[test]
    fn specificity_is_component_monotonic(text in selector_text(), extra in ident()) {
        let base = Selector::parse(&text).unwrap().specificity();
        // Adding a class to the subject strictly increases specificity.
        let more = Selector::parse(&format!("{text}.{extra}")).unwrap().specificity();
        prop_assert!(more > base);
    }

    #[test]
    fn selector_parser_never_panics(text in "[ -~]{0,40}") {
        let _ = Selector::parse(&text);
    }
}

// ---------------------------------------------------------------------
// Matching consistency: bucketed matching == brute force
// ---------------------------------------------------------------------

fn build_doc(classes: &[Vec<String>]) -> (Recorder, Document, Vec<wasteprof_dom::NodeId>) {
    let mut rec = Recorder::new();
    rec.spawn_thread(ThreadKind::Main, "m");
    let mut doc = Document::new(&mut rec);
    let mut nodes = Vec::new();
    let mut parent = doc.root();
    for (i, cl) in classes.iter().enumerate() {
        let el = doc.create_element(&mut rec, if i % 2 == 0 { "div" } else { "span" }, &[]);
        if !cl.is_empty() {
            doc.set_attribute(&mut rec, el, "class", &cl.join(" "), &[]);
        }
        doc.append_child(&mut rec, parent, el);
        // Alternate nesting to exercise combinators.
        if i % 3 == 0 {
            parent = el;
        }
        nodes.push(el);
    }
    (rec, doc, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_iff_selector_matches(
        classes in proptest::collection::vec(
            proptest::collection::vec("[ab c]{1}".prop_map(|s| format!("k{}", s.trim())), 0..3),
            1..8,
        ),
        sel_text in selector_text(),
    ) {
        let Some(sel) = Selector::parse(&sel_text) else { return Ok(()) };
        let (mut rec, doc, nodes) = build_doc(&classes);
        // Build a one-rule sheet from the selector and cascade it.
        let css = format!("{sel_text} {{ color: red }}");
        let src = rec.alloc(Region::Input, css.len() as u32);
        let sheet = parse_stylesheet(&mut rec, &css, src, Viewport::DESKTOP, "p");
        let mut engine = StyleEngine::new(Viewport::DESKTOP);
        engine.add_sheet(sheet);
        let styles = engine.style_document(&mut rec, &doc);
        for &n in &nodes {
            let red = styles.style(n).unwrap().color == wasteprof_css::Color::rgb(255, 0, 0);
            let expected = sel.matches(&doc, n);
            prop_assert_eq!(red, expected, "node {:?} selector {:?}", n, &sel_text);
        }
    }

    #[test]
    fn css_parser_never_panics(text in "[ -~]{0,160}") {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "m");
        let src = rec.alloc(Region::Input, text.len().max(1) as u32);
        let _ = parse_stylesheet(&mut rec, &text, src, Viewport::DESKTOP, "fuzz");
    }
}
