//! Style resolution: rule matching, the cascade, and computed styles.
//!
//! The engine keeps the standard rule-hash optimization (rules bucketed by
//! their subject's id/class/tag), matches candidates per element, sorts by
//! `(specificity, source order)`, and applies declarations over the
//! inherited style. It also records which rules ever matched — the data
//! behind the paper's Table I unused-CSS measurement.

use std::collections::HashMap;

use wasteprof_dom::{Document, NodeId};
use wasteprof_trace::{site, Addr, AddrRange, Recorder, Region};

use crate::parser::{Decl, Stylesheet, Viewport};
use crate::selector::BucketKey;
use crate::values::ComputedStyle;

/// Trace cells mirroring one element's computed style, grouped the way the
/// downstream pipeline consumes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StyleCells {
    /// Box geometry inputs: display, width/height, margins, padding,
    /// border width.
    pub geometry: Addr,
    /// Paint inputs: colors, opacity, visibility.
    pub paint: Addr,
    /// Text inputs: font size, line height, alignment.
    pub font: Addr,
    /// Positioning inputs: position scheme, offsets, z-index.
    pub position: Addr,
}

impl StyleCells {
    fn alloc(rec: &mut Recorder) -> Self {
        StyleCells {
            geometry: rec.alloc_cell(Region::Heap),
            paint: rec.alloc_cell(Region::Heap),
            font: rec.alloc_cell(Region::Heap),
            position: rec.alloc_cell(Region::Heap),
        }
    }

    /// All four group cells.
    pub fn all(&self) -> [Addr; 4] {
        [self.geometry, self.paint, self.font, self.position]
    }
}

/// Computed styles (and their trace cells) for a document.
#[derive(Debug, Clone, Default)]
pub struct StyleMap {
    styles: HashMap<NodeId, ComputedStyle>,
    cells: HashMap<NodeId, StyleCells>,
}

impl StyleMap {
    /// The computed style of `node`, if it was styled.
    pub fn style(&self, node: NodeId) -> Option<&ComputedStyle> {
        self.styles.get(&node)
    }

    /// The style cells of `node`, if it was styled.
    pub fn cells(&self, node: NodeId) -> Option<StyleCells> {
        self.cells.get(&node).copied()
    }

    /// Number of styled elements.
    pub fn len(&self) -> usize {
        self.styles.len()
    }

    /// True if nothing was styled yet.
    pub fn is_empty(&self) -> bool {
        self.styles.is_empty()
    }
}

/// Unused-code accounting for stylesheets (paper Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CssCoverage {
    /// Total stylesheet source bytes loaded.
    pub total_bytes: u64,
    /// Bytes of rules that matched at least one element.
    pub used_bytes: u64,
}

impl CssCoverage {
    /// Bytes never used.
    pub fn unused_bytes(&self) -> u64 {
        self.total_bytes.saturating_sub(self.used_bytes)
    }

    /// Unused fraction in `[0, 1]`.
    pub fn unused_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.unused_bytes() as f64 / self.total_bytes as f64
        }
    }
}

#[derive(Debug)]
struct RuleRef {
    sheet: usize,
    rule: usize,
    selector: usize,
    specificity: u32,
    order: u32,
}

/// The style engine: owns the stylesheets and resolves computed styles.
///
/// # Examples
///
/// ```
/// use wasteprof_css::{parse_stylesheet, StyleEngine, Viewport};
/// use wasteprof_dom::Document;
/// use wasteprof_trace::{Recorder, Region, ThreadKind};
///
/// let mut rec = Recorder::new();
/// rec.spawn_thread(ThreadKind::Main, "content::RendererMain");
/// let mut doc = Document::new(&mut rec);
/// let div = doc.create_element(&mut rec, "div", &[]);
/// doc.append_child(&mut rec, doc.root(), div);
///
/// let css = "div { width: 100px }";
/// let src = rec.alloc(Region::Input, css.len() as u32);
/// let sheet = parse_stylesheet(&mut rec, css, src, Viewport::DESKTOP, "inline");
/// let mut engine = StyleEngine::new(Viewport::DESKTOP);
/// engine.add_sheet(sheet);
/// let styles = engine.style_document(&mut rec, &doc);
/// assert!(styles.style(div).is_some());
/// ```
#[derive(Debug)]
pub struct StyleEngine {
    sheets: Vec<Stylesheet>,
    buckets: HashMap<BucketKey, Vec<RuleRef>>,
    matched: Vec<Vec<bool>>,
    order: u32,
    viewport: Viewport,
}

impl StyleEngine {
    /// Creates an engine for the given viewport.
    pub fn new(viewport: Viewport) -> Self {
        StyleEngine {
            sheets: Vec::new(),
            buckets: HashMap::new(),
            matched: Vec::new(),
            order: 0,
            viewport,
        }
    }

    /// The viewport media queries were evaluated against.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// Registers a parsed stylesheet; its active rules become matchable.
    pub fn add_sheet(&mut self, sheet: Stylesheet) {
        let sheet_idx = self.sheets.len();
        self.matched.push(vec![false; sheet.rules.len()]);
        for (rule_idx, rule) in sheet.rules.iter().enumerate() {
            if !rule.active {
                continue;
            }
            for (sel_idx, sel) in rule.selectors.iter().enumerate() {
                let key = BucketKey::of(sel);
                self.buckets.entry(key).or_default().push(RuleRef {
                    sheet: sheet_idx,
                    rule: rule_idx,
                    selector: sel_idx,
                    specificity: sel.specificity(),
                    order: self.order,
                });
            }
            self.order += 1;
        }
        self.sheets.push(sheet);
    }

    /// Number of registered sheets.
    pub fn sheet_count(&self) -> usize {
        self.sheets.len()
    }

    /// Resolves styles for the entire document.
    pub fn style_document(&mut self, rec: &mut Recorder, doc: &Document) -> StyleMap {
        let mut map = StyleMap::default();
        self.style_subtree(rec, doc, doc.root(), &mut map);
        map
    }

    /// Resolves styles for `root`'s subtree into `map` (partial restyle:
    /// what the main thread does when an interaction dirties part of the
    /// page).
    pub fn style_subtree(
        &mut self,
        rec: &mut Recorder,
        doc: &Document,
        root: NodeId,
        map: &mut StyleMap,
    ) {
        let func = rec.intern_func("blink::css::StyleResolver::ResolveStyle");
        let matcher = rec.intern_func("blink::css::SelectorChecker::MatchRules");
        rec.in_func(site!(), func, |rec| {
            // Parent style: from the map (already resolved) or initial.
            let parent_style = doc
                .node(root)
                .parent
                .and_then(|p| map.styles.get(&p))
                .cloned()
                .unwrap_or_else(ComputedStyle::initial);
            self.resolve_recursive(rec, doc, root, &parent_style, None, matcher, map);
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_recursive(
        &mut self,
        rec: &mut Recorder,
        doc: &Document,
        node: NodeId,
        parent_style: &ComputedStyle,
        parent_cells: Option<StyleCells>,
        matcher: wasteprof_trace::FuncId,
        map: &mut StyleMap,
    ) {
        let style = if doc.node(node).is_element() {
            let style = self.resolve_one(rec, doc, node, parent_style, parent_cells, matcher, map);
            Some(style)
        } else {
            None
        };
        // `display: none` subtrees generate no boxes, and the engine (like
        // Blink) does not compute style for their descendants either.
        if style
            .as_ref()
            .is_some_and(|s| s.display == crate::values::Display::None)
        {
            return;
        }
        let style_for_children = style.unwrap_or_else(|| parent_style.clone());
        let cells_for_children = map.cells.get(&node).copied().or(parent_cells);
        // Index loop: `doc` is shared, so no defensive clone is needed.
        for ci in 0..doc.node(node).children.len() {
            let child = doc.node(node).children[ci];
            self.resolve_recursive(
                rec,
                doc,
                child,
                &style_for_children,
                cells_for_children,
                matcher,
                map,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_one(
        &mut self,
        rec: &mut Recorder,
        doc: &Document,
        node: NodeId,
        parent_style: &ComputedStyle,
        parent_cells: Option<StyleCells>,
        matcher: wasteprof_trace::FuncId,
        map: &mut StyleMap,
    ) -> ComputedStyle {
        // --- match phase -------------------------------------------------
        // Each candidate is *tested* (a branch whose condition reads the
        // rule cell); matching candidates are appended to the matched-rule
        // list, which the cascade consumes. In the backward slice this
        // reproduces the real dependence structure: the appends of
        // matching rules (and, through control dependence, their guarding
        // match tests) become necessary when the element's style is, while
        // candidate tests that fail stay out of the slice.
        let keys = BucketKey::for_element(doc, node);
        let mut matching: Vec<(u32, u32, usize, usize)> = Vec::new();
        let node_meta = doc.node(node).cells.meta;
        let matched_list = rec.alloc_cell(Region::Heap);
        rec.in_func(site!(), matcher, |rec| {
            // Bucket lookup hashes the element's identity: tag, id, and
            // classes — so attribute mutations (e.g. classList.add from JS)
            // flow into the style system.
            let mut id_reads: Vec<AddrRange> = vec![node_meta.into()];
            for attr in ["class", "id"] {
                if let Some(a) = doc.node(node).attr(attr) {
                    id_reads.push(a.cell.into());
                }
            }
            // The traversal reached this element through its parent's
            // child list.
            if let Some(p) = doc.node(node).parent {
                id_reads.push(doc.node(p).cells.structure.into());
            }
            rec.compute(site!(), &id_reads, &[matched_list.into()]);
            let test_site = site!();
            let append_site = site!();
            for key in &keys {
                let Some(candidates) = self.buckets.get(key) else {
                    continue;
                };
                for r in candidates {
                    let rule = &self.sheets[r.sheet].rules[r.rule];
                    let sel = &rule.selectors[r.selector];
                    let hit = sel.matches(doc, node);
                    rec.branch_mem(test_site, rule.cell, hit);
                    if hit {
                        rec.compute(
                            append_site,
                            &[node_meta.into(), rule.cell.into(), matched_list.into()],
                            &[matched_list.into()],
                        );
                        matching.push((r.specificity, r.order, r.sheet, r.rule));
                    }
                }
            }
        });
        matching.sort();
        matching.dedup();

        // --- cascade phase -----------------------------------------------
        let mut style = ComputedStyle::inherited_from(parent_style);
        let mut rule_cells: Vec<AddrRange> = Vec::new();
        for &(_, _, sheet, rule) in &matching {
            self.matched[sheet][rule] = true;
            for d in &self.sheets[sheet].rules[rule].decls {
                d.apply(&mut style);
            }
            rule_cells.push(self.sheets[sheet].rules[rule].cell.into());
        }
        // Inline style attribute wins over everything.
        if let Some(attr) = doc.node(node).attr("style") {
            for decl in attr.value.split(';') {
                if let Some((name, value)) = decl.split_once(':') {
                    for d in Decl::parse(name, value) {
                        d.apply(&mut style);
                    }
                }
            }
            rule_cells.push(attr.cell.into());
        }

        let cells = StyleCells::alloc(rec);
        // The computed style derives from the matched-rule list, the
        // matched rules themselves, the element identity, and the
        // inherited (parent) style.
        let mut reads: Vec<AddrRange> = vec![node_meta.into(), matched_list.into()];
        if let Some(p) = parent_cells {
            reads.push(p.font.into());
            reads.push(p.paint.into());
        }
        reads.extend(rule_cells);
        let writes: Vec<AddrRange> = cells.all().iter().map(|&a| a.into()).collect();
        rec.compute_weighted(site!(), &reads, &writes, matching.len() as u32);

        map.styles.insert(node, style.clone());
        map.cells.insert(node, cells);
        style
    }

    /// Unused-CSS accounting over everything matched so far.
    pub fn coverage(&self) -> CssCoverage {
        let mut cov = CssCoverage::default();
        for (sheet_idx, sheet) in self.sheets.iter().enumerate() {
            cov.total_bytes += sheet.total_bytes;
            for (rule_idx, rule) in sheet.rules.iter().enumerate() {
                if self.matched[sheet_idx][rule_idx] {
                    cov.used_bytes += rule.bytes as u64;
                }
            }
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_stylesheet;
    use crate::values::{Color, Display, Length};
    use wasteprof_trace::{Recorder, ThreadKind};

    fn setup(css: &str) -> (Recorder, Document, StyleEngine) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let doc = Document::new(&mut rec);
        let src = rec.alloc(Region::Input, css.len().max(1) as u32);
        let sheet = parse_stylesheet(&mut rec, css, src, Viewport::DESKTOP, "test");
        let mut engine = StyleEngine::new(Viewport::DESKTOP);
        engine.add_sheet(sheet);
        (rec, doc, engine)
    }

    #[test]
    fn cascade_specificity_and_order() {
        let (mut rec, mut doc, mut engine) = setup(
            "div { color: blue; width: 10px } .x { color: red } .x { height: 5px } #y { color: green }",
        );
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.set_attribute(&mut rec, el, "class", "x", &[]);
        doc.set_attribute(&mut rec, el, "id", "y", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        let styles = engine.style_document(&mut rec, &doc);
        let s = styles.style(el).unwrap();
        assert_eq!(s.color, Color::parse("green").unwrap()); // id wins
        assert_eq!(s.width, Length::Px(10.0)); // tag rule still applies
        assert_eq!(s.height, Length::Px(5.0));
    }

    #[test]
    fn inline_style_wins() {
        let (mut rec, mut doc, mut engine) = setup("#y { color: green }");
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.set_attribute(&mut rec, el, "id", "y", &[]);
        doc.set_attribute(&mut rec, el, "style", "color: red; width: 7px", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        let styles = engine.style_document(&mut rec, &doc);
        let s = styles.style(el).unwrap();
        assert_eq!(s.color, Color::rgb(255, 0, 0));
        assert_eq!(s.width, Length::Px(7.0));
    }

    #[test]
    fn inheritance_flows_down() {
        let (mut rec, mut doc, mut engine) = setup(".top { color: red; font-size: 20px }");
        let top = doc.create_element(&mut rec, "div", &[]);
        doc.set_attribute(&mut rec, top, "class", "top", &[]);
        let inner = doc.create_element(&mut rec, "span", &[]);
        doc.append_child(&mut rec, doc.root(), top);
        doc.append_child(&mut rec, top, inner);
        let styles = engine.style_document(&mut rec, &doc);
        let s = styles.style(inner).unwrap();
        assert_eq!(s.color, Color::rgb(255, 0, 0));
        assert_eq!(s.font_size, 20.0);
        assert_eq!(s.display, Display::Block); // not inherited
    }

    #[test]
    fn coverage_counts_only_matched_rules() {
        let css = ".used { color: red } .unused { color: blue } .unused2:hover { color: green }";
        let (mut rec, mut doc, mut engine) = setup(css);
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.set_attribute(&mut rec, el, "class", "used", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        engine.style_document(&mut rec, &doc);
        let cov = engine.coverage();
        assert_eq!(cov.total_bytes, css.len() as u64);
        assert!(cov.used_bytes > 0);
        assert!(
            cov.unused_fraction() > 0.5,
            "unused = {}",
            cov.unused_fraction()
        );
    }

    #[test]
    fn inactive_media_rules_never_match() {
        let css = "@media (max-width: 500px) { div { color: red } }";
        let (mut rec, mut doc, mut engine) = setup(css); // desktop viewport
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        let styles = engine.style_document(&mut rec, &doc);
        assert_eq!(styles.style(el).unwrap().color, Color::BLACK); // initial
        assert_eq!(engine.coverage().used_bytes, 0);
    }

    #[test]
    fn partial_restyle_updates_subtree_only() {
        let (mut rec, mut doc, mut engine) = setup("div { width: 10px }");
        let a = doc.create_element(&mut rec, "div", &[]);
        let b = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), a);
        doc.append_child(&mut rec, a, b);
        let mut map = engine.style_document(&mut rec, &doc);
        // Mutate: b gets an inline width; restyle only b.
        doc.set_attribute(&mut rec, b, "style", "width: 99px", &[]);
        engine.style_subtree(&mut rec, &doc, b, &mut map);
        assert_eq!(map.style(b).unwrap().width, Length::Px(99.0));
        assert_eq!(map.style(a).unwrap().width, Length::Px(10.0));
    }

    #[test]
    fn style_resolution_emits_rule_reads() {
        let (mut rec, mut doc, mut engine) = setup("div { color: red }");
        let el = doc.create_element(&mut rec, "div", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        let styles = engine.style_document(&mut rec, &doc);
        let cells = styles.cells(el).unwrap();
        let trace = rec.finish();
        // Something writes the element's paint cell.
        assert!(trace
            .iter()
            .any(|i| i.mem_writes().iter().any(|w| w.contains(cells.paint))));
    }

    #[test]
    fn unstyled_elements_fall_back_to_initial() {
        let (mut rec, mut doc, mut engine) = setup("");
        let el = doc.create_element(&mut rec, "custom-tag", &[]);
        doc.append_child(&mut rec, doc.root(), el);
        let styles = engine.style_document(&mut rec, &doc);
        assert_eq!(*styles.style(el).unwrap(), {
            let mut s = ComputedStyle::initial();
            s.display = Display::Block;
            s
        });
    }
}
