//! Selectors: parsing, specificity, and matching.

use wasteprof_dom::{Document, NodeId};

/// A compound selector: everything between combinators,
/// e.g. `div#main.card:hover`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Compound {
    /// Tag name to match (lowercase), if any.
    pub tag: Option<String>,
    /// `#id` to match, if any.
    pub id: Option<String>,
    /// `.class`es that must all be present.
    pub classes: Vec<String>,
    /// Pseudo-classes (`:hover`, `:focus`, ...). The engine models no
    /// interactive pseudo-state, so any pseudo-class makes the compound
    /// unmatched — exactly the kind of imported-but-never-applied rule the
    /// paper counts as unused bytes.
    pub pseudos: Vec<String>,
}

impl Compound {
    fn is_empty(&self) -> bool {
        self.tag.is_none()
            && self.id.is_none()
            && self.classes.is_empty()
            && self.pseudos.is_empty()
    }

    /// Tests this compound against one element.
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        let n = doc.node(node);
        if !n.is_element() {
            return false;
        }
        if !self.pseudos.is_empty() {
            return false;
        }
        if let Some(tag) = &self.tag {
            if n.tag() != Some(tag.as_str()) {
                return false;
            }
        }
        if let Some(id) = &self.id {
            if n.id() != Some(id.as_str()) {
                return false;
            }
        }
        self.classes.iter().all(|c| n.has_class(c))
    }
}

/// Combinators between compounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combinator {
    /// Whitespace: ancestor.
    Descendant,
    /// `>`: parent.
    Child,
}

/// A complex selector: a chain of compounds joined by combinators, e.g.
/// `nav > ul li.active`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// Compounds right-to-left: `parts[0]` is the subject (rightmost).
    pub parts: Vec<Compound>,
    /// `combinators[i]` joins `parts[i]` to `parts[i + 1]`.
    pub combinators: Vec<Combinator>,
}

impl Selector {
    /// Parses one complex selector. Returns `None` for empty/garbage input.
    pub fn parse(s: &str) -> Option<Selector> {
        let mut parts = Vec::new();
        let mut combinators = Vec::new();
        // Tokenize into compounds and combinators, left to right.
        let mut rest = s.trim();
        if rest.is_empty() {
            return None;
        }
        let mut pending: Option<Combinator> = None;
        while !rest.is_empty() {
            if let Some(r) = rest.strip_prefix('>') {
                pending = Some(Combinator::Child);
                rest = r.trim_start();
                continue;
            }
            let end = rest
                .find(|c: char| c.is_whitespace() || c == '>')
                .unwrap_or(rest.len());
            let (tok, r) = rest.split_at(end);
            let compound = parse_compound(tok)?;
            if compound.is_empty() && tok != "*" {
                return None;
            }
            if !parts.is_empty() {
                combinators.push(pending.take().unwrap_or(Combinator::Descendant));
            } else {
                pending = None;
            }
            parts.push(compound);
            rest = r.trim_start();
        }
        if parts.is_empty() {
            return None;
        }
        // Store right-to-left (subject first).
        parts.reverse();
        combinators.reverse();
        Some(Selector { parts, combinators })
    }

    /// Specificity as `(ids, classes + pseudos, tags)` packed into one
    /// number: higher wins.
    pub fn specificity(&self) -> u32 {
        let mut ids = 0;
        let mut classes = 0;
        let mut tags = 0;
        for p in &self.parts {
            ids += p.id.is_some() as u32;
            classes += p.classes.len() as u32 + p.pseudos.len() as u32;
            tags += p.tag.is_some() as u32;
        }
        ids * 10_000 + classes * 100 + tags
    }

    /// The subject (rightmost) compound.
    pub fn subject(&self) -> &Compound {
        &self.parts[0]
    }

    /// Tests the selector against one element, walking ancestors for
    /// combinators (with backtracking: a descendant combinator may bind
    /// *any* matching ancestor, not just the nearest one).
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        if !self.parts[0].matches(doc, node) {
            return false;
        }
        self.matches_from(doc, node, 1)
    }

    /// Matches `parts[idx..]` with the element bound to `parts[idx - 1]`
    /// at `current`.
    fn matches_from(&self, doc: &Document, current: NodeId, idx: usize) -> bool {
        let Some(part) = self.parts.get(idx) else {
            return true;
        };
        match self.combinators[idx - 1] {
            Combinator::Child => {
                let Some(parent) = doc.node(current).parent else {
                    return false;
                };
                part.matches(doc, parent) && self.matches_from(doc, parent, idx + 1)
            }
            Combinator::Descendant => {
                // Try every matching ancestor: the nearest one may fail
                // the rest of the chain while a higher one succeeds
                // (`a > b c` against c-in-b1-in-b2-in-a).
                let mut cursor = doc.node(current).parent;
                while let Some(p) = cursor {
                    if part.matches(doc, p) && self.matches_from(doc, p, idx + 1) {
                        return true;
                    }
                    cursor = doc.node(p).parent;
                }
                false
            }
        }
    }
}

fn parse_compound(tok: &str) -> Option<Compound> {
    let mut c = Compound::default();
    let mut rest = tok;
    if rest == "*" {
        return Some(Compound {
            tag: None,
            ..Default::default()
        });
    }
    // Leading tag name.
    let tag_end = rest.find(['#', '.', ':']).unwrap_or(rest.len());
    if tag_end > 0 {
        let tag = &rest[..tag_end];
        if !tag
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || ch == '-' || ch == '_')
        {
            return None;
        }
        c.tag = Some(tag.to_ascii_lowercase());
        rest = &rest[tag_end..];
    }
    while !rest.is_empty() {
        let kind = rest.chars().next().unwrap();
        rest = &rest[1..];
        let end = rest.find(['#', '.', ':']).unwrap_or(rest.len());
        let name = &rest[..end];
        if name.is_empty() {
            return None;
        }
        match kind {
            '#' => c.id = Some(name.to_owned()),
            '.' => c.classes.push(name.to_owned()),
            ':' => c.pseudos.push(name.to_owned()),
            _ => return None,
        }
        rest = &rest[end..];
    }
    Some(c)
}

/// A key for bucketing rules by their subject compound, the standard
/// rule-hash optimization real engines use so that each element only tests
/// candidate rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BucketKey {
    /// Subject has `#id`.
    Id(String),
    /// Subject's first class.
    Class(String),
    /// Subject's tag.
    Tag(String),
    /// Universal bucket (tested against everything).
    Universal,
}

impl BucketKey {
    /// The bucket a selector belongs in (most selective component wins).
    pub fn of(sel: &Selector) -> BucketKey {
        let s = sel.subject();
        if let Some(id) = &s.id {
            BucketKey::Id(id.clone())
        } else if let Some(class) = s.classes.first() {
            BucketKey::Class(class.clone())
        } else if let Some(tag) = &s.tag {
            BucketKey::Tag(tag.clone())
        } else {
            BucketKey::Universal
        }
    }

    /// Bucket keys an element can possibly match.
    pub fn for_element(doc: &Document, node: NodeId) -> Vec<BucketKey> {
        let n = doc.node(node);
        let mut keys = vec![BucketKey::Universal];
        if let Some(tag) = n.tag() {
            keys.push(BucketKey::Tag(tag.to_owned()));
        }
        if let Some(id) = n.id() {
            keys.push(BucketKey::Id(id.to_owned()));
        }
        for class in n.classes() {
            keys.push(BucketKey::Class(class.to_owned()));
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::{Recorder, ThreadKind};

    fn doc() -> (Recorder, Document, NodeId, NodeId, NodeId) {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut doc = Document::new(&mut rec);
        let nav = doc.create_element(&mut rec, "nav", &[]);
        let ul = doc.create_element(&mut rec, "ul", &[]);
        let li = doc.create_element(&mut rec, "li", &[]);
        doc.set_attribute(&mut rec, li, "class", "active item", &[]);
        doc.set_attribute(&mut rec, li, "id", "first", &[]);
        doc.append_child(&mut rec, doc.root(), nav);
        doc.append_child(&mut rec, nav, ul);
        doc.append_child(&mut rec, ul, li);
        (rec, doc, nav, ul, li)
    }

    #[test]
    fn parse_compound_selector() {
        let s = Selector::parse("div#main.card.wide").unwrap();
        assert_eq!(s.parts.len(), 1);
        let c = &s.parts[0];
        assert_eq!(c.tag.as_deref(), Some("div"));
        assert_eq!(c.id.as_deref(), Some("main"));
        assert_eq!(c.classes, vec!["card", "wide"]);
    }

    #[test]
    fn parse_complex_selector_right_to_left() {
        let s = Selector::parse("nav > ul li.active").unwrap();
        assert_eq!(s.parts.len(), 3);
        assert_eq!(s.parts[0].classes, vec!["active"]); // subject
        assert_eq!(s.parts[1].tag.as_deref(), Some("ul"));
        assert_eq!(s.parts[2].tag.as_deref(), Some("nav"));
        assert_eq!(
            s.combinators,
            vec![Combinator::Descendant, Combinator::Child]
        );
    }

    #[test]
    fn specificity_ordering() {
        let id = Selector::parse("#x").unwrap().specificity();
        let class = Selector::parse(".x").unwrap().specificity();
        let tag = Selector::parse("div").unwrap().specificity();
        let combo = Selector::parse("div.x").unwrap().specificity();
        assert!(id > class && class > tag);
        assert!(combo > class);
        assert_eq!(
            Selector::parse("div:hover").unwrap().specificity(),
            class + tag
        );
    }

    #[test]
    fn matching_walks_ancestors() {
        let (_rec, doc, _nav, _ul, li) = doc();
        assert!(Selector::parse("li").unwrap().matches(&doc, li));
        assert!(Selector::parse(".active").unwrap().matches(&doc, li));
        assert!(Selector::parse("#first").unwrap().matches(&doc, li));
        assert!(Selector::parse("nav li").unwrap().matches(&doc, li));
        assert!(Selector::parse("nav > ul > li").unwrap().matches(&doc, li));
        assert!(Selector::parse("ul > li.active").unwrap().matches(&doc, li));
        assert!(!Selector::parse("nav > li").unwrap().matches(&doc, li)); // li is not a direct child of nav
        assert!(!Selector::parse("section li").unwrap().matches(&doc, li));
        assert!(!Selector::parse(".missing").unwrap().matches(&doc, li));
    }

    #[test]
    fn descendant_combinator_backtracks() {
        // DOM: a > b2 > b1 > c. Selector `a > b c`: the nearest `b` (b1)
        // is not a child of `a`, but b2 is — greedy matching would fail.
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let mut doc = Document::new(&mut rec);
        let a = doc.create_element(&mut rec, "a", &[]);
        let b2 = doc.create_element(&mut rec, "b", &[]);
        let b1 = doc.create_element(&mut rec, "b", &[]);
        let c = doc.create_element(&mut rec, "c", &[]);
        let root = doc.root();
        doc.append_child(&mut rec, root, a);
        doc.append_child(&mut rec, a, b2);
        doc.append_child(&mut rec, b2, b1);
        doc.append_child(&mut rec, b1, c);
        assert!(Selector::parse("a > b c").unwrap().matches(&doc, c));
        assert!(!Selector::parse("c > b a").unwrap().matches(&doc, c));
    }

    #[test]
    fn pseudo_classes_never_match() {
        let (_rec, doc, .., li) = doc();
        assert!(!Selector::parse("li:hover").unwrap().matches(&doc, li));
        assert!(!Selector::parse(":focus").unwrap().matches(&doc, li));
    }

    #[test]
    fn garbage_selectors_rejected() {
        assert!(Selector::parse("").is_none());
        assert!(Selector::parse("  ").is_none());
        assert!(Selector::parse("div..x").is_none());
        assert!(Selector::parse("#").is_none());
    }

    #[test]
    fn bucket_keys_prefer_id_then_class_then_tag() {
        assert_eq!(
            BucketKey::of(&Selector::parse("div#a.b").unwrap()),
            BucketKey::Id("a".into())
        );
        assert_eq!(
            BucketKey::of(&Selector::parse("div.b").unwrap()),
            BucketKey::Class("b".into())
        );
        assert_eq!(
            BucketKey::of(&Selector::parse("div").unwrap()),
            BucketKey::Tag("div".into())
        );
        assert_eq!(
            BucketKey::of(&Selector::parse("*").unwrap()),
            BucketKey::Universal
        );
    }

    #[test]
    fn element_bucket_keys_cover_all_components() {
        let (_rec, doc, .., li) = doc();
        let keys = BucketKey::for_element(&doc, li);
        assert!(keys.contains(&BucketKey::Universal));
        assert!(keys.contains(&BucketKey::Tag("li".into())));
        assert!(keys.contains(&BucketKey::Id("first".into())));
        assert!(keys.contains(&BucketKey::Class("active".into())));
        assert!(keys.contains(&BucketKey::Class("item".into())));
    }
}
