//! CSS parsing: declarations, rules, stylesheets, and media queries.

use wasteprof_trace::{site, Addr, AddrRange, Recorder, Region};

use crate::selector::Selector;
use crate::values::{edge, Color, ComputedStyle, Display, Length, Position, TextAlign};

/// One parsed declaration (property: value).
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `display`.
    Display(Display),
    /// `position`.
    Position(Position),
    /// `width`.
    Width(Length),
    /// `height`.
    Height(Length),
    /// One margin edge (see [`edge`]).
    Margin(usize, Length),
    /// One padding edge.
    Padding(usize, Length),
    /// `border-width` in pixels.
    BorderWidth(f32),
    /// `border-color`.
    BorderColor(Color),
    /// `color`.
    Color(Color),
    /// `background-color`.
    Background(Color),
    /// `font-size`.
    FontSize(Length),
    /// `line-height` multiplier or length.
    LineHeight(f32),
    /// `z-index`.
    ZIndex(i32),
    /// `opacity`.
    Opacity(f32),
    /// `visibility: hidden|visible`.
    Visible(bool),
    /// One offset edge (`top`/`right`/`bottom`/`left`).
    Offset(usize, Length),
    /// `text-align`.
    TextAlign(TextAlign),
    /// `will-change` (any value counts as a compositing hint).
    WillChange,
    /// `overflow: hidden`.
    OverflowHidden,
}

impl Decl {
    /// Parses a single `name: value` pair. Returns all declarations it
    /// expands to (shorthands expand to several), or an empty vector for
    /// unsupported/invalid properties (which real engines also skip).
    pub fn parse(name: &str, value: &str) -> Vec<Decl> {
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        let one = |d: Decl| vec![d];
        match name.as_str() {
            "display" => match value {
                "block" => one(Decl::Display(Display::Block)),
                "inline" => one(Decl::Display(Display::Inline)),
                "inline-block" => one(Decl::Display(Display::InlineBlock)),
                "none" => one(Decl::Display(Display::None)),
                _ => vec![],
            },
            "position" => match value {
                "static" => one(Decl::Position(Position::Static)),
                "relative" => one(Decl::Position(Position::Relative)),
                "absolute" => one(Decl::Position(Position::Absolute)),
                "fixed" => one(Decl::Position(Position::Fixed)),
                _ => vec![],
            },
            "width" => Length::parse(value).map(Decl::Width).into_iter().collect(),
            "height" => Length::parse(value).map(Decl::Height).into_iter().collect(),
            "margin" => expand_box(value, Decl::Margin),
            "margin-top" => edge_decl(value, edge::TOP, Decl::Margin),
            "margin-right" => edge_decl(value, edge::RIGHT, Decl::Margin),
            "margin-bottom" => edge_decl(value, edge::BOTTOM, Decl::Margin),
            "margin-left" => edge_decl(value, edge::LEFT, Decl::Margin),
            "padding" => expand_box(value, Decl::Padding),
            "padding-top" => edge_decl(value, edge::TOP, Decl::Padding),
            "padding-right" => edge_decl(value, edge::RIGHT, Decl::Padding),
            "padding-bottom" => edge_decl(value, edge::BOTTOM, Decl::Padding),
            "padding-left" => edge_decl(value, edge::LEFT, Decl::Padding),
            "border" => {
                // e.g. "1px solid red"
                let mut out = Vec::new();
                for part in value.split_whitespace() {
                    if let Some(Length::Px(w)) = Length::parse(part) {
                        out.push(Decl::BorderWidth(w));
                    } else if let Some(c) = Color::parse(part) {
                        out.push(Decl::BorderColor(c));
                    }
                }
                out
            }
            "border-width" => match Length::parse(value) {
                Some(Length::Px(w)) => one(Decl::BorderWidth(w)),
                _ => vec![],
            },
            "border-color" => Color::parse(value)
                .map(Decl::BorderColor)
                .into_iter()
                .collect(),
            "color" => Color::parse(value).map(Decl::Color).into_iter().collect(),
            "background" | "background-color" => Color::parse(value)
                .map(Decl::Background)
                .into_iter()
                .collect(),
            "font-size" => Length::parse(value)
                .map(Decl::FontSize)
                .into_iter()
                .collect(),
            "line-height" => value
                .parse::<f32>()
                .map(Decl::LineHeight)
                .into_iter()
                .collect(),
            "z-index" => value.parse::<i32>().map(Decl::ZIndex).into_iter().collect(),
            "opacity" => value
                .parse::<f32>()
                .ok()
                .map(|v| Decl::Opacity(v.clamp(0.0, 1.0)))
                .into_iter()
                .collect(),
            "visibility" => match value {
                "hidden" => one(Decl::Visible(false)),
                "visible" => one(Decl::Visible(true)),
                _ => vec![],
            },
            "top" => edge_decl(value, edge::TOP, Decl::Offset),
            "right" => edge_decl(value, edge::RIGHT, Decl::Offset),
            "bottom" => edge_decl(value, edge::BOTTOM, Decl::Offset),
            "left" => edge_decl(value, edge::LEFT, Decl::Offset),
            "text-align" => match value {
                "left" => one(Decl::TextAlign(TextAlign::Left)),
                "center" => one(Decl::TextAlign(TextAlign::Center)),
                "right" => one(Decl::TextAlign(TextAlign::Right)),
                _ => vec![],
            },
            "will-change" => one(Decl::WillChange),
            "overflow" => match value {
                "hidden" => one(Decl::OverflowHidden),
                _ => vec![],
            },
            _ => vec![],
        }
    }

    /// Applies the declaration to a computed style.
    pub fn apply(&self, s: &mut ComputedStyle) {
        match *self {
            Decl::Display(v) => s.display = v,
            Decl::Position(v) => s.position = v,
            Decl::Width(v) => s.width = v,
            Decl::Height(v) => s.height = v,
            Decl::Margin(e, v) => s.margin[e] = v,
            Decl::Padding(e, v) => s.padding[e] = v,
            Decl::BorderWidth(v) => s.border_width = v,
            Decl::BorderColor(v) => s.border_color = v,
            Decl::Color(v) => s.color = v,
            Decl::Background(v) => s.background = v,
            Decl::FontSize(v) => {
                // em/% against the inherited size, which is already in s.
                let parent = s.font_size;
                s.font_size = v.resolve(parent, parent, parent);
                // A unitless line-height tracks the final font size
                // regardless of declaration order; `normal` recomputes;
                // an explicit length stays as computed.
                match s.line_height_factor {
                    Some(f) => s.line_height = f * s.font_size,
                    None if !s.line_height_explicit => s.line_height = s.font_size * 1.2,
                    None => {}
                }
            }
            Decl::LineHeight(v) => {
                s.line_height = v * s.font_size;
                s.line_height_factor = Some(v);
                s.line_height_explicit = true;
            }
            Decl::ZIndex(v) => s.z_index = Some(v),
            Decl::Opacity(v) => s.opacity = v,
            Decl::Visible(v) => s.visible = v,
            Decl::Offset(e, v) => s.offsets[e] = v,
            Decl::TextAlign(v) => s.text_align = v,
            Decl::WillChange => s.will_change = true,
            Decl::OverflowHidden => s.overflow_hidden = true,
        }
    }
}

fn edge_decl(value: &str, e: usize, ctor: fn(usize, Length) -> Decl) -> Vec<Decl> {
    Length::parse(value)
        .map(|l| ctor(e, l))
        .into_iter()
        .collect()
}

/// Expands 1/2/4-value box shorthands (`margin: 4px 8px`).
fn expand_box(value: &str, ctor: fn(usize, Length) -> Decl) -> Vec<Decl> {
    let vals: Option<Vec<Length>> = value.split_whitespace().map(Length::parse).collect();
    let Some(vals) = vals else { return vec![] };
    let [t, r, b, l] = match vals.as_slice() {
        [v] => [*v; 4],
        [v, h] => [*v, *h, *v, *h],
        [t, r, b, l] => [*t, *r, *b, *l],
        _ => return vec![],
    };
    vec![
        ctor(edge::TOP, t),
        ctor(edge::RIGHT, r),
        ctor(edge::BOTTOM, b),
        ctor(edge::LEFT, l),
    ]
}

/// One style rule: selectors, declarations, and trace/coverage metadata.
#[derive(Debug, Clone)]
pub struct StyleRule {
    /// Selector list (comma-separated in source).
    pub selectors: Vec<Selector>,
    /// Parsed declarations.
    pub decls: Vec<Decl>,
    /// Trace cell holding the parsed rule.
    pub cell: Addr,
    /// Source bytes of the rule (selector + block), for Table I coverage.
    pub bytes: u32,
    /// False if the enclosing `@media` did not match the viewport; the
    /// rule was still parsed (work!) but can never apply.
    pub active: bool,
}

/// A parsed stylesheet.
#[derive(Debug, Clone)]
pub struct Stylesheet {
    /// Rules in source order.
    pub rules: Vec<StyleRule>,
    /// Total source bytes (including comments/whitespace), for coverage.
    pub total_bytes: u64,
    /// Where the sheet came from (URL or "inline").
    pub origin: String,
}

/// Viewport used to evaluate media queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// CSS pixels.
    pub width: f32,
    /// CSS pixels.
    pub height: f32,
}

impl Viewport {
    /// A common desktop viewport.
    pub const DESKTOP: Viewport = Viewport {
        width: 1366.0,
        height: 768.0,
    };
    /// The paper's emulated mobile display (§V-A): 360×640.
    pub const MOBILE: Viewport = Viewport {
        width: 360.0,
        height: 640.0,
    };
}

/// Parses `text` into a stylesheet, emitting parse work into the trace.
///
/// `src` must be the input cells holding the sheet's bytes; each rule's
/// parse instruction reads its span of `src`. Media queries are evaluated
/// against `viewport`; rules inside non-matching blocks are parsed but
/// marked inactive.
pub fn parse_stylesheet(
    rec: &mut Recorder,
    text: &str,
    src: AddrRange,
    viewport: Viewport,
    origin: &str,
) -> Stylesheet {
    let func = rec.intern_func("blink::css::CssParser::ParseSheet");
    rec.in_func(site!(), func, |rec| {
        let mut sheet = Stylesheet {
            rules: Vec::new(),
            total_bytes: text.len() as u64,
            origin: origin.to_owned(),
        };
        let stripped = strip_comments(text);
        parse_block(rec, &stripped, 0, src, viewport, true, &mut sheet);
        sheet
    })
}

/// Strips `/* ... */` comments, preserving byte offsets by replacing the
/// comment bytes with spaces.
fn strip_comments(text: &str) -> String {
    let mut out = text.as_bytes().to_vec();
    let mut i = 0;
    while i + 1 < out.len() {
        if out[i] == b'/' && out[i + 1] == b'*' {
            let start = i;
            i += 2;
            while i + 1 < out.len() && !(out[i] == b'*' && out[i + 1] == b'/') {
                i += 1;
            }
            let end = (i + 2).min(out.len());
            for b in &mut out[start..end] {
                *b = b' ';
            }
            i = end;
        } else {
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_block(
    rec: &mut Recorder,
    text: &str,
    base_off: u32,
    src: AddrRange,
    viewport: Viewport,
    active: bool,
    sheet: &mut Stylesheet,
) {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let rule_start = i;
        if bytes[i] == b'@' {
            // Block-less at-rules (@import, @charset, @namespace) end at
            // the first semicolon; consuming the next rule's brace block
            // here would swallow that rule.
            let semi = find(bytes, i, b';');
            let brace = find(bytes, i, b'{');
            if let Some(semi) = semi {
                if brace.is_none() || semi < brace.unwrap() {
                    i = semi + 1;
                    continue;
                }
            }
            // Braced at-rule: find its prelude and block.
            let Some(brace) = brace else { break };
            let prelude = text[i..brace].trim().to_owned();
            let Some(close) = matching_brace(bytes, brace) else {
                break;
            };
            let inner = &text[brace + 1..close];
            if let Some(cond) = prelude.strip_prefix("@media") {
                let matches = eval_media(cond, viewport);
                parse_block(
                    rec,
                    inner,
                    base_off + brace as u32 + 1,
                    src,
                    viewport,
                    active && matches,
                    sheet,
                );
            }
            // Other at-rules (@font-face, @keyframes, ...): parsed cost but
            // no rules produced.
            i = close + 1;
            continue;
        }
        let Some(brace) = find(bytes, i, b'{') else {
            break;
        };
        let Some(close) = matching_brace(bytes, brace) else {
            break;
        };
        let selector_text = &text[i..brace];
        let block = &text[brace + 1..close];
        i = close + 1;

        let selectors: Vec<Selector> = selector_text
            .split(',')
            .filter_map(Selector::parse)
            .collect();
        let mut decls = Vec::new();
        for decl in block.split(';') {
            if let Some((name, value)) = decl.split_once(':') {
                decls.extend(Decl::parse(name, value));
            }
        }
        if selectors.is_empty() {
            continue;
        }
        let rule_bytes = (i - rule_start) as u32;
        let cell = rec.alloc_cell(Region::Heap);
        let span_off = base_off + rule_start as u32;
        let span = if (span_off + rule_bytes) <= src.len() {
            src.slice(span_off, rule_bytes.max(1))
        } else {
            src
        };
        // Parsing cost scales with rule size.
        rec.compute_weighted(site!(), &[span], &[cell.into()], rule_bytes / 12);
        sheet.rules.push(StyleRule {
            selectors,
            decls,
            cell,
            bytes: rule_bytes,
            active,
        });
    }
}

fn find(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| from + p)
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Evaluates a media condition: `(max-width: 700px)` terms joined by
/// `and`. Unknown terms evaluate to true (permissive, like `screen`).
fn eval_media(cond: &str, viewport: Viewport) -> bool {
    cond.split(" and ").all(|term| {
        let term = term.trim().trim_start_matches('(').trim_end_matches(')');
        if let Some((k, v)) = term.split_once(':') {
            let px = v
                .trim()
                .strip_suffix("px")
                .and_then(|n| n.trim().parse::<f32>().ok());
            match (k.trim(), px) {
                ("max-width", Some(px)) => viewport.width <= px,
                ("min-width", Some(px)) => viewport.width >= px,
                ("max-height", Some(px)) => viewport.height <= px,
                ("min-height", Some(px)) => viewport.height >= px,
                _ => true,
            }
        } else {
            true // bare media type like "screen"
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasteprof_trace::ThreadKind;

    fn parse(text: &str, viewport: Viewport) -> Stylesheet {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let src = rec.alloc(Region::Input, text.len().max(1) as u32);
        parse_stylesheet(&mut rec, text, src, viewport, "test")
    }

    #[test]
    fn simple_rule() {
        let s = parse(".card { color: red; width: 100px }", Viewport::DESKTOP);
        assert_eq!(s.rules.len(), 1);
        let r = &s.rules[0];
        assert_eq!(r.selectors.len(), 1);
        assert!(r.decls.contains(&Decl::Color(Color::rgb(255, 0, 0))));
        assert!(r.decls.contains(&Decl::Width(Length::Px(100.0))));
        assert!(r.active);
    }

    #[test]
    fn selector_lists_and_multiple_rules() {
        let s = parse("h1, h2 { margin: 0 } p { color: blue }", Viewport::DESKTOP);
        assert_eq!(s.rules.len(), 2);
        assert_eq!(s.rules[0].selectors.len(), 2);
        assert_eq!(s.rules[0].decls.len(), 4); // margin expands to 4 edges
    }

    #[test]
    fn shorthand_expansion() {
        let d = Decl::parse("margin", "1px 2px");
        assert_eq!(
            d,
            vec![
                Decl::Margin(edge::TOP, Length::Px(1.0)),
                Decl::Margin(edge::RIGHT, Length::Px(2.0)),
                Decl::Margin(edge::BOTTOM, Length::Px(1.0)),
                Decl::Margin(edge::LEFT, Length::Px(2.0)),
            ]
        );
        let b = Decl::parse("border", "2px solid red");
        assert!(b.contains(&Decl::BorderWidth(2.0)));
        assert!(b.contains(&Decl::BorderColor(Color::rgb(255, 0, 0))));
    }

    #[test]
    fn unknown_properties_skipped() {
        assert!(Decl::parse("backdrop-filter", "blur(4px)").is_empty());
        assert!(Decl::parse("width", "min-content").is_empty());
        let s = parse(".x { flex-grow: 1; color: red }", Viewport::DESKTOP);
        assert_eq!(s.rules[0].decls.len(), 1);
    }

    #[test]
    fn comments_stripped_but_bytes_counted() {
        let text = "/* header */ .x { color: red }";
        let s = parse(text, Viewport::DESKTOP);
        assert_eq!(s.rules.len(), 1);
        assert_eq!(s.total_bytes, text.len() as u64);
    }

    #[test]
    fn media_query_matches_viewport() {
        let text = "@media (max-width: 700px) { .m { color: red } } .d { color: blue }";
        let mobile = parse(text, Viewport::MOBILE);
        assert_eq!(mobile.rules.len(), 2);
        assert!(mobile.rules.iter().all(|r| r.active));
        let desktop = parse(text, Viewport::DESKTOP);
        let m = desktop.rules.iter().find(|r| r.bytes < 30).unwrap();
        assert!(!m.active, "mobile-only rule active on desktop");
    }

    #[test]
    fn media_and_conditions() {
        assert!(eval_media(
            "(min-width: 100px) and (max-width: 500px)",
            Viewport::MOBILE
        ));
        assert!(!eval_media("(min-width: 1000px)", Viewport::MOBILE));
        assert!(eval_media("screen", Viewport::MOBILE));
    }

    #[test]
    fn nested_at_rules_do_not_derail_parsing() {
        let text = "@keyframes spin { from { x: 0 } to { x: 1 } } .x { color: red }";
        let s = parse(text, Viewport::DESKTOP);
        assert_eq!(s.rules.len(), 1);
    }

    #[test]
    fn decl_apply_font_size_em() {
        let mut style = ComputedStyle {
            font_size: 20.0,
            ..Default::default()
        };
        Decl::FontSize(Length::Em(1.5)).apply(&mut style);
        assert_eq!(style.font_size, 30.0);
        assert!((style.line_height - 36.0).abs() < 1e-5);
    }

    #[test]
    fn unitless_line_height_is_order_independent() {
        // CSS resolves a unitless factor against the element's final font
        // size, so declaration order must not matter.
        let mut a = ComputedStyle {
            font_size: 16.0,
            ..Default::default()
        };
        Decl::LineHeight(2.0).apply(&mut a);
        Decl::FontSize(Length::Px(10.0)).apply(&mut a);
        let mut b = ComputedStyle {
            font_size: 16.0,
            ..Default::default()
        };
        Decl::FontSize(Length::Px(10.0)).apply(&mut b);
        Decl::LineHeight(2.0).apply(&mut b);
        assert_eq!(a.line_height, 20.0);
        assert_eq!(b.line_height, 20.0);
    }

    #[test]
    fn unitless_line_height_inherits_as_factor() {
        let mut parent = ComputedStyle::default();
        Decl::LineHeight(2.0).apply(&mut parent);
        let mut child = ComputedStyle::inherited_from(&parent);
        Decl::FontSize(Length::Px(10.0)).apply(&mut child);
        assert_eq!(child.line_height, 20.0);
    }

    #[test]
    fn rule_parse_emits_reads_of_source_span() {
        let mut rec = Recorder::new();
        rec.spawn_thread(ThreadKind::Main, "root");
        let text = ".x { color: red }";
        let src = rec.alloc(Region::Input, text.len() as u32);
        let sheet = parse_stylesheet(&mut rec, text, src, Viewport::DESKTOP, "t");
        let cell = sheet.rules[0].cell;
        let trace = rec.finish();
        assert!(trace
            .iter()
            .any(|i| i.mem_writes().iter().any(|w| w.contains(cell))));
        assert!(trace
            .iter()
            .any(|i| i.mem_reads().iter().any(|r| src.overlaps(*r))));
    }
}
