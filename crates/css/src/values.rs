//! CSS value types and the computed style.

use std::fmt;

/// An RGBA color.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
    /// Alpha channel (255 = opaque).
    pub a: u8,
}

impl Color {
    /// Fully transparent black.
    pub const TRANSPARENT: Color = Color {
        r: 0,
        g: 0,
        b: 0,
        a: 0,
    };
    /// Opaque black.
    pub const BLACK: Color = Color {
        r: 0,
        g: 0,
        b: 0,
        a: 255,
    };
    /// Opaque white.
    pub const WHITE: Color = Color {
        r: 255,
        g: 255,
        b: 255,
        a: 255,
    };

    /// Opaque color from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b, a: 255 }
    }

    /// True if the color hides everything behind it.
    pub fn is_opaque(self) -> bool {
        self.a == 255
    }

    /// Parses `#rgb`, `#rrggbb`, a small named set, or
    /// `rgb(...)`/`rgba(...)`.
    pub fn parse(s: &str) -> Option<Color> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix('#') {
            return match hex.len() {
                3 => {
                    let v: Vec<u8> = hex
                        .chars()
                        .map(|c| c.to_digit(16).map(|d| (d * 17) as u8))
                        .collect::<Option<_>>()?;
                    Some(Color::rgb(v[0], v[1], v[2]))
                }
                6 => {
                    let v = u32::from_str_radix(hex, 16).ok()?;
                    Some(Color::rgb((v >> 16) as u8, (v >> 8) as u8, v as u8))
                }
                _ => None,
            };
        }
        if let Some(inner) = s.strip_prefix("rgba(").and_then(|x| x.strip_suffix(')')) {
            let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
            if parts.len() == 4 {
                let a = (parts[3].parse::<f32>().ok()?.clamp(0.0, 1.0) * 255.0) as u8;
                return Some(Color {
                    r: parts[0].parse().ok()?,
                    g: parts[1].parse().ok()?,
                    b: parts[2].parse().ok()?,
                    a,
                });
            }
            return None;
        }
        if let Some(inner) = s.strip_prefix("rgb(").and_then(|x| x.strip_suffix(')')) {
            let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
            if parts.len() == 3 {
                return Some(Color::rgb(
                    parts[0].parse().ok()?,
                    parts[1].parse().ok()?,
                    parts[2].parse().ok()?,
                ));
            }
            return None;
        }
        match s {
            "black" => Some(Color::BLACK),
            "white" => Some(Color::WHITE),
            "red" => Some(Color::rgb(255, 0, 0)),
            "green" => Some(Color::rgb(0, 128, 0)),
            "blue" => Some(Color::rgb(0, 0, 255)),
            "gray" | "grey" => Some(Color::rgb(128, 128, 128)),
            "orange" => Some(Color::rgb(255, 165, 0)),
            "yellow" => Some(Color::rgb(255, 255, 0)),
            "transparent" => Some(Color::TRANSPARENT),
            _ => None,
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rgba({},{},{},{})", self.r, self.g, self.b, self.a)
    }
}

/// A CSS length or the `auto` keyword.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Length {
    /// Absolute pixels.
    Px(f32),
    /// Percentage of the containing block (resolved at layout).
    Percent(f32),
    /// Relative to the element's font size (resolved at cascade).
    Em(f32),
    /// `auto`.
    #[default]
    Auto,
}

impl Length {
    /// Zero pixels.
    pub const ZERO: Length = Length::Px(0.0);

    /// Parses `12px`, `50%`, `1.5em`, `0`, or `auto`.
    pub fn parse(s: &str) -> Option<Length> {
        // Absurd magnitudes (1e11px, inf, NaN) would ask downstream layout
        // and tiling for unbounded memory; clamp to a generous page-scale
        // maximum like real engines do (Blink caps layout at ~2^25 px).
        fn sane(v: f32) -> Option<f32> {
            const MAX: f32 = 33_554_432.0; // 2^25
            v.is_finite().then(|| v.clamp(-MAX, MAX))
        }
        let s = s.trim();
        if s == "auto" {
            return Some(Length::Auto);
        }
        if s == "0" {
            return Some(Length::ZERO);
        }
        if let Some(v) = s.strip_suffix("px") {
            return v.trim().parse().ok().and_then(sane).map(Length::Px);
        }
        if let Some(v) = s.strip_suffix('%') {
            return v.trim().parse().ok().and_then(sane).map(Length::Percent);
        }
        if let Some(v) = s.strip_suffix("em") {
            return v.trim().parse().ok().and_then(sane).map(Length::Em);
        }
        None
    }

    /// Resolves to pixels given the containing dimension and font size.
    /// `Auto` resolves to `fallback`.
    pub fn resolve(self, containing: f32, font_size: f32, fallback: f32) -> f32 {
        match self {
            Length::Px(v) => v,
            Length::Percent(p) => containing * p / 100.0,
            Length::Em(e) => e * font_size,
            Length::Auto => fallback,
        }
    }

    /// True for `auto`.
    pub fn is_auto(self) -> bool {
        matches!(self, Length::Auto)
    }
}

/// The `display` property (subset).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Display {
    /// Block-level box.
    #[default]
    Block,
    /// Inline box.
    Inline,
    /// Inline-level block container.
    InlineBlock,
    /// Generates no box at all.
    None,
}

/// The `position` property (subset).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Position {
    /// Normal flow.
    #[default]
    Static,
    /// Normal flow, then offset.
    Relative,
    /// Out of flow, positioned against the containing block.
    Absolute,
    /// Out of flow, positioned against the viewport.
    Fixed,
}

/// The `text-align` property (subset).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TextAlign {
    /// Left-aligned.
    #[default]
    Left,
    /// Centered.
    Center,
    /// Right-aligned.
    Right,
}

/// Box edge indices for 4-valued properties: top, right, bottom, left.
pub mod edge {
    /// Top edge.
    pub const TOP: usize = 0;
    /// Right edge.
    pub const RIGHT: usize = 1;
    /// Bottom edge.
    pub const BOTTOM: usize = 2;
    /// Left edge.
    pub const LEFT: usize = 3;
}

/// The fully cascaded, computed style of one element.
#[derive(Clone, PartialEq, Debug)]
pub struct ComputedStyle {
    /// `display`.
    pub display: Display,
    /// `position`.
    pub position: Position,
    /// `width`.
    pub width: Length,
    /// `height`.
    pub height: Length,
    /// `margin-{top,right,bottom,left}`.
    pub margin: [Length; 4],
    /// `padding-{top,right,bottom,left}`.
    pub padding: [Length; 4],
    /// `border-width` (uniform), pixels.
    pub border_width: f32,
    /// `border-color`.
    pub border_color: Color,
    /// `color` (inherited).
    pub color: Color,
    /// `background-color`.
    pub background: Color,
    /// `font-size` in pixels (inherited).
    pub font_size: f32,
    /// `line-height` in pixels (inherited).
    pub line_height: f32,
    /// `z-index` (`None` = auto).
    pub z_index: Option<i32>,
    /// `opacity` in `[0, 1]`.
    pub opacity: f32,
    /// `visibility: visible` (inherited).
    pub visible: bool,
    /// `{top,right,bottom,left}` offsets for positioned boxes.
    pub offsets: [Length; 4],
    /// `text-align` (inherited).
    pub text_align: TextAlign,
    /// `will-change` compositing hint.
    pub will_change: bool,
    /// `overflow: hidden`.
    pub overflow_hidden: bool,
    /// True once `line-height` was set explicitly (so a later `font-size`
    /// in the same cascade does not clobber it).
    pub line_height_explicit: bool,
    /// The unitless `line-height` factor, if one was set. Unitless
    /// line-height resolves against the element's *final* font size (and
    /// inherits as a factor), so it must be kept symbolic until used.
    pub line_height_factor: Option<f32>,
}

impl Default for ComputedStyle {
    fn default() -> Self {
        ComputedStyle {
            display: Display::Block,
            position: Position::Static,
            width: Length::Auto,
            height: Length::Auto,
            margin: [Length::ZERO; 4],
            padding: [Length::ZERO; 4],
            border_width: 0.0,
            border_color: Color::BLACK,
            color: Color::BLACK,
            background: Color::TRANSPARENT,
            font_size: 16.0,
            line_height: 19.2,
            z_index: None,
            opacity: 1.0,
            visible: true,
            offsets: [Length::Auto; 4],
            text_align: TextAlign::Left,
            will_change: false,
            overflow_hidden: false,
            line_height_explicit: false,
            line_height_factor: None,
        }
    }
}

impl ComputedStyle {
    /// The initial style of the root element.
    pub fn initial() -> Self {
        Self::default()
    }

    /// Style inherited from `parent` before any declarations apply.
    pub fn inherited_from(parent: &ComputedStyle) -> Self {
        ComputedStyle {
            color: parent.color,
            font_size: parent.font_size,
            line_height: parent.line_height,
            // A unitless factor inherits symbolically; an explicit length
            // inherits as its computed value (neither is recomputed from
            // the child's `normal` default).
            line_height_factor: parent.line_height_factor,
            line_height_explicit: parent.line_height_explicit,
            visible: parent.visible,
            text_align: parent.text_align,
            ..Self::default()
        }
    }

    /// True if the element creates its own compositing layer (the hints
    /// Chromium's layerization responds to: explicit z-index, reduced
    /// opacity, fixed position, or a `will-change` declaration).
    pub fn wants_layer(&self) -> bool {
        self.z_index.is_some()
            || self.opacity < 1.0
            || self.position == Position::Fixed
            || self.will_change
    }

    /// True if the element paints nothing itself (but children may).
    pub fn is_invisible(&self) -> bool {
        !self.visible || self.opacity == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_hex_colors() {
        assert_eq!(Color::parse("#fff"), Some(Color::WHITE));
        assert_eq!(Color::parse("#000000"), Some(Color::BLACK));
        assert_eq!(Color::parse("#ff8000"), Some(Color::rgb(255, 128, 0)));
        assert_eq!(Color::parse("#zzz"), None);
        assert_eq!(Color::parse("#12345"), None);
    }

    #[test]
    fn parse_functional_and_named_colors() {
        assert_eq!(Color::parse("rgb(1, 2, 3)"), Some(Color::rgb(1, 2, 3)));
        assert_eq!(
            Color::parse("rgba(1,2,3,0.5)"),
            Some(Color {
                r: 1,
                g: 2,
                b: 3,
                a: 127
            })
        );
        assert_eq!(Color::parse("red"), Some(Color::rgb(255, 0, 0)));
        assert_eq!(Color::parse("transparent"), Some(Color::TRANSPARENT));
        assert_eq!(Color::parse("blurple"), None);
    }

    #[test]
    fn parse_lengths() {
        assert_eq!(Length::parse("12px"), Some(Length::Px(12.0)));
        assert_eq!(Length::parse("50%"), Some(Length::Percent(50.0)));
        assert_eq!(Length::parse("1.5em"), Some(Length::Em(1.5)));
        assert_eq!(Length::parse("auto"), Some(Length::Auto));
        assert_eq!(Length::parse("0"), Some(Length::ZERO));
        assert_eq!(Length::parse("12vw"), None);
    }

    #[test]
    fn resolve_lengths() {
        assert_eq!(Length::Px(10.0).resolve(100.0, 16.0, 5.0), 10.0);
        assert_eq!(Length::Percent(50.0).resolve(100.0, 16.0, 5.0), 50.0);
        assert_eq!(Length::Em(2.0).resolve(100.0, 16.0, 5.0), 32.0);
        assert_eq!(Length::Auto.resolve(100.0, 16.0, 5.0), 5.0);
    }

    #[test]
    fn inheritance_copies_inherited_only() {
        let parent = ComputedStyle {
            color: Color::rgb(1, 2, 3),
            font_size: 20.0,
            background: Color::rgb(9, 9, 9),
            ..Default::default()
        };
        let child = ComputedStyle::inherited_from(&parent);
        assert_eq!(child.color, parent.color);
        assert_eq!(child.font_size, 20.0);
        assert_eq!(child.background, Color::TRANSPARENT); // not inherited
    }

    #[test]
    fn layer_hints() {
        let mut s = ComputedStyle::default();
        assert!(!s.wants_layer());
        s.z_index = Some(3);
        assert!(s.wants_layer());
        s = ComputedStyle::default();
        s.opacity = 0.5;
        assert!(s.wants_layer());
        s = ComputedStyle::default();
        s.position = Position::Fixed;
        assert!(s.wants_layer());
    }
}
