#![forbid(unsafe_code)]

//! CSS engine for the wasteprof browser: tokenizer-free recursive parser,
//! selectors with specificity and rule-hash buckets, media queries, the
//! cascade, and unused-rule coverage (the CSS half of the paper's Table I).
//!
//! Style resolution is stage three of the rendering pipeline (paper §II-A):
//! it consumes the DOM and the CSSOM and annotates every element with a
//! computed style whose trace cells feed layout and paint.

#![warn(missing_docs)]

mod cascade;
mod parser;
mod selector;
mod values;

pub use cascade::{CssCoverage, StyleCells, StyleEngine, StyleMap};
pub use parser::{parse_stylesheet, Decl, StyleRule, Stylesheet, Viewport};
pub use selector::{BucketKey, Combinator, Compound, Selector};
pub use values::{edge, Color, ComputedStyle, Display, Length, Position, TextAlign};
